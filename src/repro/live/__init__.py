"""Live backend: the organizations on real files with real threads."""

from .backend import LiveParallelFile, LiveParallelFileSystem
from .handles import (
    LiveDirectHandle,
    LiveGlobalView,
    LiveOwnedDirectHandle,
    LivePartitionHandle,
    LiveSequentialHandle,
    LiveSSHandle,
    LiveSSSession,
)

__all__ = [
    "LiveParallelFile",
    "LiveParallelFileSystem",
    "LiveDirectHandle",
    "LiveGlobalView",
    "LiveOwnedDirectHandle",
    "LivePartitionHandle",
    "LiveSequentialHandle",
    "LiveSSHandle",
    "LiveSSSession",
]
