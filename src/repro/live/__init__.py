"""Live backend: the organizations on real files with real threads.

``repro.live.server`` (imported lazily to keep this package cheap)
adds the asyncio dataset-serving front-end: ``DatasetServer``,
``DatasetClient``, ``WallClock``, ``TenantAccount``.
"""

from .backend import LiveParallelFile, LiveParallelFileSystem
from .handles import (
    LiveDirectHandle,
    LiveGlobalView,
    LiveOwnedDirectHandle,
    LivePartitionHandle,
    LiveSequentialHandle,
    LiveSSHandle,
    LiveSSSession,
)

__all__ = [
    "LiveParallelFile",
    "LiveParallelFileSystem",
    "LiveDirectHandle",
    "LiveGlobalView",
    "LiveOwnedDirectHandle",
    "LivePartitionHandle",
    "LiveSequentialHandle",
    "LiveSSHandle",
    "LiveSSSession",
]
