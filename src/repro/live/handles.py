"""Thread-safe live handles mirroring the simulator's internal views.

The method surfaces intentionally parallel ``repro.fs.internal_io`` —
same organizations, same semantics — but these are plain (non-generator)
methods safe to call from concurrent ``threading.Thread`` workers:
positioned I/O goes through ``os.pread``/``os.pwrite`` and the
self-scheduled session hands out blocks under a real lock.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from ..core.convert import contiguous_runs
from ..core.errors import ExhaustedError, OrganizationError, OwnershipError
from ..core.mapping import PartitionedDirectMap, SequentialMap

if TYPE_CHECKING:  # pragma: no cover
    from .backend import LiveParallelFile

__all__ = [
    "LiveGlobalView",
    "LiveSequentialHandle",
    "LivePartitionHandle",
    "LiveSSSession",
    "LiveSSHandle",
    "LiveDirectHandle",
    "LiveOwnedDirectHandle",
]


class _LiveBase:
    def __init__(self, file: "LiveParallelFile", process: int, bound: int | None = None):
        limit = bound if bound is not None else file.map.n_processes
        if not 0 <= process < limit:
            raise OrganizationError(f"process {process} outside 0..{limit - 1}")
        self.file = file
        self.process = process

    # positioned raw I/O — one implementation, on the file itself ----------

    def _pread_records(self, start: int, count: int) -> np.ndarray:
        return self.file.read_records(start, count)

    def _pwrite_records(self, start: int, values: np.ndarray) -> int:
        return self.file.write_records(start, values)


class LiveGlobalView(_LiveBase):
    """The conventional view: sequential cursor plus positioned access."""

    def __init__(self, file: "LiveParallelFile"):
        super().__init__(file, 0, bound=1)
        self._cursor = 0
        self._lock = threading.Lock()

    @property
    def position(self) -> int:
        return self._cursor

    @property
    def eof(self) -> bool:
        return self._cursor >= self.file.n_records

    def seek(self, record: int) -> None:
        """Move the sequential cursor (thread-safe)."""
        if not 0 <= record <= self.file.n_records:
            raise ValueError(f"seek to {record} outside file")
        with self._lock:
            self._cursor = record

    def read(self, count: int | None = None) -> np.ndarray:
        """Read ``count`` records (default: to EOF) at the cursor."""
        with self._lock:
            if count is None:
                count = self.file.n_records - self._cursor
            count = min(count, self.file.n_records - self._cursor)
            start = self._cursor
            self._cursor += max(count, 0)
        if count <= 0:
            return self.file.attrs.record_spec.decode(b"")
        return self._pread_records(start, count)

    def write(self, values: np.ndarray) -> int:
        """Write records at the cursor, advancing it atomically."""
        spec = self.file.attrs.record_spec
        raw = spec.encode(values)
        count = raw.size // spec.record_size
        with self._lock:
            start = self._cursor
            self._cursor += count
        return self._pwrite_records(start, values)

    def read_at(self, record: int, count: int = 1) -> np.ndarray:
        """Positioned read; does not move the cursor."""
        if record < 0 or record + count > self.file.n_records:
            raise ValueError("read_at outside file")
        return self._pread_records(record, count)

    def write_at(self, record: int, values: np.ndarray) -> int:
        """Positioned write; does not move the cursor."""
        return self._pwrite_records(record, values)


class LiveSequentialHandle(_LiveBase):
    """Type S: the designated reader's sequential cursor."""

    def __init__(self, file: "LiveParallelFile", process: int):
        super().__init__(file, process)
        m = file.map
        if not isinstance(m, SequentialMap):
            raise OrganizationError("LiveSequentialHandle requires an S file")
        if process != m.reader:
            raise OrganizationError(
                f"S file is accessed by process {m.reader}, not {process}"
            )
        self._cursor = 0

    @property
    def eof(self) -> bool:
        return self._cursor >= self.file.n_records

    def read_next(self, count: int = 1) -> np.ndarray:
        """The next ``count`` records in global order (clipped at EOF)."""
        count = min(count, self.file.n_records - self._cursor)
        if count <= 0:
            return self.file.attrs.record_spec.decode(b"")
        out = self._pread_records(self._cursor, count)
        self._cursor += count
        return out

    def write_next(self, values: np.ndarray) -> int:
        """Write records at the sequential cursor."""
        n = self._pwrite_records(self._cursor, values)
        self._cursor += n
        return n


class LivePartitionHandle(_LiveBase):
    """Types PS / IS: cursor over the process's own record sequence."""

    def __init__(self, file: "LiveParallelFile", process: int):
        super().__init__(file, process)
        if not file.map.is_static:
            raise OrganizationError("partitioned handle needs a static map")
        self._records = file.map.records_of(process)
        self._cursor = 0

    @property
    def n_local_records(self) -> int:
        return len(self._records)

    @property
    def remaining(self) -> int:
        return len(self._records) - self._cursor

    @property
    def eof(self) -> bool:
        return self.remaining <= 0

    def read_next(self, count: int = 1) -> np.ndarray:
        """The next ``count`` of this process's records, in access order."""
        count = min(count, self.remaining)
        if count <= 0:
            return self.file.attrs.record_spec.decode(b"")
        wanted = self._records[self._cursor : self._cursor + count]
        pieces = [
            self._pread_records(run.start, run.count)
            for run in contiguous_runs(wanted)
        ]
        self._cursor += count
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    def write_next(self, values: np.ndarray) -> int:
        """Write the next records of this process's sequence."""
        spec = self.file.attrs.record_spec
        raw = spec.encode(values)
        count = raw.size // spec.record_size
        if count > self.remaining:
            raise ExhaustedError(
                f"process {self.process} has {self.remaining} records left"
            )
        decoded = spec.decode(raw)
        wanted = self._records[self._cursor : self._cursor + count]
        pos = 0
        for run in contiguous_runs(wanted):
            self._pwrite_records(run.start, decoded[pos : pos + run.count])
            pos += run.count
        self._cursor += count
        return count


class LiveSSSession:
    """Shared self-scheduling state: an atomic block counter + schedule."""

    def __init__(self, file: "LiveParallelFile"):
        self.file = file
        self._lock = threading.Lock()
        self._next = 0
        self.schedule: dict[int, list[int]] = {}

    def draw(self, process: int) -> int | None:
        """Atomically hand out the next block (None when exhausted)."""
        with self._lock:
            if self._next >= self.file.n_blocks:
                return None
            block = self._next
            self._next += 1
            self.schedule.setdefault(process, []).append(block)
            return block

    def handle(self, process: int) -> "LiveSSHandle":
        """A handle for ``process`` sharing this session's counter."""
        return LiveSSHandle(self.file, process, self)

    def validate(self) -> None:
        """Assert every block was handed out exactly once."""
        self.file.map.validate_schedule(self.schedule)


class LiveSSHandle(_LiveBase):
    """Type SS: every call gets the next block, whichever thread asks."""

    def __init__(self, file: "LiveParallelFile", process: int, session: LiveSSSession):
        super().__init__(file, process)
        if session.file is not file:
            raise OrganizationError("session belongs to a different file")
        self.session = session

    def read_next(self):
        """``(block, records)`` for the next block, or None when exhausted."""
        block = self.session.draw(self.process)
        if block is None:
            return None
        bs = self.file.attrs.block_spec
        first = bs.first_record(block)
        count = bs.block_records(block, self.file.n_records)
        return block, self._pread_records(first, count)

    def write_next(self, values: np.ndarray):
        """Write the next block; returns its index or None when exhausted."""
        block = self.session.draw(self.process)
        if block is None:
            return None
        bs = self.file.attrs.block_spec
        first = bs.first_record(block)
        expect = bs.block_records(block, self.file.n_records)
        arr = np.atleast_2d(np.asarray(values))
        if len(arr) != expect:
            raise ValueError(f"block {block} holds {expect} records")
        self._pwrite_records(first, values)
        return block


class LiveDirectHandle(_LiveBase):
    """Type GDA: positioned access to any record from any thread."""

    def _check(self, record: int, count: int) -> None:
        if record < 0 or count < 1 or record + count > self.file.n_records:
            raise ValueError(f"records [{record}, {record + count}) outside file")

    def read_record(self, record: int, count: int = 1) -> np.ndarray:
        """``count`` records starting at ``record``."""
        self._check(record, count)
        return self._pread_records(record, count)

    def write_record(self, record: int, values: np.ndarray) -> int:
        """Write records starting at ``record``."""
        spec = self.file.attrs.record_spec
        count = spec.encode(values).size // spec.record_size
        self._check(record, count)
        return self._pwrite_records(record, values)


class LiveOwnedDirectHandle(LiveDirectHandle):
    """Type PDA: direct access restricted to owned blocks.

    ``sequential_within_block=True`` selects §3.2's restricted variant,
    mirroring the simulator handle: blocks in any order, records within a
    block strictly ascending.
    """

    def __init__(
        self,
        file: "LiveParallelFile",
        process: int,
        sequential_within_block: bool = False,
    ):
        super().__init__(file, process)
        if not isinstance(file.map, PartitionedDirectMap):
            raise OrganizationError("LiveOwnedDirectHandle requires a PDA file")
        self._cursor = None
        if sequential_within_block:
            from ..core.access import SequentialWithinBlockCursor

            self._cursor = SequentialWithinBlockCursor(file.map, process)

    def reset_block(self, block: int) -> None:
        """Begin a fresh sequential pass over ``block``."""
        if self._cursor is not None:
            self._cursor.reset_block(block)

    def _check(self, record: int, count: int) -> None:
        super()._check(record, count)
        m: PartitionedDirectMap = self.file.map  # type: ignore[assignment]
        for r in (record, record + count - 1):
            if not m.may_access(self.process, r):
                raise OwnershipError(
                    f"process {self.process} may not access record {r}"
                )
        if self._cursor is not None:
            for r in range(record, record + count):
                self._cursor.admit(r)
