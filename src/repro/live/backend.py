"""Live backend: parallel files on the host file system, with real threads.

The simulator (`repro.fs`) measures *performance* in simulated time; this
backend demonstrates *functional* fidelity: the same organization maps
(`repro.core.mapping`) interpreted over real files with concurrently
running threads. Python's GIL means wall-clock speedups are not claimed
here (see DESIGN.md §2) — correctness under concurrency is.

Each parallel file is one host file (preallocated to its full size) plus a
JSON metadata sidecar, so files genuinely persist across program runs and
the "global view" of any sequential organization is — exactly as §2
requires — a plain flat file any conventional tool can read.

Positioned I/O uses ``os.pread``/``os.pwrite``, which are thread-safe
without shared seek pointers.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

import numpy as np

from ..core.errors import OrganizationError
from ..core.mapping import OrganizationMap, make_map
from ..core.organizations import FileCategory, FileOrganization
from ..fs.metadata import FileAttributes
from .handles import (
    LiveDirectHandle,
    LiveGlobalView,
    LiveOwnedDirectHandle,
    LivePartitionHandle,
    LiveSequentialHandle,
    LiveSSSession,
)

__all__ = ["LiveParallelFileSystem", "LiveParallelFile"]

_META_SUFFIX = ".pmeta.json"


class LiveParallelFile:
    """An open parallel file backed by a host file."""

    def __init__(self, attrs: FileAttributes, org_map: OrganizationMap, path: Path):
        # The fd is acquired *last*, after every validation that can
        # raise, so a failed constructor never leaks a descriptor.
        self._fd = None
        self.attrs = attrs
        self.map = org_map
        self.path = path
        self._sieve_lock = threading.Lock()
        if org_map.n_records != attrs.n_records:
            raise OrganizationError(
                f"organization map covers {org_map.n_records} records; "
                f"attributes declare {attrs.n_records}"
            )
        try:
            size = os.stat(path).st_size
        except OSError as exc:
            raise OrganizationError(
                f"data file {path} unreadable: {exc}"
            ) from exc
        if size < attrs.file_bytes:
            raise OrganizationError(
                f"data file {path} holds {size} bytes; attributes declare "
                f"{attrs.file_bytes}"
            )
        self._fd = os.open(path, os.O_RDWR)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the OS file descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "LiveParallelFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def fd(self) -> int:
        if self._fd is None:
            raise ValueError(f"file {self.attrs.name!r} is closed")
        return self._fd

    @property
    def name(self) -> str:
        return self.attrs.name

    @property
    def n_records(self) -> int:
        return self.attrs.n_records

    @property
    def n_blocks(self) -> int:
        return self.attrs.n_blocks

    # -- views ----------------------------------------------------------------

    def global_view(self) -> LiveGlobalView:
        """The conventional (§2 global) view of the file."""
        return LiveGlobalView(self)

    def ss_session(self) -> LiveSSSession:
        """A shared self-scheduling session for this SS file."""
        if self.map.org is not FileOrganization.SS:
            raise ValueError("ss_session() requires an SS file")
        return LiveSSSession(self)

    def internal_view(
        self,
        process: int,
        *,
        session: LiveSSSession | None = None,
        sequential_within_block: bool = False,
    ):
        """The organization-specific handle for one process/thread."""
        org = self.map.org
        if org is FileOrganization.S:
            return LiveSequentialHandle(self, process)
        if org in (FileOrganization.PS, FileOrganization.IS):
            return LivePartitionHandle(self, process)
        if org is FileOrganization.SS:
            if session is None:
                raise ValueError(
                    "SS files need a shared session: file.ss_session()"
                )
            return session.handle(process)
        if org is FileOrganization.GDA:
            return LiveDirectHandle(self, process)
        if org is FileOrganization.PDA:
            return LiveOwnedDirectHandle(
                self, process,
                sequential_within_block=sequential_within_block,
            )
        raise ValueError(f"no live handle for {org}")  # pragma: no cover

    # -- positioned record I/O -------------------------------------------------

    def _check_span(self, start: int, count: int) -> None:
        if start < 0 or count < 0 or start + count > self.n_records:
            raise ValueError(
                f"records [{start}, {start + count}) outside file of "
                f"{self.n_records}"
            )

    def read_records(self, start: int, count: int) -> np.ndarray:
        """``count`` decoded records at ``start`` (thread-safe pread)."""
        self._check_span(start, count)
        spec = self.attrs.record_spec
        offset, nbytes = spec.span(start, count)
        raw = os.pread(self.fd, nbytes, offset)
        if len(raw) != nbytes:
            raise IOError(
                f"short read: wanted {nbytes} bytes at {offset}, got {len(raw)}"
            )
        return spec.decode(raw)

    def write_records(self, start: int, values: np.ndarray) -> int:
        """Write records at ``start`` (thread-safe pwrite); record count."""
        spec = self.attrs.record_spec
        raw = spec.encode(values)
        count = raw.size // spec.record_size
        self._check_span(start, count)
        written = os.pwrite(self.fd, raw.tobytes(), start * spec.record_size)
        if written != raw.size:
            raise IOError(f"short write: {written} of {raw.size} bytes")
        return count

    # -- file views (shared planner with the simulator) ------------------------

    def read_view(
        self,
        view,
        *,
        sieve: bool = False,
        sieve_factor: float = 4.0,
        sieve_window: int = 1 << 22,
    ) -> np.ndarray:
        """Read the records a view selects; decoded rows in view order.

        The access plan — list I/O vs covering-extent sieving — comes
        from the same :mod:`repro.datatype.planner` the simulator's
        :meth:`~repro.fs.pfs.ParallelFile.read_view` consumes; only the
        byte movement differs (``os.pread`` here, device processes there).
        """
        from ..datatype.planner import check_view_runs, plan_view_read

        runs = check_view_runs(view, self.n_records)
        plan = plan_view_read(
            runs, self.attrs.record_spec.record_size,
            sieve=sieve, sieve_factor=sieve_factor, sieve_window=sieve_window,
        )
        if plan.mode == "empty":
            return self.attrs.record_spec.decode(b"")
        if plan.mode == "contiguous":
            return self.read_records(runs[0].start, runs[0].count)
        if plan.mode == "list":
            pieces = [self.read_records(r.start, r.count) for r in runs]
            return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]
        datas = [self.read_records(c.offset, c.nbytes) for c in plan.covering]
        return plan.scatter(datas)

    def write_view(
        self,
        values: np.ndarray,
        view,
        *,
        sieve: bool = False,
        sieve_factor: float = 4.0,
        sieve_window: int = 1 << 22,
    ) -> int:
        """Write ``values`` (rows in view order) to the view's records.

        Sieved read-modify-write windows serialize on this open file's
        ``_sieve_lock``, so threads sharing one :class:`LiveParallelFile`
        never tear each other's hole bytes (independent opens of the same
        host file are independent lock domains — like separate client
        processes in the paper's model).
        """
        from ..datatype.planner import check_view_runs, plan_view_write

        runs = check_view_runs(view, self.n_records)
        spec = self.attrs.record_spec
        raw = spec.encode(values)
        count = raw.size // spec.record_size
        plan = plan_view_write(
            runs, spec.record_size,
            sieve=sieve, sieve_factor=sieve_factor, sieve_window=sieve_window,
        )
        if count != plan.n_view_records:
            raise ValueError(
                f"view selects {plan.n_view_records} records, values encode "
                f"to {count}"
            )
        if plan.mode == "empty":
            return 0
        decoded = spec.decode(raw)
        if plan.mode == "contiguous":
            return self.write_records(runs[0].start, decoded)
        if plan.mode == "list":
            pos = 0
            for r in runs:
                self.write_records(r.start, decoded[pos : pos + r.count])
                pos += r.count
            return plan.n_view_records
        row_of = plan.row_of
        for window, pieces in plan.windows:
            if plan.is_whole_window(window, pieces):
                p0 = pieces[0]
                start = row_of[p0.offset]
                self.write_records(p0.offset, decoded[start : start + p0.nbytes])
                continue
            with self._sieve_lock:
                buf = self.read_records(window.offset, window.nbytes)
                self.write_records(
                    window.offset, plan.overlay(window, pieces, buf, decoded)
                )
        return plan.n_view_records


class LiveParallelFileSystem:
    """Create/open/delete parallel files in a host directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _data_path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise ValueError(f"invalid file name {name!r}")
        return self.root / name

    def _meta_path(self, name: str) -> Path:
        return self.root / f"{name}{_META_SUFFIX}"

    # -- lifecycle ------------------------------------------------------------

    def create(
        self,
        name: str,
        organization: FileOrganization | str,
        *,
        n_records: int,
        record_size: int,
        records_per_block: int = 1,
        n_processes: int = 1,
        dtype: str = "uint8",
        category: FileCategory | None = None,
        **org_params,
    ) -> LiveParallelFile:
        """Create a parallel file: preallocated data file + metadata sidecar."""
        if isinstance(organization, str):
            organization = FileOrganization[organization.upper()]
        if category is None:
            category = (
                FileCategory.STANDARD
                if organization.is_sequential
                else FileCategory.SPECIALIZED
            )
        data_path = self._data_path(name)
        meta_path = self._meta_path(name)
        if data_path.exists() or meta_path.exists():
            raise FileExistsError(name)
        attrs = FileAttributes(
            name=name,
            organization=organization,
            category=category,
            record_size=record_size,
            records_per_block=records_per_block,
            n_records=n_records,
            n_processes=n_processes,
            layout="host",
            layout_params={},
            org_params=dict(org_params),
            dtype=dtype,
        )
        org_map = make_map(
            organization, attrs.block_spec, n_records, n_processes, **org_params
        )
        # Create-or-undo: a failure after the data file exists must not
        # strand a half-created pair, or the name becomes unusable.
        try:
            # Preallocate the data file to its full logical size.
            with open(data_path, "wb") as fh:
                if attrs.file_bytes:
                    fh.truncate(attrs.file_bytes)
            meta_path.write_text(json.dumps(attrs.to_dict(), indent=2))
            return LiveParallelFile(attrs, org_map, data_path)
        except BaseException:
            meta_path.unlink(missing_ok=True)
            data_path.unlink(missing_ok=True)
            raise

    def open(self, name: str, n_processes: int | None = None) -> LiveParallelFile:
        """Open an existing file, optionally remapping the process count."""
        meta_path = self._meta_path(name)
        if not meta_path.exists():
            raise FileNotFoundError(name)
        attrs = FileAttributes.from_dict(json.loads(meta_path.read_text()))
        p = n_processes if n_processes is not None else attrs.n_processes
        org_map = make_map(
            attrs.organization, attrs.block_spec, attrs.n_records, p,
            **attrs.org_params,
        )
        return LiveParallelFile(attrs, org_map, self._data_path(name))

    def delete(self, name: str) -> None:
        """Remove a file's data and metadata."""
        data, meta = self._data_path(name), self._meta_path(name)
        if not meta.exists():
            raise FileNotFoundError(name)
        meta.unlink()
        if data.exists():
            data.unlink()

    def exists(self, name: str) -> bool:
        """True iff a parallel file of that name exists in this directory."""
        return self._meta_path(name).exists()

    def names(self) -> list[str]:
        """All parallel file names in this directory, sorted."""
        return sorted(
            p.name[: -len(_META_SUFFIX)]
            for p in self.root.glob(f"*{_META_SUFFIX}")
        )
