"""Live backend: parallel files on the host file system, with real threads.

The simulator (`repro.fs`) measures *performance* in simulated time; this
backend demonstrates *functional* fidelity: the same organization maps
(`repro.core.mapping`) interpreted over real files with concurrently
running threads. Python's GIL means wall-clock speedups are not claimed
here (see DESIGN.md §2) — correctness under concurrency is.

Each parallel file is one host file (preallocated to its full size) plus a
JSON metadata sidecar, so files genuinely persist across program runs and
the "global view" of any sequential organization is — exactly as §2
requires — a plain flat file any conventional tool can read.

Positioned I/O uses ``os.pread``/``os.pwrite``, which are thread-safe
without shared seek pointers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..core.mapping import OrganizationMap, make_map
from ..core.organizations import FileCategory, FileOrganization
from ..fs.metadata import FileAttributes
from .handles import (
    LiveDirectHandle,
    LiveGlobalView,
    LiveOwnedDirectHandle,
    LivePartitionHandle,
    LiveSequentialHandle,
    LiveSSSession,
)

__all__ = ["LiveParallelFileSystem", "LiveParallelFile"]

_META_SUFFIX = ".pmeta.json"


class LiveParallelFile:
    """An open parallel file backed by a host file."""

    def __init__(self, attrs: FileAttributes, org_map: OrganizationMap, path: Path):
        self.attrs = attrs
        self.map = org_map
        self.path = path
        flags = os.O_RDWR
        self._fd = os.open(path, flags)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the OS file descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "LiveParallelFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def fd(self) -> int:
        if self._fd is None:
            raise ValueError(f"file {self.attrs.name!r} is closed")
        return self._fd

    @property
    def name(self) -> str:
        return self.attrs.name

    @property
    def n_records(self) -> int:
        return self.attrs.n_records

    @property
    def n_blocks(self) -> int:
        return self.attrs.n_blocks

    # -- views ----------------------------------------------------------------

    def global_view(self) -> LiveGlobalView:
        """The conventional (§2 global) view of the file."""
        return LiveGlobalView(self)

    def ss_session(self) -> LiveSSSession:
        """A shared self-scheduling session for this SS file."""
        if self.map.org is not FileOrganization.SS:
            raise ValueError("ss_session() requires an SS file")
        return LiveSSSession(self)

    def internal_view(
        self,
        process: int,
        *,
        session: LiveSSSession | None = None,
        sequential_within_block: bool = False,
    ):
        """The organization-specific handle for one process/thread."""
        org = self.map.org
        if org is FileOrganization.S:
            return LiveSequentialHandle(self, process)
        if org in (FileOrganization.PS, FileOrganization.IS):
            return LivePartitionHandle(self, process)
        if org is FileOrganization.SS:
            if session is None:
                raise ValueError(
                    "SS files need a shared session: file.ss_session()"
                )
            return session.handle(process)
        if org is FileOrganization.GDA:
            return LiveDirectHandle(self, process)
        if org is FileOrganization.PDA:
            return LiveOwnedDirectHandle(
                self, process,
                sequential_within_block=sequential_within_block,
            )
        raise ValueError(f"no live handle for {org}")  # pragma: no cover


class LiveParallelFileSystem:
    """Create/open/delete parallel files in a host directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _data_path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise ValueError(f"invalid file name {name!r}")
        return self.root / name

    def _meta_path(self, name: str) -> Path:
        return self.root / f"{name}{_META_SUFFIX}"

    # -- lifecycle ------------------------------------------------------------

    def create(
        self,
        name: str,
        organization: FileOrganization | str,
        *,
        n_records: int,
        record_size: int,
        records_per_block: int = 1,
        n_processes: int = 1,
        dtype: str = "uint8",
        category: FileCategory | None = None,
        **org_params,
    ) -> LiveParallelFile:
        """Create a parallel file: preallocated data file + metadata sidecar."""
        if isinstance(organization, str):
            organization = FileOrganization[organization.upper()]
        if category is None:
            category = (
                FileCategory.STANDARD
                if organization.is_sequential
                else FileCategory.SPECIALIZED
            )
        data_path = self._data_path(name)
        meta_path = self._meta_path(name)
        if data_path.exists() or meta_path.exists():
            raise FileExistsError(name)
        attrs = FileAttributes(
            name=name,
            organization=organization,
            category=category,
            record_size=record_size,
            records_per_block=records_per_block,
            n_records=n_records,
            n_processes=n_processes,
            layout="host",
            layout_params={},
            org_params=dict(org_params),
            dtype=dtype,
        )
        org_map = make_map(
            organization, attrs.block_spec, n_records, n_processes, **org_params
        )
        # Preallocate the data file to its full logical size.
        with open(data_path, "wb") as fh:
            if attrs.file_bytes:
                fh.truncate(attrs.file_bytes)
        meta_path.write_text(json.dumps(attrs.to_dict(), indent=2))
        return LiveParallelFile(attrs, org_map, data_path)

    def open(self, name: str, n_processes: int | None = None) -> LiveParallelFile:
        """Open an existing file, optionally remapping the process count."""
        meta_path = self._meta_path(name)
        if not meta_path.exists():
            raise FileNotFoundError(name)
        attrs = FileAttributes.from_dict(json.loads(meta_path.read_text()))
        p = n_processes if n_processes is not None else attrs.n_processes
        org_map = make_map(
            attrs.organization, attrs.block_spec, attrs.n_records, p,
            **attrs.org_params,
        )
        return LiveParallelFile(attrs, org_map, self._data_path(name))

    def delete(self, name: str) -> None:
        """Remove a file's data and metadata."""
        data, meta = self._data_path(name), self._meta_path(name)
        if not meta.exists():
            raise FileNotFoundError(name)
        meta.unlink()
        if data.exists():
            data.unlink()

    def exists(self, name: str) -> bool:
        """True iff a parallel file of that name exists in this directory."""
        return self._meta_path(name).exists()

    def names(self) -> list[str]:
        """All parallel file names in this directory, sorted."""
        return sorted(
            p.name[: -len(_META_SUFFIX)]
            for p in self.root.glob(f"*{_META_SUFFIX}")
        )
