"""Asyncio dataset serving: ViPIOS-style client/server over the live backend.

A :class:`DatasetServer` owns a directory of live datasets
(:class:`~repro.dataset.live.LiveDataset`) and serves concurrent
hyperslab requests over TCP — the first wall-clock, heavy-traffic
demonstration of the stack, as opposed to simulated time.

**Protocol.** Newline-delimited JSON request headers; a request that
carries payload (``write``) declares ``nbytes`` and sends that many raw
bytes immediately after its header line. Responses mirror it: one JSON
line (``ok``, result fields, and ``nbytes`` when data follows), then the
raw little-endian payload. Ops: ``hello`` (bind the connection to a
tenant), ``list``, ``describe``, ``read``, ``write``, ``sync``,
``stats``.

**QoS.** Tenants are genuinely the :mod:`repro.qos` primitives: every
tenant with a configured ``(rate, burst)`` holds a real
:class:`~repro.qos.bucket.TokenBucket` driven by :class:`WallClock` — a
clock shim whose ``now`` is ``time.monotonic()`` and whose ``sleep``
*returns* the delay for the asyncio loop to await. Admission covers the
data bytes of each request (response bytes for reads, payload bytes for
writes) before any I/O happens, so an over-rate tenant queues at the
bucket exactly as a simulated tenant queues at a device. Per-tenant
:class:`TenantAccount` counters record requests, bytes, errors, and
total admission wait.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.errors import ReproError
from ..qos.bucket import TokenBucket
from .backend import LiveParallelFileSystem

__all__ = ["WallClock", "TenantAccount", "DatasetServer", "DatasetClient"]

#: request headers above this size are rejected before parsing
MAX_HEADER_BYTES = 1 << 16
#: write payloads above this size are rejected (64 MiB)
MAX_PAYLOAD_BYTES = 1 << 26


class WallClock:
    """A wall-clock stand-in for the simulator's environment.

    Exposes exactly what :class:`~repro.qos.bucket.TokenBucket` consumes:
    ``now`` (``time.monotonic()`` seconds) and ``sleep(delay)``, which
    simply returns the delay — the bucket's ``acquire`` generator then
    yields plain floats for an async driver to ``await asyncio.sleep``
    on. One shim makes the sim-time QoS primitives genuinely reusable
    under real time.
    """

    @property
    def now(self) -> float:
        return time.monotonic()

    def sleep(self, delay: float) -> float:
        """Return ``delay`` unchanged — the caller awaits it for real."""
        return delay


@dataclass
class TenantAccount:
    """Per-tenant admission state and accounting."""

    name: str
    bucket: TokenBucket | None = None
    connections: int = 0
    requests: int = 0
    errors: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    admission_wait_s: float = 0.0

    async def admit(self, nbytes: int) -> None:
        """Wait until the tenant's bucket covers ``nbytes``."""
        if self.bucket is None or nbytes <= 0:
            return
        t0 = time.monotonic()
        for delay in self.bucket.acquire(float(nbytes)):
            await asyncio.sleep(delay)
        self.admission_wait_s += time.monotonic() - t0

    def stats(self) -> dict:
        """Accounting snapshot for this tenant (plus bucket state if capped)."""
        out = {
            "connections": self.connections,
            "requests": self.requests,
            "errors": self.errors,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "admission_wait_s": round(self.admission_wait_s, 6),
        }
        if self.bucket is not None:
            out["rate"] = self.bucket.rate
            out["burst"] = self.bucket.burst
            out["throttled_grants"] = self.bucket.throttled_grants
            out["granted_total"] = self.bucket.granted_total
        return out


@dataclass
class _ServerCounters:
    connections_total: int = 0
    requests_total: int = 0
    errors_total: int = 0
    protocol_errors: int = 0
    started_at: float = field(default_factory=time.monotonic)


class DatasetServer:
    """Serve the datasets of one live directory to asyncio clients.

    ``tenants`` maps tenant name to ``(rate, burst)`` in bytes/second and
    bytes; ``default_rate``/``default_burst`` (both or neither) apply to
    tenants not named — leave them ``None`` for unlimited. A connection
    is anonymous (tenant ``"default"``) until its ``hello``.
    """

    def __init__(
        self,
        root: str | Path | LiveParallelFileSystem,
        *,
        tenants: dict[str, tuple[float, float]] | None = None,
        default_rate: float | None = None,
        default_burst: float | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.lfs = (
            root
            if isinstance(root, LiveParallelFileSystem)
            else LiveParallelFileSystem(root)
        )
        if (default_rate is None) != (default_burst is None):
            raise ValueError("default_rate and default_burst go together")
        self._tenant_caps = dict(tenants or {})
        self._default_cap = (
            (default_rate, default_burst) if default_rate is not None else None
        )
        self.host = host
        self._port = port
        self.clock = WallClock()
        self.tenants: dict[str, TenantAccount] = {}
        self.counters = _ServerCounters()
        self._datasets: dict[str, "object"] = {}
        self._server: asyncio.AbstractServer | None = None

    # -- tenants -----------------------------------------------------------

    def tenant(self, name: str) -> TenantAccount:
        """The account for ``name``, created (with its bucket) on first use."""
        acct = self.tenants.get(name)
        if acct is None:
            cap = self._tenant_caps.get(name, self._default_cap)
            bucket = (
                TokenBucket(self.clock, cap[0], cap[1]) if cap else None
            )
            acct = self.tenants[name] = TenantAccount(name, bucket)
        return acct

    # -- datasets ----------------------------------------------------------

    def dataset(self, name: str):
        """The open :class:`LiveDataset` for ``name`` (cached)."""
        from ..dataset.live import LiveDataset

        ds = self._datasets.get(name)
        if ds is None:
            ds = self._datasets[name] = LiveDataset.open(self.lfs, name)
        return ds

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "DatasetServer":
        """Bind the listening socket and start serving."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self._port
        )
        return self

    async def stop(self) -> None:
        """Stop serving: close the socket and every open dataset."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for ds in self._datasets.values():
            ds.close()
        self._datasets.clear()

    async def __aenter__(self) -> "DatasetServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def stats(self) -> dict:
        """Server-wide and per-tenant accounting (the ``stats`` op)."""
        return {
            "uptime_s": round(time.monotonic() - self.counters.started_at, 6),
            "connections_total": self.counters.connections_total,
            "requests_total": self.counters.requests_total,
            "errors_total": self.counters.errors_total,
            "protocol_errors": self.counters.protocol_errors,
            "datasets_open": sorted(self._datasets),
            "tenants": {
                name: acct.stats() for name, acct in sorted(self.tenants.items())
            },
        }

    # -- the connection loop -----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters.connections_total += 1
        acct = self.tenant("default")
        acct.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_HEADER_BYTES:
                    self.counters.protocol_errors += 1
                    break
                try:
                    req = json.loads(line)
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    self.counters.protocol_errors += 1
                    await self._send(writer, {"ok": False, "error": str(exc)})
                    continue
                try:
                    acct, done = await self._serve_request(
                        req, acct, reader, writer
                    )
                except (EOFError, ConnectionError):
                    # client vanished mid-payload or mid-response
                    self.counters.protocol_errors += 1
                    break
                if done:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _serve_request(self, req, acct, reader, writer):
        """Dispatch one request; returns ``(account, connection_done)``."""
        op = req.get("op")
        self.counters.requests_total += 1
        acct.requests += 1
        payload = b""
        try:
            if op == "hello":
                acct.connections -= 1
                acct = self.tenant(str(req.get("tenant", "default")))
                acct.connections += 1
                resp = {"ok": True, "tenant": acct.name}
            elif op == "list":
                resp = {"ok": True, "datasets": self.lfs.names()}
            elif op == "describe":
                ds = self.dataset(str(req["dataset"]))
                resp = {"ok": True, "describe": ds.describe()}
            elif op == "read":
                resp, payload = await self._op_read(req, acct)
            elif op == "write":
                resp = await self._op_write(req, acct, reader)
            elif op == "sync":
                ds = self.dataset(str(req["dataset"]))
                resp = {"ok": True, "synced": ds.sync()}
            elif op == "stats":
                resp = {"ok": True, "stats": self.stats()}
            elif op == "bye":
                await self._send(writer, {"ok": True})
                return acct, True
            else:
                raise ValueError(f"unknown op {op!r}")
        except (ReproError, KeyError, ValueError, TypeError, OSError) as exc:
            acct.errors += 1
            self.counters.errors_total += 1
            resp, payload = {"ok": False, "error": str(exc)}, b""
        await self._send(writer, resp, payload)
        return acct, False

    async def _op_read(self, req, acct: TenantAccount):
        ds = self.dataset(str(req["dataset"]))
        var, start, count = req["var"], req["start"], req["count"]
        # admission first: the tenant pays for the bytes it is about to
        # move, before the server does any work on its behalf
        var_obj = ds.schema.variable(var)
        from ..datatype.slab import slab_size, validate_slab

        _, cnt = validate_slab(ds.schema.shape(var), start, count)
        nbytes = slab_size(cnt) * var_obj.itemsize
        await acct.admit(nbytes)
        arr = await asyncio.to_thread(
            ds.read_slab, var, start, count, sieve=bool(req.get("sieve", False))
        )
        raw = np.ascontiguousarray(arr, dtype=var_obj.np_dtype).tobytes()
        acct.bytes_read += len(raw)
        resp = {
            "ok": True,
            "dtype": var_obj.dtype,
            "shape": list(arr.shape),
            "nbytes": len(raw),
        }
        return resp, raw

    async def _op_write(self, req, acct: TenantAccount, reader):
        nbytes = int(req.get("nbytes", 0))
        if not 0 <= nbytes <= MAX_PAYLOAD_BYTES:
            raise ValueError(f"invalid payload size {nbytes}")
        raw = await reader.readexactly(nbytes) if nbytes else b""
        ds = self.dataset(str(req["dataset"]))
        var, start, count = req["var"], req["start"], req["count"]
        var_obj = ds.schema.variable(var)
        from ..datatype.slab import slab_size, validate_slab

        _, cnt = validate_slab(ds.schema.shape(var), start, count)
        want = slab_size(cnt) * var_obj.itemsize
        if want != nbytes:
            raise ValueError(
                f"slab needs {want} payload bytes, request carries {nbytes}"
            )
        await acct.admit(nbytes)
        values = np.frombuffer(raw, dtype=var_obj.np_dtype).reshape(cnt)
        written = await asyncio.to_thread(
            ds.write_slab, var, start, count, values,
            sieve=bool(req.get("sieve", False)),
        )
        acct.bytes_written += nbytes
        return {"ok": True, "elements": int(written)}

    @staticmethod
    async def _send(writer, resp: dict, payload: bytes = b"") -> None:
        writer.write(json.dumps(resp).encode("utf-8") + b"\n")
        if payload:
            writer.write(payload)
        await writer.drain()


class DatasetClient:
    """Minimal asyncio client speaking the :class:`DatasetServer` protocol."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(
        cls, host: str, port: int, *, tenant: str | None = None
    ) -> "DatasetClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        if tenant is not None:
            await client.hello(tenant)
        return client

    async def _call(self, req: dict, payload: bytes = b"") -> dict:
        self._writer.write(json.dumps(req).encode("utf-8") + b"\n")
        if payload:
            self._writer.write(payload)
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def hello(self, tenant: str) -> dict:
        """Bind this connection to ``tenant`` for admission/accounting."""
        return await self._call({"op": "hello", "tenant": tenant})

    async def list_datasets(self) -> list[str]:
        """Names of the datasets in the served directory."""
        return (await self._call({"op": "list"}))["datasets"]

    async def describe(self, dataset: str) -> dict:
        """Dimensions/variables/attributes of ``dataset``."""
        resp = await self._call({"op": "describe", "dataset": dataset})
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", "describe failed"))
        return resp["describe"]

    async def read(
        self, dataset: str, var: str, start, count, *, sieve: bool = False
    ) -> np.ndarray:
        """Read a hyperslab; returns the typed array."""
        resp = await self._call({
            "op": "read", "dataset": dataset, "var": var,
            "start": list(start), "count": list(count), "sieve": sieve,
        })
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", "read failed"))
        raw = await self._reader.readexactly(resp["nbytes"])
        return np.frombuffer(raw, dtype=resp["dtype"]).reshape(resp["shape"])

    async def write(
        self, dataset: str, var: str, start, count, values, *, sieve: bool = False
    ) -> int:
        """Write ``values`` into a hyperslab; returns elements written."""
        arr = np.ascontiguousarray(values)
        raw = arr.tobytes()
        resp = await self._call(
            {
                "op": "write", "dataset": dataset, "var": var,
                "start": list(start), "count": list(count),
                "nbytes": len(raw), "sieve": sieve,
            },
            raw,
        )
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", "write failed"))
        return resp["elements"]

    async def sync(self, dataset: str) -> list[str]:
        """Refresh stale variable checksums of ``dataset``."""
        resp = await self._call({"op": "sync", "dataset": dataset})
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", "sync failed"))
        return resp["synced"]

    async def server_stats(self) -> dict:
        """Server-wide and per-tenant accounting."""
        return (await self._call({"op": "stats"}))["stats"]

    async def close(self) -> None:
        """Say goodbye and close the connection."""
        try:
            await self._call({"op": "bye"})
        except (ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown race
            pass
