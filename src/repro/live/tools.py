"""Command-line utilities for live parallel files.

§2: standard parallel files "must appear conventional to the system, or
at least have transparent mechanisms to transform them into a
conventional appearance, so that they can be used by standard sequential
software" — and §3 reports users "balked at having to write additional
programs to manage their data". These tools are those programs, written
once, generically:

    python -m repro.live.tools list <dir>
    python -m repro.live.tools info <dir> <name>
    python -m repro.live.tools dump <dir> <name> [--head N]
    python -m repro.live.tools convert <dir> <src> <dst> <ORG> [options]
    python -m repro.live.tools map <dir> <name>       # Figure-1 style view
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from ..trace.figures import render_block_map
from .backend import LiveParallelFileSystem

__all__ = ["main"]


def _cmd_list(lfs: LiveParallelFileSystem, args) -> int:
    names = lfs.names()
    if not names:
        print("(no parallel files)")
        return 0
    for name in names:
        f = lfs.open(name)
        a = f.attrs
        print(
            f"{name:<24s} {a.organization.value:<4s} "
            f"{a.n_records:>8d} recs x {a.record_size:>6d} B  "
            f"rpb={a.records_per_block:<4d} P={a.n_processes:<3d} "
            f"{a.category.value}"
        )
        f.close()
    return 0


def _cmd_info(lfs: LiveParallelFileSystem, args) -> int:
    f = lfs.open(args.name)
    for key, value in f.attrs.to_dict().items():
        print(f"{key:<18s} {value}")
    print(f"{'n_blocks':<18s} {f.n_blocks}")
    print(f"{'file_bytes':<18s} {f.attrs.file_bytes}")
    f.close()
    return 0


def _cmd_dump(lfs: LiveParallelFileSystem, args) -> int:
    f = lfs.open(args.name)
    count = min(args.head, f.n_records) if args.head else f.n_records
    view = f.global_view()
    data = view.read(count)
    for i, row in enumerate(data):
        print(f"{i:>8d}  {np.array2string(row, max_line_width=100)}")
    f.close()
    return 0


def _cmd_convert(lfs: LiveParallelFileSystem, args) -> int:
    src = lfs.open(args.src)
    a = src.attrs
    org_params = {}
    if args.assignment:
        org_params["assignment"] = args.assignment
    dst = lfs.create(
        args.dst,
        args.organization,
        n_records=a.n_records,
        record_size=a.record_size,
        records_per_block=args.records_per_block or a.records_per_block,
        n_processes=args.processes or a.n_processes,
        dtype=a.dtype,
        **org_params,
    )
    reader = src.global_view()
    writer = dst.global_view()
    chunk = max(1, args.chunk)
    moved = 0
    while not reader.eof:
        data = reader.read(chunk)
        writer.write(data)
        moved += len(data)
    src.close()
    dst.close()
    print(f"converted {args.src} -> {args.dst} "
          f"({moved} records as {args.organization.upper()})")
    return 0


def _cmd_map(lfs: LiveParallelFileSystem, args) -> int:
    f = lfs.open(args.name)
    m = f.map
    if not m.is_static:
        print(f"{f.attrs.organization.value}: block ownership is decided "
              "at run time (no static map)")
        f.close()
        return 0
    owners = [m.owner_of_block(b) for b in range(f.n_blocks)]
    print(f"{args.name}: {f.attrs.organization.value}, "
          f"{f.n_blocks} blocks over {m.n_processes} processes")
    print(render_block_map(owners))
    f.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI: list/info/dump/convert/map subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.live.tools",
        description="Utilities for live parallel files",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list parallel files in a directory")
    p.add_argument("dir")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("info", help="show a file's attributes")
    p.add_argument("dir")
    p.add_argument("name")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("dump", help="print records via the global view")
    p.add_argument("dir")
    p.add_argument("name")
    p.add_argument("--head", type=int, default=10,
                   help="records to print (0 = all)")
    p.set_defaults(func=_cmd_dump)

    p = sub.add_parser("convert", help="copy into a new organization")
    p.add_argument("dir")
    p.add_argument("src")
    p.add_argument("dst")
    p.add_argument("organization", choices=["S", "PS", "IS", "SS", "GDA", "PDA",
                                            "s", "ps", "is", "ss", "gda", "pda"])
    p.add_argument("--processes", type=int, default=None)
    p.add_argument("--records-per-block", type=int, default=None)
    p.add_argument("--assignment", choices=["contiguous", "interleaved"],
                   default=None, help="PDA block assignment")
    p.add_argument("--chunk", type=int, default=1024,
                   help="records per copy transfer")
    p.set_defaults(func=_cmd_convert)

    p = sub.add_parser("map", help="Figure-1 style block ownership strip")
    p.add_argument("dir")
    p.add_argument("name")
    p.set_defaults(func=_cmd_map)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    lfs = LiveParallelFileSystem(args.dir)
    try:
        return args.func(lfs, args)
    except FileNotFoundError as e:
        print(f"error: no such parallel file: {e}", file=sys.stderr)
        return 1
    except FileExistsError as e:
        print(f"error: file already exists: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
