"""Two-phase collective I/O — the extension the paper's concepts led to.

§6 asks for "the best ways to implement" the organizations; the answer
the community converged on a few years later (Bridge's tools, PASSION,
then MPI-IO's collective buffering) is *two-phase I/O*: when every
process of a parallel program participates in one logical transfer whose
per-process pieces are small and strided (the IS internal view is the
canonical case), it is cheaper to

1. **Phase 1 (I/O)** — divide the *file* into one contiguous domain per
   process and have each process transfer only its own domain with a few
   large sequential requests, then
2. **Phase 2 (exchange)** — redistribute the data in memory, over the
   interconnect, to the processes that actually want each record.

The trade: phase 1 converts many seeks into streaming transfers; phase 2
adds interconnect traffic. Benchmark X1 measures the crossover against
independent strided reads.

This module implements collective read and write over any *static*
organization map, with a parametric interconnect cost model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.errors import OrganizationError
from ..sim.sync import SimBarrier

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = ["CollectiveIO"]


class CollectiveIO:
    """Coordinated whole-file transfers for all processes of a file.

    ``exchange_rate`` (bytes/second) and ``exchange_latency`` (seconds per
    message) model the interconnect of phase 2. The 1989-flavoured
    default (10 MB/s, 100 µs) is an order of magnitude faster than one
    disk — the regime in which two-phase I/O pays off.
    """

    def __init__(
        self,
        file: "ParallelFile",
        exchange_rate: float = 10e6,
        exchange_latency: float = 1e-4,
    ):
        if not file.map.is_static:
            raise OrganizationError(
                "collective I/O requires a static organization (S/PS/IS/PDA)"
            )
        if exchange_rate <= 0 or exchange_latency < 0:
            raise ValueError("invalid interconnect parameters")
        self.file = file
        self.exchange_rate = exchange_rate
        self.exchange_latency = exchange_latency
        #: bytes moved over the interconnect by the last operation
        self.last_exchange_bytes = 0

    # -- file domains ---------------------------------------------------------

    def file_domain(self, process: int) -> tuple[int, int]:
        """Half-open global record range process ``process`` transfers in
        phase 1 (a balanced contiguous split of the file)."""
        n, p = self.file.n_records, self.file.map.n_processes
        q, r = divmod(n, p)
        lo = process * q + min(process, r)
        hi = lo + q + (1 if process < r else 0)
        return lo, hi

    def _exchange_cost(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.exchange_latency + nbytes / self.exchange_rate

    # -- collective read --------------------------------------------------------

    def read_all(self):
        """Generator: every process's records, via two-phase transfer.

        Returns ``{process: array}`` where each array holds the process's
        records in its internal-view order (exactly what independent
        ``read_next(n_local_records)`` calls would have returned).
        """
        env = self.file.env
        m = self.file.map
        p = m.n_processes
        barrier = SimBarrier(env, p)
        domains: dict[int, np.ndarray] = {}
        domain_lo: dict[int, int] = {}
        exchange_bytes = [0]
        record_size = self.file.attrs.record_size

        def phase_worker(q: int):
            # phase 1: read my contiguous file domain
            lo, hi = self.file_domain(q)
            domain_lo[q] = lo
            if hi > lo:
                domains[q] = yield self.file.read_records(lo, hi - lo)
            else:
                domains[q] = self.file.attrs.record_spec.decode(b"")
            yield barrier.wait()
            # phase 2: pull my records from the owning domains
            wanted = m.records_of(q)
            if len(wanted) == 0:
                return q, self.file.attrs.record_spec.decode(b"")
            pieces = []
            remote_bytes = 0
            for src in range(p):
                s_lo, s_hi = self.file_domain(src)
                mask = (wanted >= s_lo) & (wanted < s_hi)
                if not mask.any():
                    continue
                take = domains[src][wanted[mask] - s_lo]
                pieces.append((wanted[mask], take))
                if src != q:
                    remote_bytes += take.shape[0] * record_size
            if remote_bytes:
                exchange_bytes[0] += remote_bytes
                yield env.timeout(self._exchange_cost(remote_bytes))
            # reassemble in wanted order
            out = np.empty(
                (len(wanted), self.file.attrs.record_spec.items_per_record),
                dtype=self.file.attrs.record_spec.dtype,
            )
            pos_of = {int(r): i for i, r in enumerate(wanted)}
            for idx, take in pieces:
                for r, row in zip(idx, take):
                    out[pos_of[int(r)]] = row
            return q, out

        def driver():
            procs = [env.process(phase_worker(q)) for q in range(p)]
            results = yield env.all_of(procs)
            return dict(results.values())

        result = yield env.process(driver())
        self.last_exchange_bytes = exchange_bytes[0]
        return result

    # -- collective write ----------------------------------------------------------

    def write_all(self, per_process: dict[int, np.ndarray]):
        """Generator: every process contributes its records; two-phase.

        ``per_process[q]`` holds process q's records in its internal-view
        order. Phase 1 exchanges records to the file-domain owners; phase
        2 each owner writes its contiguous domain with one transfer.
        """
        env = self.file.env
        m = self.file.map
        p = m.n_processes
        spec = self.file.attrs.record_spec
        if sorted(per_process) != list(range(p)):
            raise ValueError("need data for every process")
        # assemble the global image in memory domains (the exchange)
        exchange_bytes = 0
        n = self.file.n_records
        items = spec.items_per_record
        global_img = np.empty((n, items), dtype=spec.dtype)
        for q in range(p):
            wanted = m.records_of(q)
            data = np.asarray(per_process[q])
            if data.ndim == 1:
                data = data.reshape(-1, items)
            if len(data) != len(wanted):
                raise ValueError(
                    f"process {q} supplied {len(data)} records, owns {len(wanted)}"
                )
            global_img[wanted] = data
            # records leaving q's domain travel the interconnect
            lo, hi = self.file_domain(q)
            outside = ((wanted < lo) | (wanted >= hi)).sum()
            exchange_bytes += int(outside) * spec.record_size
        self.last_exchange_bytes = exchange_bytes

        barrier = SimBarrier(env, p)

        def phase_worker(q: int):
            cost = self._exchange_cost(
                exchange_bytes // p if exchange_bytes else 0
            )
            if cost:
                yield env.timeout(cost)
            yield barrier.wait()
            lo, hi = self.file_domain(q)
            if hi > lo:
                yield self.file.write_records(lo, global_img[lo:hi])
            return q

        def driver():
            procs = [env.process(phase_worker(q)) for q in range(p)]
            yield env.all_of(procs)
            return n

        result = yield env.process(driver())
        return result
