"""Two-phase collective I/O — the extension the paper's concepts led to.

§6 asks for "the best ways to implement" the organizations; the answer
the community converged on a few years later (Bridge's tools, PASSION,
then MPI-IO's collective buffering) is *two-phase I/O*: when every
process of a parallel program participates in one logical transfer whose
per-process pieces are small and strided (the IS internal view is the
canonical case), it is cheaper to

1. **Phase 1 (I/O)** — divide the *file range* into one contiguous domain
   per process (its *file domain*) and have each process transfer only
   its own domain with a few large sequential requests, then
2. **Phase 2 (exchange)** — redistribute the data in memory, over the
   interconnect, to the processes that actually want each record.

The trade: phase 1 converts many seeks into streaming transfers; phase 2
adds interconnect traffic. Benchmarks X1 and X2 (the access-optimization
hierarchy) measure the crossover against independent strided, list-I/O,
and data-sieving access.

Collective writes run the phases in the other order: each process first
*exchanges* the records that fall outside its own file domain to the
domain owners (charged per process, for the bytes it actually ships),
then every owner assembles its contiguous domain — read-filling any
record no process contributed, so unwritten bytes keep their previous
contents — and writes it with one transfer.

Both directions are *ranged* (``read_at`` / ``write_at`` over any record
span) and accept explicit per-process index lists, which is what makes
collectives work for the dynamic organizations (SS/GDA, where no static
map says who owns what) under ``allow_dynamic=True``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.convert import contiguous_runs
from ..core.errors import OrganizationError
from ..sim.sync import SimBarrier

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = ["CollectiveIO", "balanced_indices"]


def balanced_indices(start: int, count: int, n_processes: int) -> dict[int, np.ndarray]:
    """A balanced contiguous split of ``[start, start + count)`` records.

    The canonical explicit ``indices=`` argument for collectives over the
    dynamic organizations (SS/GDA have no static ownership to consult):
    process ``q`` receives the ``q``-th of ``n_processes`` contiguous
    domains, sized as evenly as possible — the same arithmetic as
    :meth:`CollectiveIO.file_domain`.
    """
    if n_processes < 1:
        raise ValueError("n_processes must be >= 1")
    q_size, r = divmod(count, n_processes)
    out: dict[int, np.ndarray] = {}
    for q in range(n_processes):
        lo = start + q * q_size + min(q, r)
        hi = lo + q_size + (1 if q < r else 0)
        out[q] = np.arange(lo, hi, dtype=np.int64)
    return out


class CollectiveIO:
    """Coordinated ranged transfers for all processes of a file.

    ``exchange_rate`` (bytes/second) and ``exchange_latency`` (seconds per
    message) model the interconnect of the exchange phase. The
    1989-flavoured default (10 MB/s, 100 µs) is an order of magnitude
    faster than one disk — the regime in which two-phase I/O pays off.

    By default the file must have a static organization (S/PS/IS/PDA), so
    the organization map determines which records each process wants.
    ``allow_dynamic=True`` admits SS/GDA files too; every collective call
    must then pass explicit ``indices`` (there is no static ownership to
    consult).
    """

    def __init__(
        self,
        file: "ParallelFile",
        exchange_rate: float = 10e6,
        exchange_latency: float = 1e-4,
        *,
        allow_dynamic: bool = False,
    ):
        if not file.map.is_static and not allow_dynamic:
            raise OrganizationError(
                "collective I/O requires a static organization (S/PS/IS/PDA); "
                "pass allow_dynamic=True and explicit indices= to run "
                "collectives over SS/GDA files"
            )
        if exchange_rate <= 0 or exchange_latency < 0:
            raise ValueError("invalid interconnect parameters")
        self.file = file
        self.exchange_rate = exchange_rate
        self.exchange_latency = exchange_latency
        #: bytes moved over the interconnect by the last operation
        self.last_exchange_bytes = 0
        #: per-process interconnect bytes of the last operation
        self.last_remote_bytes: dict[int, int] = {}

    # -- file domains ---------------------------------------------------------

    def file_domain(
        self, process: int, start: int = 0, count: int | None = None
    ) -> tuple[int, int]:
        """Half-open record range ``process`` transfers in the I/O phase —
        a balanced contiguous split of ``[start, start + count)`` (the
        whole file by default)."""
        if count is None:
            count = self.file.n_records - start
        p = self.file.map.n_processes
        q, r = divmod(count, p)
        lo = start + process * q + min(process, r)
        hi = lo + q + (1 if process < r else 0)
        return lo, hi

    def _exchange_cost(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.exchange_latency + nbytes / self.exchange_rate

    def _wanted(
        self, start: int, count: int, indices
    ) -> dict[int, np.ndarray]:
        """Per-process global record indices for a ranged collective.

        Defaults to each process's organization-map sequence clipped to
        the range; explicit ``indices`` (``{process: array}``) override it
        and are required for dynamic organizations.
        """
        m = self.file.map
        p = m.n_processes
        end = start + count
        out: dict[int, np.ndarray] = {}
        if indices is None:
            if not m.is_static:
                raise OrganizationError(
                    f"{m.org.name} files have no static record ownership; "
                    "pass explicit indices={process: records}"
                )
            for q in range(p):
                recs = m.records_of(q)
                out[q] = recs[(recs >= start) & (recs < end)]
            return out
        if sorted(indices) != list(range(p)):
            raise ValueError("need indices for every process")
        for q in range(p):
            arr = np.asarray(indices[q], dtype=np.int64)
            if arr.size and (arr.min() < start or arr.max() >= end):
                raise ValueError(
                    f"process {q} indices outside range [{start}, {end})"
                )
            out[q] = arr
        return out

    # -- collective read --------------------------------------------------------

    def read_all(self, indices=None):
        """Generator: every process's records, via two-phase transfer.

        Returns ``{process: array}`` where each array holds the process's
        records in its access order (exactly what independent reads would
        have returned). See :meth:`read_at` for ``indices``.
        """
        return (yield from self.read_at(0, self.file.n_records, indices))

    def read_at(self, start: int, count: int, indices=None):
        """Generator: ranged two-phase collective read of
        ``[start, start + count)``.

        Each process reads its file domain of the range with one
        contiguous transfer, then pulls the records it wants from the
        owning domains over the interconnect (each process is charged the
        bytes *it* fetched remotely). ``indices`` optionally gives each
        process's wanted records explicitly (required for dynamic
        organizations); duplicates across processes are fine for reads.
        """
        env = self.file.env
        p = self.file.map.n_processes
        self.file._check_span(start, count)
        wanted_of = self._wanted(start, count, indices)
        spec = self.file.attrs.record_spec
        record_size = spec.record_size
        bounds = [self.file_domain(q, start, count) for q in range(p)]
        barrier = SimBarrier(env, p)
        domains: dict[int, np.ndarray] = {}
        remote: dict[int, int] = {}

        def phase_worker(q: int):
            # I/O phase: read my contiguous file domain
            lo, hi = bounds[q]
            if hi > lo:
                domains[q] = yield self.file.read_records(lo, hi - lo)
            else:
                domains[q] = spec.decode(b"")
            yield barrier.wait()
            # exchange phase: pull my records from the owning domains
            wanted = wanted_of[q]
            if len(wanted) == 0:
                remote[q] = 0
                return q, spec.decode(b"")
            out = np.empty(
                (len(wanted), spec.items_per_record), dtype=spec.dtype
            )
            remote_bytes = 0
            for src in range(p):
                s_lo, s_hi = bounds[src]
                mask = (wanted >= s_lo) & (wanted < s_hi)
                if not mask.any():
                    continue
                take = domains[src][wanted[mask] - s_lo]
                out[mask] = take
                if src != q:
                    remote_bytes += take.shape[0] * record_size
            remote[q] = remote_bytes
            if remote_bytes:
                yield env.timeout(self._exchange_cost(remote_bytes))
            return q, out

        def driver():
            procs = [env.process(phase_worker(q)) for q in range(p)]
            results = yield env.all_of(procs)
            return dict(results.values())

        result = yield env.process(driver())
        self.last_remote_bytes = dict(remote)
        self.last_exchange_bytes = sum(remote.values())
        return result

    # -- collective write ----------------------------------------------------------

    def write_all(self, per_process: dict[int, np.ndarray], indices=None):
        """Generator: every process contributes its records; two-phase.

        ``per_process[q]`` holds process q's records in its access order.
        See :meth:`write_at`.
        """
        return (
            yield from self.write_at(
                0, self.file.n_records, per_process, indices
            )
        )

    def write_at(
        self,
        start: int,
        count: int,
        per_process: dict[int, np.ndarray],
        indices=None,
    ):
        """Generator: ranged two-phase collective write of
        ``[start, start + count)``.

        Exchange phase: each process partitions its own records by file
        domain and ships the ones crossing into other domains (charged
        per process for the bytes it actually sends). I/O phase: each
        domain owner assembles its contiguous domain from the received
        pieces — records no process contributed are *read-filled* from
        the file first, so unwritten ranges keep their previous contents
        instead of receiving uninitialized garbage — and writes it with
        one transfer.

        ``indices`` optionally gives each process's record placement
        explicitly (required for dynamic organizations). Index lists must
        be disjoint across processes: overlapping collective writes have
        no defined outcome.
        """
        env = self.file.env
        m = self.file.map
        p = m.n_processes
        spec = self.file.attrs.record_spec
        items = spec.items_per_record
        self.file._check_span(start, count)
        wanted_of = self._wanted(start, count, indices)
        if sorted(per_process) != list(range(p)):
            raise ValueError("need data for every process")
        data_of: dict[int, np.ndarray] = {}
        for q in range(p):
            data = np.asarray(per_process[q])
            if data.ndim == 1:
                data = data.reshape(-1, items)
            if len(data) != len(wanted_of[q]):
                raise ValueError(
                    f"process {q} supplied {len(data)} records, "
                    f"owns {len(wanted_of[q])}"
                )
            data_of[q] = data
        all_idx = (
            np.concatenate([wanted_of[q] for q in range(p)])
            if p
            else np.empty(0, dtype=np.int64)
        )
        if len(np.unique(all_idx)) != len(all_idx):
            raise ValueError(
                "collective write indices overlap across processes"
            )

        bounds = [self.file_domain(q, start, count) for q in range(p)]
        barrier = SimBarrier(env, p)
        #: per-domain contributions: list of (global indices, rows)
        incoming: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {
            q: [] for q in range(p)
        }
        remote: dict[int, int] = {}

        def phase_worker(q: int):
            # exchange phase: scatter my records to their domain owners;
            # only the records crossing out of my own domain travel the
            # interconnect, and I pay for exactly those bytes
            wanted, data = wanted_of[q], data_of[q]
            remote_bytes = 0
            for dst in range(p):
                d_lo, d_hi = bounds[dst]
                mask = (wanted >= d_lo) & (wanted < d_hi)
                if not mask.any():
                    continue
                incoming[dst].append((wanted[mask], data[mask]))
                if dst != q:
                    remote_bytes += int(mask.sum()) * spec.record_size
            remote[q] = remote_bytes
            if remote_bytes:
                yield env.timeout(self._exchange_cost(remote_bytes))
            yield barrier.wait()
            # I/O phase: assemble and write my contiguous domain
            lo, hi = bounds[q]
            if hi <= lo:
                return q
            buf = np.empty((hi - lo, items), dtype=spec.dtype)
            covered = np.zeros(hi - lo, dtype=bool)
            for idx, rows in incoming[q]:
                buf[idx - lo] = rows
                covered[idx - lo] = True
            if not covered.all():
                # read-fill the holes: unwritten records keep their
                # previous on-media contents
                holes = contiguous_runs(np.nonzero(~covered)[0] + lo)
                if len(holes) == 1:
                    fill = yield self.file.read_records(
                        holes[0].start, holes[0].count
                    )
                else:
                    fill = yield self.file.read_gather(
                        [(h.start, h.count) for h in holes]
                    )
                pos = 0
                for h in holes:
                    buf[h.start - lo : h.stop - lo] = fill[pos : pos + h.count]
                    pos += h.count
            yield self.file.write_records(lo, buf)
            return q

        def driver():
            procs = [env.process(phase_worker(q)) for q in range(p)]
            yield env.all_of(procs)
            return count

        result = yield env.process(driver())
        self.last_remote_bytes = dict(remote)
        self.last_exchange_bytes = sum(remote.values())
        return result
