"""Collective I/O extensions (two-phase transfers, the MPI-IO lineage)."""

from .twophase import CollectiveIO, balanced_indices

__all__ = ["CollectiveIO", "balanced_indices"]
