"""Collective I/O extensions (two-phase transfers, the MPI-IO lineage)."""

from .twophase import CollectiveIO

__all__ = ["CollectiveIO"]
