"""Dedicated I/O-node processes: buffering and device service as a server.

§4 of the paper names this implementation strategy directly: "dedicated
I/O processors" whose only job is to accept requests from compute
processes and service the devices. :class:`IONode` is one such processor,
realized as a simulated server process:

* a **bounded inbox** (admission control) — at most ``queue_depth``
  requests may be queued; further clients block at submission, so a flood
  of clients produces backpressure instead of unbounded server state;
* a **batch service loop** — each cycle drains up to ``batch_limit``
  queued requests and services them together, which is what gives the
  request aggregator (`repro.ionode.aggregator`) its cross-client view
  for coalescing and data sieving;
* an optional **server-side block cache** (`repro.ionode.cache`) — hot
  blocks are served to any client with zero device traffic;
* per-node statistics (queue depth, coalescing ratio, cache hit rate,
  utilization) rendered by :func:`repro.trace.report.ionode_report`.

The node self-reports its queue invariants to an attached
:class:`~repro.sanitize.EngineSanitizer` after every batch: no request is
ever lost, occupancy stays within bounds, and every byte a client asked
for is delivered exactly once even through sieved (covering-extent)
reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..sim.engine import Environment, Event, Interrupt
from ..sim.resources import Store
from ..sim.stats import PercentileTally, TimeWeighted, UtilizationTracker
from .aggregator import plan_reads, plan_writes
from .cache import ServerCache

__all__ = ["IONode", "NodeRequest"]


@dataclass
class NodeRequest:
    """One client message to a node: a batch of byte ranges on its devices.

    ``items`` holds ``(device, offset, nbytes)`` triples (absolute device
    offsets). For writes, ``data[i]`` is the payload of ``items[i]``.
    ``admitted`` triggers when the request clears admission control;
    ``event`` triggers when the node has serviced it — with a list of
    per-item arrays for reads, or the byte count for writes.

    ``tenant`` is the QoS principal the request is billed to (``None``
    for untagged work) and ``admitted_at`` when it cleared admission
    control; a QoS-scheduled inbox additionally stamps a ``qos_tag``
    scheduling tag (see :mod:`repro.qos`).
    """

    kind: str
    items: list[tuple[int, int, int]]
    data: list[np.ndarray] | None
    event: Event
    admitted: Event | None
    submit_time: float
    tenant: Any = None
    admitted_at: float | None = None

    @property
    def payload_bytes(self) -> int:
        """Total bytes this request moves (requested or supplied)."""
        return sum(n for _, _, n in self.items)


class _Inbox(Store):
    """The node's default FIFO inbox; reports admissions to the node."""

    def __init__(self, env: Environment, capacity: float, node: "IONode"):
        super().__init__(env, capacity)
        self._node = node

    def on_admit(self, item: Any) -> None:
        """One request cleared admission control."""
        self._node._note_admit(item)


@dataclass
class _ReadWant:
    """One read item awaiting device service (cache misses only)."""

    offset: int
    nbytes: int
    req: NodeRequest
    slot: int


@dataclass
class _Job:
    """One issued device operation and the request items it serves."""

    kind: str
    device: int
    offset: int
    nbytes: int
    guard: Event
    consumers: list
    data: np.ndarray | None = None
    extra: dict = field(default_factory=dict)


class IONode:
    """One dedicated I/O processor owning a set of device controllers."""

    def __init__(
        self,
        env: Environment,
        name: str,
        devices: dict[int, Any],
        *,
        queue_depth: int = 16,
        batch_limit: int = 8,
        sieve: bool = True,
        sieve_factor: float = 4.0,
        sieve_window: int = 1 << 22,
        cache_blocks: int = 0,
        cache_block_bytes: int = 4096,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if batch_limit < 1:
            raise ValueError("batch_limit must be >= 1")
        if not devices:
            raise ValueError("an I/O node needs at least one device")
        self.env = env
        self.name = name
        #: global device index -> controller (or ShadowPair)
        self.devices = dict(devices)
        self.queue_depth = queue_depth
        self.batch_limit = batch_limit
        self.sieve = sieve
        self.sieve_factor = sieve_factor
        self.sieve_window = sieve_window
        self.cache: ServerCache | None = (
            ServerCache(cache_blocks, cache_block_bytes) if cache_blocks > 0 else None
        )
        self.inbox: Store = _Inbox(env, queue_depth, self)
        # -- lifecycle counters (sanitizer invariants) --
        self.accepted = 0
        self.completed = 0
        self.in_service = 0
        #: requests salvaged to other nodes when this node crashed
        self.migrated = 0
        #: set by :meth:`crash`; a crashed node accepts no new requests
        self.crashed = False
        self._current_batch: list[NodeRequest] = []
        # the service loop's outstanding inbox.get(): a request a put handed
        # straight to the loop lives only in this event until the loop
        # resumes, and a crash in that window must still salvage it
        self._pending_get: Event | None = None
        # -- aggregation / device counters --
        self.batches = 0
        self.items_in = 0
        self.device_reads = 0
        self.device_writes = 0
        self.device_bytes_read = 0
        self.device_bytes_written = 0
        self.read_payload_bytes = 0
        self.sieve_waste_bytes = 0
        self.sieved_batches = 0
        self.read_requested_bytes = 0
        self.read_delivered_bytes = 0
        # -- time-weighted stats --
        self.queue_stat = TimeWeighted(env.now)
        self.utilization = UtilizationTracker(env.now)
        #: per-request admission-blocked time (submit -> admit)
        self.admission_stat = PercentileTally()
        #: per-request inbox wait (admit -> drained into a batch)
        self.wait_stat = PercentileTally()
        self._proc = env.process(self._serve(), name=f"{name}.serve")
        sanitizer = env._sanitizer
        if sanitizer is not None and hasattr(sanitizer, "register_node"):
            sanitizer.register_node(self)

    # -- client surface ------------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests admitted and waiting for service."""
        return len(self.inbox.items)

    @property
    def pending_admission(self) -> int:
        """Requests blocked at admission control (inbox full)."""
        return sum(1 for p in self.inbox._puts if not p.triggered)

    def submit(
        self,
        kind: str,
        items: list[tuple[int, int, int]],
        data: list[np.ndarray] | None = None,
        tenant: Any = None,
    ) -> NodeRequest:
        """Enqueue one request; returns it with ``admitted`` to wait on.

        Clients must ``yield req.admitted`` (backpressure: it blocks while
        the inbox is full) and then ``yield req.event`` for the result.

        ``tenant`` overrides the QoS principal the request is billed to;
        by default it is captured from the submitting process's ambient
        context (failover replay passes it explicitly, since replay runs
        outside the original client's process).
        """
        if kind not in ("read", "write"):
            raise ValueError(f"unknown request kind {kind!r}")
        if self.crashed:
            raise RuntimeError(
                f"node {self.name} has crashed; reroute through the "
                "cluster's failover manager"
            )
        if kind == "write" and (data is None or len(data) != len(items)):
            raise ValueError("write requests need one data payload per item")
        for dev, offset, nbytes in items:
            if dev not in self.devices:
                raise ValueError(f"device {dev} is not owned by node {self.name}")
            if offset < 0 or nbytes < 0:
                raise ValueError(f"invalid range ({offset}, {nbytes})")
        if tenant is None:
            tenant = getattr(self.env.active_process, "qos_tenant", None)
        req = NodeRequest(
            kind=kind,
            items=list(items),
            data=data,
            event=Event(self.env),
            admitted=None,
            submit_time=self.env.now,
            tenant=tenant,
        )
        self.accepted += 1
        req.admitted = self.inbox.put(req)
        self.queue_stat.record(self.env.now, self.queued)
        sanitizer = self.env._sanitizer
        if sanitizer is not None and hasattr(sanitizer, "register_node"):
            sanitizer.register_node(self)
        return req

    def _note_admit(self, req: NodeRequest) -> None:
        """Stamp and account one request clearing admission control."""
        req.admitted_at = self.env.now
        blocked = self.env.now - req.submit_time
        self.admission_stat.observe(blocked)
        if req.tenant is not None and hasattr(req.tenant, "note_blocked"):
            req.tenant.note_blocked(blocked)

    def _note_drain(self, req: NodeRequest) -> None:
        """Account one request leaving the inbox for a service batch."""
        admitted = (
            req.admitted_at if req.admitted_at is not None else req.submit_time
        )
        wait = self.env.now - admitted
        self.wait_stat.observe(wait)
        if req.tenant is not None and hasattr(req.tenant, "note_queued"):
            req.tenant.note_queued(wait)

    def enable_qos(self, manager: Any) -> None:
        """Swap the FIFO inbox for a tenant-scheduled one (see repro.qos).

        Admission control (bounded capacity, blocking put) is unchanged;
        only the order in which admitted requests are drained follows the
        manager's scheduler. Must be called while the node is idle (no
        queued items, no blocked submissions); the service loop's
        outstanding ``get`` is carried over to the new inbox.
        """
        from ..qos.scheduler import TenantStore

        old = self.inbox
        if old.items or any(not p.triggered for p in old._puts):
            raise RuntimeError(
                f"node {self.name}: enable_qos requires an idle inbox"
            )
        new = TenantStore(
            self.env,
            self.queue_depth,
            manager.make_scheduler(self.name),
            manager.resolve,
            on_admitted=self._note_admit,
        )
        new._gets.extend(old._gets)
        old._gets.clear()
        self.inbox = new

    def disable_qos(self) -> None:
        """Return to the plain FIFO inbox (idle node only)."""
        old = self.inbox
        if old.items or any(not p.triggered for p in old._puts):
            raise RuntimeError(
                f"node {self.name}: disable_qos requires an idle inbox"
            )
        new = _Inbox(self.env, self.queue_depth, self)
        new._gets.extend(old._gets)
        old._gets.clear()
        self.inbox = new

    def assert_drained(self) -> None:
        """Raise unless every accepted request was serviced or migrated."""
        backlog = self.queued + self.in_service + self.pending_admission
        if backlog or self.accepted != self.completed + self.migrated:
            raise RuntimeError(
                f"node {self.name}: {backlog} request(s) still in flight "
                f"({self.accepted} accepted, {self.completed} completed, "
                f"{self.migrated} migrated)"
            )

    def crash(self) -> list[NodeRequest]:
        """Kill the node, salvaging every request it has not yet settled.

        Returns the salvaged requests — the batch in service, the queued
        inbox, and submissions still blocked at admission control — in
        arrival order, for a failover manager to replay on survivors.
        Clients blocked on ``req.admitted`` are unblocked (their request
        is carried over), and the service loop is torn down. Device
        operations already issued by the dying batch run to completion on
        the devices; replaying their requests re-applies the same bytes
        to the same offsets, so salvage is idempotent.
        """
        if self.crashed:
            return []
        self.crashed = True
        salvaged: list[NodeRequest] = []
        for req in self._current_batch:
            if not req.event.triggered:
                salvaged.append(req)
        self._current_batch = []
        self.in_service = 0
        if (
            self._pending_get is not None
            and self._pending_get.triggered
            and self._pending_get.ok
        ):
            # a put handed this request to the loop's get, but the loop
            # never resumed to take it — it is in neither the batch nor
            # the inbox, and would be lost without this
            salvaged.append(self._pending_get.value)
        self._pending_get = None
        forget = getattr(self.inbox, "forget", None)
        if forget is not None:
            # unschedule queued items so the dead node's scheduler does
            # not keep counting bypasses against requests replayed elsewhere
            for item in self.inbox.items:
                forget(item)
        salvaged.extend(self.inbox.items)
        self.inbox.items.clear()
        for put in list(self.inbox._puts):
            if not put.triggered:
                put.succeed()  # unblock the client; its request migrates
                salvaged.append(put.item)
        self.inbox._puts.clear()
        self.migrated += len(salvaged)
        self.queue_stat.record(self.env.now, 0)
        self.utilization.idle(self.env.now)
        if self._proc.is_alive:
            self._proc.interrupt("crash")
        return salvaged

    @property
    def coalescing_ratio(self) -> float:
        """Client byte-range items per device request actually issued.

        > 1 means aggregation and/or caching removed device traffic.
        """
        ops = self.device_reads + self.device_writes
        return self.items_in / ops if ops else float("nan")

    # -- service loop -----------------------------------------------------------

    def _serve(self):
        try:
            yield from self._serve_loop()
        except Interrupt:
            return  # crashed: the salvage already happened in crash()

    def _serve_loop(self):
        env = self.env
        while True:
            self.utilization.idle(env.now)
            self._pending_get = self.inbox.get()
            first = yield self._pending_get
            self._pending_get = None
            self.utilization.busy(env.now)
            self._note_drain(first)
            batch = [first]
            self._current_batch = batch
            self.in_service = 1
            while len(batch) < self.batch_limit and self.inbox.items:
                self._pending_get = self.inbox.get()
                nxt = yield self._pending_get
                self._pending_get = None
                self._note_drain(nxt)
                batch.append(nxt)
                self.in_service = len(batch)
            self.queue_stat.record(env.now, self.queued)
            yield from self._service_batch(batch)
            self.completed += len(batch)
            self._current_batch = []
            self.in_service = 0
            self.batches += 1
            sanitizer = env._sanitizer
            if sanitizer is not None and hasattr(sanitizer, "on_ionode"):
                sanitizer.on_ionode(self)

    def _service_batch(self, batch: list[NodeRequest]):
        env = self.env
        began = env.now
        self.items_in += sum(len(r.items) for r in batch)
        results: dict[int, list] = {id(r): [None] * len(r.items) for r in batch}
        errors: dict[int, BaseException] = {}
        jobs: list[_Job] = []

        self._plan_batch_writes(batch, jobs)
        self._plan_batch_reads(batch, results, jobs)

        if jobs:
            yield env.all_of([j.guard for j in jobs])
        self._settle_jobs(jobs, results, errors)

        for req in batch:
            if id(req) in errors:
                req.event.fail(errors[id(req)])
                continue
            if req.tenant is not None and hasattr(req.tenant, "note_service"):
                req.tenant.note_service(env.now - began, req.payload_bytes)
            if req.kind == "read":
                delivered = results[id(req)]
                self.read_requested_bytes += req.payload_bytes
                self.read_delivered_bytes += sum(len(a) for a in delivered)
                req.event.succeed(delivered)
            else:
                req.event.succeed(req.payload_bytes)

    # -- batch planning ----------------------------------------------------------

    def _plan_batch_writes(self, batch: list[NodeRequest], jobs: list[_Job]) -> None:
        """Coalesce the batch's write items per device and issue them."""
        per_device: dict[int, list[tuple[int, np.ndarray, NodeRequest]]] = {}
        for req in batch:
            if req.kind != "write":
                continue
            for (dev, offset, _), data in zip(req.items, req.data):
                per_device.setdefault(dev, []).append((offset, data, req))
        for dev, triples in per_device.items():
            ops = plan_writes([(off, data) for off, data, _ in triples])
            for op in ops:
                consumers = [
                    req
                    for off, data, req in triples
                    if off >= op.offset and off + len(data) <= op.offset + len(op.data)
                ]
                ev = self._issue(self.devices[dev].write(op.offset, op.data))
                self.device_writes += 1
                self.device_bytes_written += len(op.data)
                jobs.append(
                    _Job(
                        kind="write",
                        device=dev,
                        offset=op.offset,
                        nbytes=len(op.data),
                        guard=self.env.process(self._guard(ev)),
                        consumers=consumers,
                        data=op.data,
                    )
                )

    def _plan_batch_reads(
        self, batch: list[NodeRequest], results: dict[int, list], jobs: list[_Job]
    ) -> None:
        """Serve cache hits, then coalesce/sieve the misses per device."""
        per_device: dict[int, list[_ReadWant]] = {}
        for req in batch:
            if req.kind != "read":
                continue
            for slot, (dev, offset, nbytes) in enumerate(req.items):
                if nbytes == 0:
                    results[id(req)][slot] = np.empty(0, dtype=np.uint8)
                    continue
                if self.cache is not None:
                    hit = self.cache.lookup(dev, offset, nbytes)
                    if hit is not None:
                        results[id(req)][slot] = hit
                        continue
                per_device.setdefault(dev, []).append(
                    _ReadWant(offset, nbytes, req, slot)
                )
        for dev, wants in per_device.items():
            plan = plan_reads(
                [(w.offset, w.nbytes) for w in wants],
                sieve=self.sieve,
                sieve_factor=self.sieve_factor,
                sieve_window=self.sieve_window,
            )
            self.device_reads += len(plan.reads)
            self.device_bytes_read += plan.device_bytes
            self.read_payload_bytes += plan.payload_bytes
            self.sieve_waste_bytes += plan.waste_bytes
            if plan.sieved:
                self.sieved_batches += 1
            for run in plan.reads:
                consumers = [
                    w
                    for w in wants
                    if w.offset >= run.offset and w.offset + w.nbytes <= run.end
                ]
                ev = self._issue(self.devices[dev].read(run.offset, run.nbytes))
                jobs.append(
                    _Job(
                        kind="read",
                        device=dev,
                        offset=run.offset,
                        nbytes=run.nbytes,
                        guard=self.env.process(self._guard(ev)),
                        consumers=consumers,
                    )
                )

    def _settle_jobs(
        self,
        jobs: list[_Job],
        results: dict[int, list],
        errors: dict[int, BaseException],
    ) -> None:
        """Scatter device results to requests; record failures and coherence.

        Write jobs' cache effects are applied strictly *after* read
        installs: when a batch holds an overlapping read and write (an
        application race the sanitizer flags), a read job may have
        captured the pre-write bytes, and installing them last would
        leave a stale cached block served to every later client. With
        writes settled last, ``note_write`` overwrites (or invalidates)
        any block the write touched.
        """
        for job in jobs:
            if job.kind != "read":
                continue
            ok, value = job.guard.value
            if ok:
                for w in job.consumers:
                    lo = w.offset - job.offset
                    results[id(w.req)][w.slot] = value[lo : lo + w.nbytes].copy()
                if self.cache is not None:
                    self.cache.install(job.device, job.offset, value)
            else:
                for w in job.consumers:
                    errors.setdefault(id(w.req), value)
        for job in jobs:
            if job.kind != "write":
                continue
            ok, value = job.guard.value
            if ok:
                if self.cache is not None:
                    self.cache.note_write(job.device, job.offset, job.data)
            else:
                if self.cache is not None:
                    self.cache.invalidate_device(job.device)
                for req in job.consumers:
                    errors.setdefault(id(req), value)

    def _issue(self, ev: Event) -> Event:
        """Defuse a device event that failed at issue time (dead device).

        Such an event is scheduled *before* its guard process starts, so
        without defusing the scheduler would raise it as an unhandled
        failure; the guard still observes and reports it.
        """
        if ev.triggered and not ev.ok:
            ev.defuse()
        return ev

    def _guard(self, ev: Event):
        """Wrap one device event so a failure cannot kill the service loop."""
        try:
            value = yield ev
            return True, value
        except Exception as exc:
            return False, exc
