"""Request aggregation for I/O nodes: coalescing and data sieving.

When several clients' requests sit in a node's queue at once, the node
sees the *batch*, not one request at a time — exactly the vantage point
Crockett's dedicated I/O processors were meant to have. Two classic
optimizations apply (both later formalized for MPI-IO by Thakur et al.):

* **coalescing** — adjacent or overlapping byte ranges on one device
  merge into a single larger transfer;
* **data sieving** — when the coalesced batch is still noncontiguous but
  its holes are small, read one *covering extent* with a single request
  and scatter the wanted pieces out of it, trading wasted transfer bytes
  for saved per-request positioning time.

Everything in this module is pure planning arithmetic over
``(offset, nbytes)`` ranges — no simulation state — so it is unit-testable
without an engine and reusable by the node service loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

__all__ = [
    "Run",
    "ReadPlan",
    "WriteOp",
    "coalesce",
    "plan_reads",
    "plan_rmw",
    "plan_writes",
]


@dataclass(frozen=True)
class Run:
    """One contiguous device byte range ``[offset, offset + nbytes)``."""

    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        """Past-the-end byte offset."""
        return self.offset + self.nbytes


@dataclass(frozen=True)
class ReadPlan:
    """Device reads covering one batch of read ranges on one device.

    ``reads`` is what the device is asked to do; ``payload_bytes`` is the
    union of bytes the batch actually wants (after coalescing overlaps);
    ``waste_bytes`` is the sieving surcharge — hole bytes transferred only
    to avoid extra requests. Invariant: the total bytes read equals
    ``payload_bytes + waste_bytes``.
    """

    reads: tuple[Run, ...]
    sieved: bool
    payload_bytes: int
    waste_bytes: int

    @property
    def device_bytes(self) -> int:
        """Total bytes the plan transfers from the device."""
        return sum(r.nbytes for r in self.reads)


@dataclass(frozen=True)
class WriteOp:
    """One device write: ``data`` landing at byte ``offset``."""

    offset: int
    data: np.ndarray


def coalesce(ranges: Sequence[tuple[int, int]]) -> list[Run]:
    """Merge overlapping/adjacent ``(offset, nbytes)`` ranges into runs.

    Returns maximal contiguous runs in ascending offset order; zero-length
    ranges are dropped. Each input range is fully contained in exactly one
    returned run.
    """
    spans = sorted((off, off + n) for off, n in ranges if n > 0)
    runs: list[Run] = []
    for lo, hi in spans:
        if runs and lo <= runs[-1].end:
            last = runs[-1]
            if hi > last.end:
                runs[-1] = Run(last.offset, hi - last.offset)
        else:
            runs.append(Run(lo, hi - lo))
    return runs


def plan_reads(
    ranges: Sequence[tuple[int, int]],
    *,
    sieve: bool = True,
    sieve_factor: float = 4.0,
    sieve_window: int = 1 << 22,
) -> ReadPlan:
    """Plan the device reads serving one batch of read ranges.

    First coalesce; then, if more than one run remains, consider replacing
    them all with a single covering-extent read (data sieving). Sieving is
    applied when the covering span is at most ``sieve_factor`` times the
    wanted payload and no larger than ``sieve_window`` bytes — both knobs
    bound the transfer-time surcharge paid to save per-request overhead
    and positioning.
    """
    if sieve_factor < 1.0:
        raise ValueError("sieve_factor must be >= 1.0")
    runs = coalesce(ranges)
    payload = sum(r.nbytes for r in runs)
    if len(runs) <= 1 or not sieve:
        return ReadPlan(tuple(runs), False, payload, 0)
    span = runs[-1].end - runs[0].offset
    if span <= sieve_factor * payload and span <= sieve_window:
        covering = Run(runs[0].offset, span)
        return ReadPlan((covering,), True, payload, span - payload)
    return ReadPlan(tuple(runs), False, payload, 0)


def plan_rmw(
    ranges: Sequence[tuple[int, int]],
    *,
    sieve_factor: float = 4.0,
    sieve_window: int = 1 << 22,
) -> list[tuple[Run, tuple[Run, ...]]]:
    """Group noncontiguous write ranges into read-modify-write windows.

    The write-side counterpart of :func:`plan_reads` (data sieving for
    writes): coalesce the wanted ranges, then greedily pack consecutive
    runs into *windows* — covering extents to be read, overlaid with the
    wanted pieces, and written back as one transfer each. A run joins the
    current window only while the grown window stays within
    ``sieve_window`` and within ``sieve_factor`` times its wanted payload,
    the same knobs that bound read sieving's transfer surcharge.

    Returns ``(window, pieces)`` pairs in ascending order. A window whose
    single piece equals the window itself needs no RMW — the caller should
    issue it as a plain write.
    """
    if sieve_factor < 1.0:
        raise ValueError("sieve_factor must be >= 1.0")
    runs = coalesce(ranges)
    out: list[tuple[Run, tuple[Run, ...]]] = []
    cur: list[Run] = []
    payload = 0

    def close() -> None:
        if cur:
            window = Run(cur[0].offset, cur[-1].end - cur[0].offset)
            out.append((window, tuple(cur)))

    for r in runs:
        if cur:
            span = r.end - cur[0].offset
            if span <= sieve_window and span <= sieve_factor * (payload + r.nbytes):
                cur.append(r)
                payload += r.nbytes
                continue
            close()
        cur = [r]
        payload = r.nbytes
    close()
    return out


def plan_writes(items: Sequence[tuple[int, Any]]) -> list[WriteOp]:
    """Plan the device writes for one batch of ``(offset, data)`` items.

    Strictly adjacent writes merge into one transfer. Overlapping writes
    within one batch are an application race (the access sanitizer flags
    them); they are never merged — each is issued separately, in arrival
    order, so the outcome stays the outcome of *some* serial order.
    """
    arrs = [(off, _as_u8(data)) for off, data in items if len(data) > 0]
    in_order = sorted(arrs, key=lambda t: t[0])
    for (lo_a, a), (lo_b, _) in zip(in_order, in_order[1:]):
        if lo_b < lo_a + len(a):  # overlap: no merging at all
            return [WriteOp(off, arr) for off, arr in arrs]
    ops: list[WriteOp] = []
    for off, arr in in_order:
        if ops and off == ops[-1].offset + len(ops[-1].data):
            ops[-1] = WriteOp(ops[-1].offset, np.concatenate([ops[-1].data, arr]))
        else:
            ops.append(WriteOp(off, arr))
    return ops


def _as_u8(data: Any) -> np.ndarray:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(data, dtype=np.uint8)
    return np.asarray(data, dtype=np.uint8)
