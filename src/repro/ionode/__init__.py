"""Dedicated I/O-node subsystem: client/server request routing (§4).

Crockett names dedicated I/O processors as a first-class implementation
strategy: compute processes hand their requests to processors whose only
job is buffering and device service. This package is that tier, as a
simulated client/server architecture:

* :class:`Interconnect` — the latency + bandwidth cost of each
  client <-> node message (mirrors the two-phase collective's model);
* :class:`IONode` — one server process: bounded admission queue, batch
  service loop, request aggregation (coalescing + data sieving), and an
  optional shared :class:`ServerCache`;
* :class:`DeviceRouter` / :class:`IONodeCluster` — the routing layer
  mapping a volume's device set onto nodes;
* :class:`MediatedVolume` — the standard volume surface with data traffic
  routed through the cluster, which is what
  ``ParallelFileSystem(..., io_nodes=...)`` installs.

Every file organization (S/PS/IS/SS/GDA/PDA) runs unchanged over either
path; ``benchmarks/bench_io_nodes.py`` measures the trade.
"""

from .aggregator import ReadPlan, Run, WriteOp, coalesce, plan_reads, plan_writes
from .cache import ServerCache
from .interconnect import Interconnect
from .node import IONode, NodeRequest
from .routing import DeviceRouter, IONodeCluster, MediatedVolume

__all__ = [
    "ReadPlan",
    "Run",
    "WriteOp",
    "coalesce",
    "plan_reads",
    "plan_writes",
    "ServerCache",
    "Interconnect",
    "IONode",
    "NodeRequest",
    "DeviceRouter",
    "IONodeCluster",
    "MediatedVolume",
]
