"""Routing: mapping an organization's device set onto I/O nodes.

The cluster layer binds everything together: a :class:`DeviceRouter`
assigns each device of a volume to exactly one :class:`~repro.ionode.
node.IONode`; a :class:`MediatedVolume` presents the standard
``Volume`` read/write surface, so :class:`~repro.fs.pfs.ParallelFile`
can run server-mediated without any change to the organizations above it
(the opt-in ``io_nodes=`` path of :class:`~repro.fs.pfs.
ParallelFileSystem`).

A file-level transfer maps to device segments exactly as in the direct
path; segments are then grouped per owning node and shipped as one
request message per node over the :class:`~repro.ionode.interconnect.
Interconnect` — so a strided access arrives at the node as a *batch* of
byte ranges, the shape the aggregator needs for coalescing and sieving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..devices.controller import TransientIOError
from ..sim.engine import Environment, Process
from ..storage.layout import gather_payload, plan_batch, scatter_payload
from .interconnect import Interconnect
from .node import IONode

if TYPE_CHECKING:  # pragma: no cover
    from ..resilience.failover import FailoverManager
    from ..storage.layout import DataLayout
    from ..storage.volume import Extent, Volume

__all__ = ["DeviceRouter", "IONodeCluster", "MediatedVolume"]


class DeviceRouter:
    """Static assignment of device indices to node indices."""

    def __init__(self, n_devices: int, n_nodes: int, policy: str = "contiguous"):
        if not 1 <= n_nodes <= n_devices:
            raise ValueError(
                f"need 1 <= n_nodes <= n_devices, got {n_nodes} nodes for "
                f"{n_devices} devices"
            )
        self.n_devices = n_devices
        self.n_nodes = n_nodes
        self.policy = policy
        if policy == "contiguous":
            # node i serves a contiguous band of devices (PS-friendly:
            # a partition's device neighbourhood shares one server)
            q, r = divmod(n_devices, n_nodes)
            self._map = []
            for node in range(n_nodes):
                self._map.extend([node] * (q + (1 if node < r else 0)))
        elif policy == "round-robin":
            # striping-friendly: consecutive devices hit different servers
            self._map = [d % n_nodes for d in range(n_devices)]
        else:
            raise ValueError(f"unknown routing policy {policy!r}")

    def node_of(self, device: int) -> int:
        """Index of the node serving ``device``."""
        return self._map[device]

    def devices_of(self, node: int) -> list[int]:
        """The device indices assigned to ``node``."""
        return [d for d, n in enumerate(self._map) if n == node]

    def reassign(self, device: int, node: int) -> None:
        """Move ``device`` to ``node`` (failover re-routing).

        Takes effect for every request submitted after the call; requests
        already inside a node are the failover manager's to salvage.
        """
        if not 0 <= device < self.n_devices:
            raise ValueError(f"no such device {device}")
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"no such node {node}")
        self._map[device] = node


class IONodeCluster:
    """A set of I/O nodes jointly serving one volume's devices."""

    def __init__(
        self,
        env: Environment,
        nodes: list[IONode],
        router: DeviceRouter,
        interconnect: Interconnect | None = None,
    ):
        if len(nodes) != router.n_nodes:
            raise ValueError("router/node count mismatch")
        self.env = env
        self.nodes = list(nodes)
        self.router = router
        self.interconnect = interconnect or Interconnect()

    @classmethod
    def build(
        cls,
        env: Environment,
        devices: list[Any],
        n_nodes: int,
        *,
        interconnect: Interconnect | None = None,
        policy: str = "contiguous",
        **node_kwargs: Any,
    ) -> "IONodeCluster":
        """Build ``n_nodes`` nodes over ``devices`` (a volume's controllers).

        ``node_kwargs`` (``queue_depth``, ``batch_limit``, ``sieve``,
        ``cache_blocks``, ...) are forwarded to every :class:`IONode`.
        """
        router = DeviceRouter(len(devices), n_nodes, policy)
        nodes = [
            IONode(
                env,
                f"ion{i}",
                {d: devices[d] for d in router.devices_of(i)},
                **node_kwargs,
            )
            for i in range(n_nodes)
        ]
        return cls(env, nodes, router, interconnect)

    def node_of(self, device: int) -> IONode:
        """The node serving ``device``."""
        return self.nodes[self.router.node_of(device)]

    def invalidate_device(self, device: int) -> None:
        """Drop any cached blocks of ``device`` (out-of-band mutation)."""
        node = self.node_of(device)
        if node.cache is not None:
            node.cache.invalidate_device(device)

    def assert_drained(self) -> None:
        """Raise unless every node has serviced everything it accepted."""
        for node in self.nodes:
            node.assert_drained()

    @property
    def total_device_requests(self) -> int:
        """Device operations issued by all nodes (reads + writes)."""
        return sum(n.device_reads + n.device_writes for n in self.nodes)


class MediatedVolume:
    """The ``Volume`` surface, with data traffic routed through I/O nodes.

    Allocation, freeing, and zero-time ``peek``/``poke`` stay on the
    underlying volume (they are management-plane); ``read``/``write``
    become client/server interactions: one request message per touched
    node, admission control at the node inbox, reply payload over the
    interconnect.
    """

    def __init__(self, volume: "Volume", cluster: IONodeCluster):
        if cluster.router.n_devices != volume.n_devices:
            raise ValueError(
                f"cluster routes {cluster.router.n_devices} devices, volume "
                f"has {volume.n_devices}"
            )
        self.volume = volume
        self.cluster = cluster
        #: node-failover manager feeding the per-node circuit breakers
        #: (set by ``ParallelFileSystem.attach_resilience``; optional)
        self.failover: "FailoverManager | None" = None
        #: extent-batched submission: merge device-contiguous segments
        #: before grouping them into per-node request messages (fewer,
        #: larger items per message). Off by default; see docs/PERF.md.
        self.coalesce = False

    # -- delegated management plane ---------------------------------------

    @property
    def env(self) -> Environment:
        """The simulation environment."""
        return self.volume.env

    @property
    def devices(self) -> list[Any]:
        """The underlying device controllers."""
        return self.volume.devices

    @property
    def n_devices(self) -> int:
        """Number of devices in the underlying volume."""
        return self.volume.n_devices

    def allocate(self, layout: "DataLayout", file_bytes: int) -> "Extent":
        """Reserve space on the underlying volume."""
        return self.volume.allocate(layout, file_bytes)

    def free(self, extent: "Extent") -> None:
        """Release an extent on the underlying volume."""
        return self.volume.free(extent)

    def peek(self, extent: "Extent", layout: "DataLayout", offset: int, nbytes: int) -> np.ndarray:
        """Zero-time read, straight from the devices (bypasses nodes)."""
        return self.volume.peek(extent, layout, offset, nbytes)

    def poke(self, extent: "Extent", layout: "DataLayout", offset: int, data: Any) -> None:
        """Zero-time write; invalidates node caches over the touched devices."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        self.volume.poke(extent, layout, offset, arr)
        for seg in layout.map_range(offset, len(arr)):
            self.cluster.invalidate_device(seg.device)

    # -- server-mediated data plane ------------------------------------------

    def read(self, extent: "Extent", layout: "DataLayout", offset: int, nbytes: int) -> Process:
        """Read file bytes ``[offset, offset+nbytes)`` via the I/O nodes."""
        segments = layout.map_range(offset, nbytes)
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_read_plan(extent, merged, scatter, nbytes),
                name="ionode.read",
            )
        return self.env.process(
            self._do_read(extent, segments, nbytes), name="ionode.read"
        )

    def write(self, extent: "Extent", layout: "DataLayout", offset: int, data: Any) -> Process:
        """Write ``data`` at file byte ``offset`` via the I/O nodes."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        segments = layout.map_range(offset, len(arr))
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_write_plan(extent, merged, scatter, arr),
                name="ionode.write",
            )
        return self.env.process(self._do_write(extent, segments, arr), name="ionode.write")

    def read_many(
        self,
        extent: "Extent",
        layout: "DataLayout",
        ranges: list[tuple[int, int]],
    ) -> Process:
        """List-I/O read over the nodes: one message per node for the
        whole batch of ``(offset, nbytes)`` ranges. Value is the single
        concatenated uint8 array, ranges in list order."""
        segments = []
        total = 0
        for offset, nbytes in ranges:
            segments.extend(layout.map_range(offset, nbytes))
            total += nbytes
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_read_plan(extent, merged, scatter, total),
                name="ionode.readmany",
            )
        return self.env.process(
            self._do_read(extent, segments, total), name="ionode.readmany"
        )

    def write_many(
        self,
        extent: "Extent",
        layout: "DataLayout",
        ranges: list[tuple[int, int]],
        data: Any,
    ) -> Process:
        """List-I/O write: ``data`` is the concatenation of all ranges."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        segments = []
        total = 0
        for offset, nbytes in ranges:
            segments.extend(layout.map_range(offset, nbytes))
            total += nbytes
        if total != arr.size:
            raise ValueError(f"ranges cover {total} bytes, data has {arr.size}")
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_write_plan(extent, merged, scatter, arr),
                name="ionode.writemany",
            )
        return self.env.process(
            self._do_write(extent, segments, arr), name="ionode.writemany"
        )

    def _do_read(self, extent: "Extent", segments: list, nbytes: int):
        env = self.env
        per_node: dict[int, list[tuple[int, int, int, int]]] = {}
        for idx, seg in enumerate(segments):
            node_idx = self.cluster.router.node_of(seg.device)
            per_node.setdefault(node_idx, []).append(
                (idx, seg.device, extent.base(seg.device) + seg.offset, seg.length)
            )
        procs = [
            env.process(self._client_read(entries))
            for entries in per_node.values()
        ]
        if procs:
            yield env.all_of(procs)
        out = np.empty(nbytes, dtype=np.uint8)
        starts = np.zeros(len(segments) + 1, dtype=np.int64)
        for i, seg in enumerate(segments):
            starts[i + 1] = starts[i] + seg.length
        for proc in procs:
            for idx, arr in proc.value:
                out[starts[idx] : starts[idx + 1]] = arr
        return out

    def _do_write(self, extent: "Extent", segments: list, arr: np.ndarray):
        env = self.env
        per_node: dict[int, tuple[list, list]] = {}
        pos = 0
        for seg in segments:
            node_idx = self.cluster.router.node_of(seg.device)
            items, chunks = per_node.setdefault(node_idx, ([], []))
            items.append((seg.device, extent.base(seg.device) + seg.offset, seg.length))
            chunks.append(arr[pos : pos + seg.length])
            pos += seg.length
        procs = [
            env.process(self._client_write(items, chunks))
            for items, chunks in per_node.values()
        ]
        if procs:
            yield env.all_of(procs)
        return int(arr.size)

    # -- list-I/O (plan_batch) variants: merged device runs, scatter plan -----

    def _do_read_plan(
        self, extent: "Extent", segments: list, scatter: list, nbytes: int
    ):
        env = self.env
        per_node: dict[int, list[tuple[int, int, int, int]]] = {}
        for idx, seg in enumerate(segments):
            node_idx = self.cluster.router.node_of(seg.device)
            per_node.setdefault(node_idx, []).append(
                (idx, seg.device, extent.base(seg.device) + seg.offset, seg.length)
            )
        procs = [
            env.process(self._client_read(entries))
            for entries in per_node.values()
        ]
        if procs:
            yield env.all_of(procs)
        out = np.empty(nbytes, dtype=np.uint8)
        for proc in procs:
            for idx, arr in proc.value:
                scatter_payload(out, arr, scatter[idx])
        return out

    def _do_write_plan(
        self, extent: "Extent", segments: list, scatter: list, arr: np.ndarray
    ):
        env = self.env
        per_node: dict[int, tuple[list, list]] = {}
        for seg, pieces in zip(segments, scatter):
            node_idx = self.cluster.router.node_of(seg.device)
            items, chunks = per_node.setdefault(node_idx, ([], []))
            items.append((seg.device, extent.base(seg.device) + seg.offset, seg.length))
            chunks.append(gather_payload(arr, pieces))
        procs = [
            env.process(self._client_write(items, chunks))
            for items, chunks in per_node.values()
        ]
        if procs:
            yield env.all_of(procs)
        return int(arr.size)

    def _client_read(self, entries: list):
        """One read message's worth of items, submitted to current owners.

        Owners are resolved only *after* the request-message flight: a
        node crash (or breaker quarantine) during that window re-routes
        its devices, and the items must land at each device's current
        owner — possibly split across several survivors — instead of
        hitting the corpse and failing the client I/O.
        """
        ic = self.cluster.interconnect
        yield self.env.sleep(ic.request_cost())
        subs = [
            (
                node_idx,
                ents,
                self.cluster.nodes[node_idx].submit(
                    "read", [(dev, off, n) for _, dev, off, n in ents]
                ),
            )
            for node_idx, ents in self._by_owner(entries, lambda e: e[1]).items()
        ]
        out = []
        error: BaseException | None = None
        for node_idx, ents, req in subs:
            try:
                yield req.admitted
                arrays = yield req.event
            except Exception as exc:  # drain every sub so none goes unobserved
                self._note_outcome(node_idx, exc)
                if error is None:
                    error = exc
                continue
            self._note_outcome(node_idx, None)
            out.extend((idx, arr) for (idx, _, _, _), arr in zip(ents, arrays))
        if error is not None:
            raise error
        payload = sum(n for *_, n in entries)
        yield self.env.sleep(ic.transfer_cost(payload))
        return out

    def _client_write(self, items: list, chunks: list):
        """One write message's worth of items (see :meth:`_client_read`)."""
        ic = self.cluster.interconnect
        payload = sum(n for _, _, n in items)
        yield self.env.sleep(ic.transfer_cost(payload))
        subs = []
        for node_idx, pairs in self._by_owner(
            list(zip(items, chunks)), lambda p: p[0][0]
        ).items():
            subs.append(
                (
                    node_idx,
                    self.cluster.nodes[node_idx].submit(
                        "write",
                        [item for item, _ in pairs],
                        data=[chunk for _, chunk in pairs],
                    ),
                )
            )
        error: BaseException | None = None
        for node_idx, req in subs:
            try:
                yield req.admitted
                yield req.event
            except Exception as exc:  # drain every sub so none goes unobserved
                self._note_outcome(node_idx, exc)
                if error is None:
                    error = exc
                continue
            self._note_outcome(node_idx, None)
        if error is not None:
            raise error
        yield self.env.sleep(ic.request_cost())
        return payload

    def _by_owner(self, seq: list, device_of) -> dict[int, list]:
        """Group items by the *current* owning node of their device."""
        per_node: dict[int, list] = {}
        for item in seq:
            per_node.setdefault(
                self.cluster.router.node_of(device_of(item)), []
            ).append(item)
        return per_node

    def _note_outcome(self, node_idx: int, exc: BaseException | None) -> None:
        """Feed one sub-request's outcome to the node's circuit breaker.

        Successes close the breaker again; only *transient* errors count
        as breaker failures (a dead device is not the node's fault).
        """
        if self.failover is None:
            return
        if exc is None:
            self.failover.note_request_success(node_idx)
        elif isinstance(exc, TransientIOError):
            self.failover.note_request_failure(node_idx)
