"""Parametric interconnect cost model for client <-> I/O-node traffic.

§4 of the paper proposes "dedicated I/O processors" that compute processes
hand their requests to; on a MIMD machine that hand-off crosses the
interconnection network. The cost model here mirrors the one
``repro.collective.twophase`` uses for its exchange phase: a fixed
per-message latency plus a bandwidth term, with the 1989-flavoured
defaults (10 MB/s, 100 µs) — an order of magnitude faster than one disk,
which is the regime in which offloading I/O to servers pays off.
"""

from __future__ import annotations

__all__ = ["Interconnect"]


class Interconnect:
    """Latency + bandwidth cost model for one network hop.

    ``latency`` is seconds per message, ``bandwidth`` bytes per second,
    and ``request_bytes`` the size of a bare request/ack message (the
    header that travels even when no payload does).
    """

    def __init__(
        self,
        latency: float = 1e-4,
        bandwidth: float = 10e6,
        request_bytes: int = 64,
    ):
        if latency < 0 or bandwidth <= 0 or request_bytes < 0:
            raise ValueError("invalid interconnect parameters")
        self.latency = latency
        self.bandwidth = bandwidth
        self.request_bytes = request_bytes

    def transfer_cost(self, nbytes: int) -> float:
        """Seconds to move one message carrying ``nbytes`` of payload."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency + (self.request_bytes + nbytes) / self.bandwidth

    def request_cost(self) -> float:
        """Seconds to move a payload-free request or acknowledgement."""
        return self.transfer_cost(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Interconnect(latency={self.latency}, "
            f"bandwidth={self.bandwidth}, request_bytes={self.request_bytes})"
        )
