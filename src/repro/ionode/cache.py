"""Server-side block cache shared by all clients of one I/O node.

§4: "buffer caching techniques would be helpful when there is some
locality of reference". The per-process :class:`~repro.buffering.cache.
BufferCache` captures one process's locality; placing the cache *in the
I/O node* instead makes it shared — a block fetched for one client serves
every later client of any device the node owns, with zero device traffic.

The cache is write-through coherent: node writes update fully-covered
cached blocks in place and invalidate partially-covered ones. Because
each device is owned by exactly one node, there is no cross-node
coherence problem by construction.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["ServerCache"]


class ServerCache:
    """LRU cache of fixed-size aligned device blocks, keyed ``(device, block)``."""

    def __init__(self, capacity_blocks: int, block_bytes: int = 4096):
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        if block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        self.capacity = capacity_blocks
        self.block_bytes = block_bytes
        self._blocks: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups fully served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, device: int, offset: int, nbytes: int) -> np.ndarray | None:
        """The bytes ``[offset, offset+nbytes)`` if every covering block is
        cached, else ``None``. Counts one hit or miss per call."""
        bs = self.block_bytes
        first, last = offset // bs, (offset + nbytes - 1) // bs
        keys = [(device, b) for b in range(first, last + 1)]
        if nbytes <= 0 or any(k not in self._blocks for k in keys):
            self.misses += 1
            return None
        self.hits += 1
        for k in keys:
            self._blocks.move_to_end(k)
        joined = np.concatenate([self._blocks[k] for k in keys])
        lo = offset - first * bs
        return joined[lo : lo + nbytes].copy()

    def install(self, device: int, offset: int, data: np.ndarray) -> None:
        """Cache every full aligned block contained in ``[offset, offset+len)``.

        Partial edge blocks are skipped — the cache only ever holds whole
        blocks, so a later :meth:`lookup` never returns short data.
        """
        bs = self.block_bytes
        end = offset + len(data)
        first = -(-offset // bs)  # first block starting at or after offset
        b = first
        while (b + 1) * bs <= end:
            lo = b * bs - offset
            self._put((device, b), np.asarray(data[lo : lo + bs], dtype=np.uint8).copy())
            b += 1

    def note_write(self, device: int, offset: int, data: np.ndarray) -> None:
        """Keep the cache coherent with a write-through device write.

        Blocks fully covered by the write are updated in place; blocks
        only partially covered are invalidated (dropped).
        """
        bs = self.block_bytes
        end = offset + len(data)
        if end == offset:
            return
        for b in range(offset // bs, (end - 1) // bs + 1):
            key = (device, b)
            if b * bs >= offset and (b + 1) * bs <= end:
                # fully covered: write-allocate the fresh contents
                lo = b * bs - offset
                self._put(key, np.asarray(data[lo : lo + bs], dtype=np.uint8).copy())
            elif key in self._blocks:
                del self._blocks[key]
                self.invalidations += 1

    def invalidate_device(self, device: int) -> int:
        """Drop every cached block of ``device``; returns the count dropped."""
        victims = [k for k in self._blocks if k[0] == device]
        for k in victims:
            del self._blocks[k]
        self.invalidations += len(victims)
        return len(victims)

    def _put(self, key: tuple[int, int], data: np.ndarray) -> None:
        if key in self._blocks:
            self._blocks[key] = data
            self._blocks.move_to_end(key)
            return
        while len(self._blocks) >= self.capacity:
            self._blocks.popitem(last=False)
            self.evictions += 1
        self._blocks[key] = data
