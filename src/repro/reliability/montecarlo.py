"""Monte Carlo validation of the §5 reliability arithmetic.

Simulates fleets of devices with exponential lifetimes and measures the
quantities the analytic module predicts — time to first failure, failures
per year — including repair processes and the protection schemes' survival
behaviour (a parity group survives one concurrent failure; a shadowed
system survives any single failure; an unprotected system loses data on
the first).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .analytic import HOURS_PER_YEAR

__all__ = ["FleetResult", "simulate_fleet", "simulate_protected_fleet"]


@dataclass
class FleetResult:
    """Aggregates over Monte Carlo trials."""

    n_devices: int
    n_trials: int
    mean_time_to_first_failure: float      # hours
    mean_failures_per_year: float
    std_time_to_first_failure: float

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"N={self.n_devices:<5d} "
            f"first-failure={self.mean_time_to_first_failure:>10.1f} h "
            f"failures/yr={self.mean_failures_per_year:>7.2f}"
        )


def simulate_fleet(
    n_devices: int,
    device_mtbf_hours: float,
    n_trials: int = 1000,
    horizon_hours: float = HOURS_PER_YEAR,
    seed: int = 0,
) -> FleetResult:
    """Sample lifetimes; measure first-failure time and yearly failure count.

    Failed devices are replaced immediately (renewal process), matching
    the Poisson failure-count model.
    """
    if n_devices < 1 or n_trials < 1:
        raise ValueError("n_devices and n_trials must be >= 1")
    if device_mtbf_hours <= 0 or horizon_hours <= 0:
        raise ValueError("MTBF and horizon must be positive")
    rng = np.random.default_rng(seed)

    # time to first failure: min of N exponentials, vectorized over trials
    lifetimes = rng.exponential(device_mtbf_hours, size=(n_trials, n_devices))
    first = lifetimes.min(axis=1)

    # failures in horizon under instant replacement: Poisson(N*T/MTBF)
    counts = rng.poisson(
        n_devices * horizon_hours / device_mtbf_hours, size=n_trials
    )
    per_year = counts * (HOURS_PER_YEAR / horizon_hours)

    return FleetResult(
        n_devices=n_devices,
        n_trials=n_trials,
        mean_time_to_first_failure=float(first.mean()),
        mean_failures_per_year=float(per_year.mean()),
        std_time_to_first_failure=float(first.std(ddof=1)) if n_trials > 1 else 0.0,
    )


def simulate_protected_fleet(
    n_devices: int,
    device_mtbf_hours: float,
    mttr_hours: float,
    scheme: str,
    n_trials: int = 1000,
    horizon_hours: float = HOURS_PER_YEAR,
    seed: int = 0,
    parity_group_size: int = 10,
) -> float:
    """P(data loss within horizon) under a protection scheme.

    * ``"none"`` — any failure loses data.
    * ``"parity"`` — devices are organized in groups of
      ``parity_group_size`` sharing one check disk; data is lost only if
      a second device in the *same group* fails before the first is
      rebuilt (within ``mttr_hours``).
    * ``"shadow"`` — data is lost only if a drive's shadow fails while
      the drive itself is being rebuilt (same pair within the window).

    Event-driven per trial: failures arrive as a Poisson process over the
    fleet; each failure lands on a uniformly random device.
    """
    if scheme not in ("none", "parity", "shadow"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if mttr_hours < 0:
        raise ValueError("MTTR must be >= 0")
    if parity_group_size < 2:
        raise ValueError("parity_group_size must be >= 2")
    rng = np.random.default_rng(seed)
    rate = n_devices / device_mtbf_hours
    losses = 0
    for _ in range(n_trials):
        t = 0.0
        #: device -> time its rebuild finishes
        rebuilding: dict[int, float] = {}
        lost = False
        while True:
            t += rng.exponential(1.0 / rate)
            if t > horizon_hours:
                break
            if scheme == "none":
                lost = True
                break
            device = int(rng.integers(0, n_devices))
            rebuilding = {d: end for d, end in rebuilding.items() if end > t}
            if scheme == "parity":
                group = device // parity_group_size
                if any(
                    d // parity_group_size == group for d in rebuilding
                ):
                    lost = True       # overlapping pair inside one group
                    break
            else:  # shadow
                if device in rebuilding:
                    lost = True       # the mirror of a rebuilding drive died
                    break
            rebuilding[device] = t + mttr_hours
        losses += lost
    return losses / n_trials
