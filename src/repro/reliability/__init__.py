"""Reliability: analytic MTBF arithmetic and Monte Carlo validation (§5)."""

from .analytic import (
    HOURS_PER_WEEK,
    HOURS_PER_YEAR,
    availability,
    expected_failures,
    failure_probability,
    mtbf_table_row,
    system_mtbf,
)
from .montecarlo import FleetResult, simulate_fleet, simulate_protected_fleet

__all__ = [
    "HOURS_PER_WEEK",
    "HOURS_PER_YEAR",
    "availability",
    "expected_failures",
    "failure_probability",
    "mtbf_table_row",
    "system_mtbf",
    "FleetResult",
    "simulate_fleet",
    "simulate_protected_fleet",
]
