"""Analytic reliability arithmetic for multi-device file systems (§5).

The paper's worked example:

    "Assuming a MTBF of 30,000 hours for each storage device, a file
    system containing 10 devices could be expected to fail every 3000
    hours (about 3 times per year, on average), which is probably
    tolerable. A system with 100 devices, on the other hand, would
    average more than one failure every two weeks, which is not likely
    to be acceptable."

Under the standard exponential-lifetime model those statements are exact:
with independent devices each of rate λ = 1/MTBF, the time to the *first*
failure in a population of N is exponential with rate Nλ, so the system
MTBF is MTBF/N; failures arrive as a Poisson process of rate Nλ, so the
expected count in time T is NλT.
"""

from __future__ import annotations

import math

__all__ = [
    "system_mtbf",
    "expected_failures",
    "failure_probability",
    "availability",
    "mtbf_table_row",
    "HOURS_PER_YEAR",
    "HOURS_PER_WEEK",
]

HOURS_PER_YEAR = 8766.0   # 365.25 days
HOURS_PER_WEEK = 168.0


def system_mtbf(device_mtbf_hours: float, n_devices: int) -> float:
    """Mean time between (any-device) failures: MTBF / N."""
    _check(device_mtbf_hours, n_devices)
    return device_mtbf_hours / n_devices


def expected_failures(
    device_mtbf_hours: float, n_devices: int, horizon_hours: float
) -> float:
    """Expected failure count in ``horizon_hours`` (Poisson mean N*T/MTBF)."""
    _check(device_mtbf_hours, n_devices)
    if horizon_hours < 0:
        raise ValueError("horizon must be >= 0")
    return n_devices * horizon_hours / device_mtbf_hours


def failure_probability(
    device_mtbf_hours: float, n_devices: int, horizon_hours: float
) -> float:
    """P(at least one failure within ``horizon_hours``) = 1 - e^(-NT/MTBF)."""
    mean = expected_failures(device_mtbf_hours, n_devices, horizon_hours)
    return 1.0 - math.exp(-mean)


def availability(
    device_mtbf_hours: float, n_devices: int, mttr_hours: float
) -> float:
    """Fraction of time all N devices are simultaneously up.

    Per-device availability a = MTBF/(MTBF+MTTR); the system needs all N:
    a**N (no redundancy — the §5 baseline that motivates parity/shadowing).
    """
    _check(device_mtbf_hours, n_devices)
    if mttr_hours < 0:
        raise ValueError("MTTR must be >= 0")
    a = device_mtbf_hours / (device_mtbf_hours + mttr_hours)
    return a**n_devices


def mtbf_table_row(device_mtbf_hours: float, n_devices: int) -> dict:
    """One row of the §5 table: system MTBF, failures/year, weeks between
    failures."""
    mtbf = system_mtbf(device_mtbf_hours, n_devices)
    return {
        "n_devices": n_devices,
        "system_mtbf_hours": mtbf,
        "failures_per_year": HOURS_PER_YEAR / mtbf,
        "weeks_between_failures": mtbf / HOURS_PER_WEEK,
    }


def _check(device_mtbf_hours: float, n_devices: int) -> None:
    if device_mtbf_hours <= 0:
        raise ValueError("device MTBF must be positive")
    if n_devices < 1:
        raise ValueError("n_devices must be >= 1")
