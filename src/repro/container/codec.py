"""Pure codecs for the ``repro.container`` on-disk format.

Everything in this module is arithmetic over ``bytes`` — no engine, no
file system — so the format can be unit-tested (and fuzzed) in isolation,
and the same functions serve the simulated writer/reader, the byte-level
verifier, and the ``python -m repro.container.verify`` CLI.

The format is scda-flavoured (Griesbach & Burstedde, PAPERS.md): a fixed
ASCII-friendly file header followed by typed sections, each with a padded
section header and a deterministically padded payload. *Determinism is
the point*: every field width, pad length, and pad byte is a pure
function of the declared section shapes, so a container written by N
processes is byte-identical to the serially written container — the
paper's "standard file / global view" requirement made checkable with a
single sha256.

Layout (all integers ASCII decimal, right-aligned, space-padded; all
checksums crc32 as 8 lowercase hex digits)::

    file header (128 bytes)
    ------------------------
    [  0: 16)  magic  b"repro.container\\n"
    [ 16: 24)  format version, e.g. b"01.00   "
    [ 24: 88)  user string: <= 63 bytes, space-padded, byte 87 = b"\\n"
    [ 88:100)  section count (12-digit field)
    [100:108)  crc32 over header bytes [0:100)
    [108:127)  reserved (spaces)
    [127]      b"\\n"

    section header (64 bytes)
    -------------------------
    [  0]      kind: b"I" (inline) | b"B" (block) | b"A" (array)
    [  1]      b" "
    [  2: 34)  section id: <= 31 bytes, space-padded
    [ 34: 46)  element count (12-digit field)
    [ 46: 54)  element size (8-digit field)
    [ 54: 62)  crc32 over payload bytes + count field + size field
    [ 62]      b" "
    [ 63]      b"\\n"

    payload padding
    ---------------
    A payload of L bytes is followed by k pad bytes, where
    k = 32 - (L % 32), bumped by 32 whenever k < 2, so the padded
    payload is a multiple of 32 bytes and the pad is always at least
    ``b" \\n"``. Pad bytes are k-1 spaces then one b"\\n".

Section kinds fix the (count, elem_size) pair: inline sections are one
32-byte element (short user metadata, always available without a second
seek); block sections are ``nbytes`` 1-byte elements (opaque blobs);
array sections are ``count`` fixed-size elements — the payloads the
parallel N-writer/M-reader paths move.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.metadata import FileAttributes

__all__ = [
    "MAGIC",
    "VERSION",
    "FILE_HEADER_BYTES",
    "SECTION_HEADER_BYTES",
    "SECTION_ID_BYTES",
    "USER_STRING_BYTES",
    "PAYLOAD_ALIGN",
    "INLINE_BYTES",
    "ATTRS_SECTION_ID",
    "ATTRS_PAYLOAD_BYTES",
    "ContainerFormatError",
    "ChecksumError",
    "FileHeader",
    "SectionDecl",
    "SectionHeader",
    "SectionExtent",
    "ContainerLayout",
    "inline_section",
    "block_section",
    "array_section",
    "pad_len",
    "pad_bytes",
    "padded_payload_len",
    "section_crc",
    "encode_file_header",
    "decode_file_header",
    "encode_section_header",
    "decode_section_header",
    "plan_layout",
    "encode_attrs_payload",
    "decode_attrs_payload",
]

MAGIC = b"repro.container\n"            # 16 bytes
VERSION = b"01.00   "                   # 8 bytes, ASCII, space-padded

FILE_HEADER_BYTES = 128
SECTION_HEADER_BYTES = 64
SECTION_ID_BYTES = 32
USER_STRING_BYTES = 64                  # 63 content bytes + trailing newline
COUNT_FIELD = 12
SIZE_FIELD = 8
CRC_FIELD = 8
PAYLOAD_ALIGN = 32
MIN_PAD = 2
INLINE_BYTES = 32

#: reserved self-description section: JSON of ``FileAttributes.to_dict``
ATTRS_SECTION_ID = "repro/attrs"
ATTRS_PAYLOAD_BYTES = 512

KINDS = (b"I", b"B", b"A")


class ContainerFormatError(Exception):
    """The bytes do not form a valid container structure."""


class ChecksumError(ContainerFormatError):
    """A stored checksum does not match the recomputed one."""


# -- padding -----------------------------------------------------------------


def pad_len(payload_len: int) -> int:
    """Deterministic pad length after a ``payload_len``-byte payload."""
    if payload_len < 0:
        raise ValueError("payload length must be >= 0")
    k = PAYLOAD_ALIGN - (payload_len % PAYLOAD_ALIGN)
    if k < MIN_PAD:
        k += PAYLOAD_ALIGN
    return k


def pad_bytes(payload_len: int) -> bytes:
    """The pad run itself: spaces terminated by one newline."""
    k = pad_len(payload_len)
    return b" " * (k - 1) + b"\n"


def padded_payload_len(payload_len: int) -> int:
    """Payload length rounded up by the padding rule (multiple of 32)."""
    return payload_len + pad_len(payload_len)


# -- integer / string fields -------------------------------------------------


def _enc_int(value: int, width: int, label: str) -> bytes:
    if value < 0:
        raise ValueError(f"{label} must be >= 0")
    field = str(int(value)).rjust(width).encode("ascii")
    if len(field) != width:
        raise ValueError(f"{label} {value} does not fit in {width} digits")
    return field


def _dec_int(field: bytes, label: str) -> int:
    text = field.decode("ascii", errors="replace").strip()
    if not text.isdigit():
        raise ContainerFormatError(f"unparseable {label} field {field!r}")
    return int(text)


def _enc_str(value: str, width: int, label: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > width:
        raise ValueError(f"{label} longer than {width} bytes: {value!r}")
    return raw.ljust(width)


# -- checksums ---------------------------------------------------------------


def section_crc(payload: bytes, count: int, elem_size: int) -> int:
    """crc32 over the payload bytes plus the encoded count/size fields.

    Folding the shape fields in means a corrupted count (which would shift
    every later section) is caught by the same check as a corrupted
    payload byte.
    """
    crc = zlib.crc32(payload)
    crc = zlib.crc32(_enc_int(count, COUNT_FIELD, "count"), crc)
    crc = zlib.crc32(_enc_int(elem_size, SIZE_FIELD, "elem_size"), crc)
    return crc & 0xFFFFFFFF


def _enc_crc(crc: int) -> bytes:
    return f"{crc & 0xFFFFFFFF:08x}".encode("ascii")


def _dec_crc(field: bytes, label: str) -> int:
    try:
        return int(field.decode("ascii"), 16)
    except ValueError:
        raise ContainerFormatError(
            f"unparseable {label} checksum field {field!r}"
        ) from None


# -- file header -------------------------------------------------------------


@dataclass(frozen=True)
class FileHeader:
    """Decoded file header."""

    user_string: str
    section_count: int
    version: str = VERSION.decode("ascii").strip()


def encode_file_header(user_string: str, section_count: int) -> bytes:
    """The 128-byte file header."""
    body = (
        MAGIC
        + VERSION
        + _enc_str(user_string, USER_STRING_BYTES - 1, "user string")
        + b"\n"
        + _enc_int(section_count, COUNT_FIELD, "section count")
    )
    assert len(body) == 100
    out = body + _enc_crc(zlib.crc32(body)) + b" " * 19 + b"\n"
    assert len(out) == FILE_HEADER_BYTES
    return out


def decode_file_header(buf: bytes) -> FileHeader:
    """Parse and fully validate a file header (raises on any defect)."""
    if len(buf) < FILE_HEADER_BYTES:
        raise ContainerFormatError(
            f"file header truncated: {len(buf)} < {FILE_HEADER_BYTES} bytes"
        )
    buf = bytes(buf[:FILE_HEADER_BYTES])
    if buf[:16] != MAGIC:
        raise ContainerFormatError(f"bad magic {buf[:16]!r}")
    version = buf[16:24].decode("ascii", errors="replace").strip()
    if not version.startswith("01."):
        raise ContainerFormatError(f"unsupported format version {version!r}")
    stored = _dec_crc(buf[100:108], "file header")
    actual = zlib.crc32(buf[:100]) & 0xFFFFFFFF
    if stored != actual:
        raise ChecksumError(
            f"file header checksum mismatch: stored {stored:08x}, "
            f"computed {actual:08x}"
        )
    if buf[87:88] != b"\n" or buf[127:128] != b"\n":
        raise ContainerFormatError("file header field terminators damaged")
    user = buf[24:87].decode("utf-8", errors="replace").rstrip()
    count = _dec_int(buf[88:100], "section count")
    return FileHeader(user_string=user, section_count=count, version=version)


# -- section declarations and headers -----------------------------------------


@dataclass(frozen=True)
class SectionDecl:
    """Declared shape of one section (fixed before any byte is written)."""

    kind: str          # 'I' | 'B' | 'A'
    section_id: str
    count: int
    elem_size: int

    def __post_init__(self) -> None:
        if self.kind not in ("I", "B", "A"):
            raise ValueError(f"unknown section kind {self.kind!r}")
        if not self.section_id:
            raise ValueError("section id must be non-empty")
        if len(self.section_id.encode("utf-8")) > SECTION_ID_BYTES - 1:
            raise ValueError(
                f"section id longer than {SECTION_ID_BYTES - 1} bytes: "
                f"{self.section_id!r}"
            )
        if self.count < 0 or self.elem_size < 1:
            raise ValueError("count must be >= 0 and elem_size >= 1")
        if self.kind == "I" and (self.count, self.elem_size) != (1, INLINE_BYTES):
            raise ValueError(
                f"inline sections are exactly 1 x {INLINE_BYTES} bytes"
            )
        if self.kind == "B" and self.elem_size != 1:
            raise ValueError("block sections have 1-byte elements")

    @property
    def payload_len(self) -> int:
        return self.count * self.elem_size


def inline_section(section_id: str) -> SectionDecl:
    """Declare an inline section (one 32-byte element)."""
    return SectionDecl("I", section_id, 1, INLINE_BYTES)


def block_section(section_id: str, nbytes: int) -> SectionDecl:
    """Declare a block section (``nbytes`` opaque bytes)."""
    return SectionDecl("B", section_id, nbytes, 1)


def array_section(section_id: str, count: int, elem_size: int) -> SectionDecl:
    """Declare an array section (``count`` elements of ``elem_size`` bytes)."""
    return SectionDecl("A", section_id, count, elem_size)


@dataclass(frozen=True)
class SectionHeader:
    """Decoded section header: the declaration plus its stored checksum."""

    decl: SectionDecl
    crc: int


def encode_section_header(decl: SectionDecl, crc: int) -> bytes:
    """The 64-byte section header for ``decl`` with payload checksum ``crc``."""
    out = (
        decl.kind.encode("ascii")
        + b" "
        + _enc_str(decl.section_id, SECTION_ID_BYTES, "section id")
        + _enc_int(decl.count, COUNT_FIELD, "count")
        + _enc_int(decl.elem_size, SIZE_FIELD, "elem_size")
        + _enc_crc(crc)
        + b" \n"
    )
    assert len(out) == SECTION_HEADER_BYTES
    return out


def decode_section_header(buf: bytes) -> SectionHeader:
    """Parse one section header (raises :class:`ContainerFormatError`)."""
    if len(buf) < SECTION_HEADER_BYTES:
        raise ContainerFormatError(
            f"section header truncated: {len(buf)} < {SECTION_HEADER_BYTES}"
        )
    buf = bytes(buf[:SECTION_HEADER_BYTES])
    kind = buf[0:1]
    if kind not in KINDS:
        raise ContainerFormatError(f"unknown section kind {kind!r}")
    if buf[1:2] != b" " or buf[62:64] != b" \n":
        raise ContainerFormatError("section header separators damaged")
    section_id = buf[2 : 2 + SECTION_ID_BYTES].decode(
        "utf-8", errors="replace"
    ).rstrip()
    count = _dec_int(buf[34:46], "count")
    elem_size = _dec_int(buf[46:54], "elem_size")
    crc = _dec_crc(buf[54:62], "section")
    decl = SectionDecl(kind.decode("ascii"), section_id, count, elem_size)
    return SectionHeader(decl=decl, crc=crc)


# -- layout planning -----------------------------------------------------------


@dataclass(frozen=True)
class SectionExtent:
    """Byte geometry of one section within the container stream."""

    decl: SectionDecl
    header_off: int

    @property
    def payload_off(self) -> int:
        return self.header_off + SECTION_HEADER_BYTES

    @property
    def payload_len(self) -> int:
        return self.decl.payload_len

    @property
    def pad_off(self) -> int:
        return self.payload_off + self.payload_len

    @property
    def pad_len(self) -> int:
        return pad_len(self.payload_len)

    @property
    def end(self) -> int:
        return self.pad_off + self.pad_len


@dataclass(frozen=True)
class ContainerLayout:
    """Offsets of every declared section, plus the total container size."""

    sections: tuple[SectionExtent, ...]

    @property
    def total_bytes(self) -> int:
        return (
            self.sections[-1].end if self.sections else FILE_HEADER_BYTES
        )

    def find(self, section_id: str) -> SectionExtent:
        """The extent of ``section_id`` (KeyError if not declared)."""
        for ext in self.sections:
            if ext.decl.section_id == section_id:
                return ext
        raise KeyError(section_id)


def plan_layout(decls: Iterable[SectionDecl]) -> ContainerLayout:
    """Compute every section's byte extent from the declarations alone.

    This is the partition-independence anchor: offsets depend only on the
    declared shapes, never on who writes the bytes.
    """
    sections: list[SectionExtent] = []
    seen: set[str] = set()
    off = FILE_HEADER_BYTES
    for decl in decls:
        if decl.section_id in seen:
            raise ValueError(f"duplicate section id {decl.section_id!r}")
        seen.add(decl.section_id)
        ext = SectionExtent(decl=decl, header_off=off)
        sections.append(ext)
        off = ext.end
    return ContainerLayout(sections=tuple(sections))


# -- the reserved self-description payload -------------------------------------


def encode_attrs_payload(attrs_dict: dict) -> bytes:
    """Canonical JSON of a file-attribute dict, space-padded to 512 bytes."""
    raw = json.dumps(attrs_dict, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    if len(raw) > ATTRS_PAYLOAD_BYTES:
        raise ValueError(
            f"attribute payload {len(raw)} bytes exceeds the fixed "
            f"{ATTRS_PAYLOAD_BYTES}-byte self-description section"
        )
    return raw.ljust(ATTRS_PAYLOAD_BYTES)


def decode_attrs_payload(payload: bytes) -> dict:
    """Parse the self-description section back into a plain dict."""
    try:
        return json.loads(bytes(payload).rstrip().decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ContainerFormatError(
            f"unparseable self-description payload: {exc}"
        ) from None
