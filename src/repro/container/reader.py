"""The container reader: self-describing open, checksummed section reads.

``ContainerReader.open`` needs nothing but the file name: the file
header gives the section count, walking the section headers rebuilds the
table of contents, and the reserved ``repro/attrs`` section carries the
backing file's own attributes (organization, layout, block size), so a
reader can introspect a container written by a different process count,
a different organization, or a migrated copy — M readers on a container
written by N writers is just ``pfs.open(name, n_processes=M)``.

Every read verifies the section CRC against the recomputed payload
checksum; a mismatch raises :class:`~repro.container.codec.ChecksumError`
(use :mod:`repro.container.verify` for a non-raising whole-file scan).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

import numpy as np

from ..collective import CollectiveIO, balanced_indices
from .codec import (
    ATTRS_SECTION_ID,
    FILE_HEADER_BYTES,
    SECTION_HEADER_BYTES,
    ChecksumError,
    ContainerFormatError,
    FileHeader,
    SectionExtent,
    decode_attrs_payload,
    decode_file_header,
    decode_section_header,
    section_crc,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile, ParallelFileSystem

__all__ = ["ContainerReader"]


class ContainerReader:
    """Reads one container. Build with the :meth:`open` generator:

    .. code-block:: python

        reader = yield from ContainerReader.open(pfs, "run.cnt", readers=4)
        temps = yield from reader.read_array("state/temperature")

    ``toc`` maps section id to :class:`~repro.container.codec.SectionExtent`
    in file order; ``described_attrs`` is the decoded self-description.
    """

    def __init__(
        self,
        file: "ParallelFile",
        header: FileHeader,
        toc: dict[str, SectionExtent],
        crcs: dict[str, int],
        described_attrs: dict,
    ):
        self.file = file
        self.header = header
        self.toc = toc
        self.crcs = crcs
        self.described_attrs = described_attrs

    # -- construction -----------------------------------------------------

    @classmethod
    def open(cls, pfs: "ParallelFileSystem", name: str, *, readers: int = 1):
        """Generator: open ``name``, walk the headers, decode the
        self-description. Returns a ready :class:`ContainerReader`."""
        if readers < 1:
            raise ValueError("readers must be >= 1")
        file = pfs.open(name, n_processes=readers)
        header_rows = yield file.read_records(0, FILE_HEADER_BYTES)
        header = decode_file_header(header_rows.tobytes())
        toc: dict[str, SectionExtent] = {}
        crcs: dict[str, int] = {}
        off = FILE_HEADER_BYTES
        for i in range(header.section_count):
            if off + SECTION_HEADER_BYTES > file.n_records:
                raise ContainerFormatError(
                    f"section {i}: header at {off} runs past end of file "
                    f"({file.n_records} bytes)"
                )
            rows = yield file.read_records(off, SECTION_HEADER_BYTES)
            shdr = decode_section_header(rows.tobytes())
            ext = SectionExtent(shdr.decl, off)
            if ext.end > file.n_records:
                raise ContainerFormatError(
                    f"section {shdr.decl.section_id!r}: payload runs past "
                    "end of file"
                )
            if shdr.decl.section_id in toc:
                raise ContainerFormatError(
                    f"duplicate section id {shdr.decl.section_id!r}"
                )
            toc[shdr.decl.section_id] = ext
            crcs[shdr.decl.section_id] = shdr.crc
            off = ext.end
        attrs_payload = yield from cls._read_payload_of(
            file, toc, crcs, ATTRS_SECTION_ID
        )
        described = decode_attrs_payload(attrs_payload.tobytes())
        return cls(file, header, toc, crcs, described)

    # -- introspection -----------------------------------------------------

    @property
    def n_readers(self) -> int:
        return self.file.map.n_processes

    @property
    def section_ids(self) -> list[str]:
        return list(self.toc)

    def describe(self) -> dict:
        """The container at a glance (used by the verify CLI too)."""
        return {
            "user_string": self.header.user_string,
            "version": self.header.version,
            "sections": [
                {
                    "id": e.decl.section_id,
                    "kind": e.decl.kind,
                    "count": e.decl.count,
                    "elem_size": e.decl.elem_size,
                    "payload_off": e.payload_off,
                    "payload_len": e.payload_len,
                }
                for e in self.toc.values()
            ],
            "attrs": dict(self.described_attrs),
        }

    def _extent(self, section_id: str, kind: str | None = None) -> SectionExtent:
        try:
            ext = self.toc[section_id]
        except KeyError:
            raise KeyError(
                f"no section {section_id!r}; container has "
                f"{sorted(self.toc)}"
            ) from None
        if kind is not None and ext.decl.kind != kind:
            raise ValueError(
                f"section {section_id!r} has kind {ext.decl.kind}, "
                f"not {kind}"
            )
        return ext

    # -- reads -------------------------------------------------------------

    @staticmethod
    def _read_payload_of(file, toc, crcs, section_id):
        """Generator: serial checksum-verified payload read (open path)."""
        ext = toc[section_id]
        if ext.payload_len == 0:
            payload = np.empty(0, dtype=np.uint8)
        else:
            rows = yield file.read_records(ext.payload_off, ext.payload_len)
            payload = np.ascontiguousarray(rows, dtype=np.uint8).reshape(-1)
        got = section_crc(
            payload.tobytes(), ext.decl.count, ext.decl.elem_size
        )
        if got != crcs[section_id]:
            raise ChecksumError(
                f"section {section_id!r}: payload crc {got:08x} != "
                f"header crc {crcs[section_id]:08x}"
            )
        return payload

    def read_inline(self, section_id: str):
        """Generator: the 32-byte inline payload, trailing spaces kept."""
        ext = self._extent(section_id, "I")
        payload = yield from self._read_payload_of(
            self.file, self.toc, self.crcs, ext.decl.section_id
        )
        return payload.tobytes()

    def read_block(self, section_id: str):
        """Generator: a block section's bytes."""
        self._extent(section_id, "B")
        payload = yield from self._read_payload_of(
            self.file, self.toc, self.crcs, section_id
        )
        return payload.tobytes()

    def read_json(self, section_id: str):
        """Generator: a block section holding JSON text (space padding
        tolerated)."""
        raw = yield from self.read_block(section_id)
        return json.loads(raw.decode("ascii").rstrip())

    def read_array(
        self,
        section_id: str,
        *,
        mode: str = "collective",
        exchange_rate: float = 10e6,
        exchange_latency: float = 1e-4,
    ):
        """Generator: an array section's payload bytes, checksum-verified.

        With one reader (or ``mode="serial"``) the payload is one
        contiguous read. With M readers, ``mode="collective"`` runs a
        two-phase :class:`~repro.collective.CollectiveIO` read where each
        reader pulls a balanced share, and ``mode="view"`` fans out M
        simulated processes over :class:`~repro.datatype.ContiguousView`
        domains. All modes return the identical full payload.
        """
        ext = self._extent(section_id, "A")
        off, nbytes = ext.payload_off, ext.payload_len
        if nbytes == 0:
            return b""
        p = self.n_readers
        if p == 1 or mode == "serial":
            rows = yield self.file.read_records(off, nbytes)
            payload = np.ascontiguousarray(rows, dtype=np.uint8).reshape(-1)
        elif mode == "view":
            payload = yield from self._read_view(off, nbytes, p)
        elif mode == "collective":
            payload = yield from self._read_collective(
                off, nbytes, p, exchange_rate, exchange_latency
            )
        else:
            raise ValueError(f"unknown array read mode {mode!r}")
        got = section_crc(
            payload.tobytes(), ext.decl.count, ext.decl.elem_size
        )
        if got != self.crcs[section_id]:
            raise ChecksumError(
                f"section {section_id!r}: payload crc {got:08x} != "
                f"header crc {self.crcs[section_id]:08x}"
            )
        return payload.tobytes()

    def _read_view(self, off: int, nbytes: int, p: int):
        from ..datatype import ContiguousView

        env = self.file.env
        out = np.empty(nbytes, dtype=np.uint8)
        domains = balanced_indices(0, nbytes, p)

        def worker(lo: int, hi: int):
            rows = yield self.file.read_view(ContiguousView(off + lo, hi - lo))
            out[lo:hi] = np.ascontiguousarray(rows, dtype=np.uint8).reshape(-1)

        procs = [
            env.process(worker(int(idx[0]), int(idx[-1]) + 1))
            for idx in domains.values()
            if len(idx)
        ]
        if procs:
            yield env.all_of(procs)
        return out

    def _read_collective(
        self,
        off: int,
        nbytes: int,
        p: int,
        exchange_rate: float,
        exchange_latency: float,
    ):
        coll = CollectiveIO(
            self.file,
            exchange_rate,
            exchange_latency,
            allow_dynamic=not self.file.map.is_static,
        )
        m = self.file.map
        if m.is_static:
            end = off + nbytes
            wanted = {}
            for q in range(p):
                recs = m.records_of(q)
                wanted[q] = recs[(recs >= off) & (recs < end)]
            # map gaps inside the payload fall to process 0 so coverage
            # is exact (e.g. a SequentialMap's non-reader processes)
            covered = (
                np.concatenate([w for w in wanted.values() if len(w)])
                if any(len(w) for w in wanted.values())
                else np.empty(0, dtype=np.int64)
            )
            missing = np.setdiff1d(
                np.arange(off, end, dtype=np.int64), covered
            )
            if len(missing):
                wanted[0] = np.sort(np.concatenate([wanted[0], missing]))
        else:
            wanted = balanced_indices(off, nbytes, p)
        result = yield from coll.read_at(off, nbytes, wanted)
        out = np.empty(nbytes, dtype=np.uint8)
        for q, rows in result.items():
            if len(wanted[q]):
                out[wanted[q] - off] = np.ascontiguousarray(
                    rows, dtype=np.uint8
                ).reshape(-1)
        return out

    # -- convenience -------------------------------------------------------

    def expected_total_bytes(self) -> int:
        """File size implied by the table of contents (for verify)."""
        if not self.toc:
            return FILE_HEADER_BYTES
        return next(reversed(self.toc.values())).end
