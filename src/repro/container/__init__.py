"""``repro.container`` — a self-describing, serial-equivalent container
format over the simulated parallel file system.

The paper's "standard file" requirement, made executable: a container
written by N parallel processes is byte-for-byte the container one
serial writer produces, on every file organization, so files outlive
the partitioning that created them. Four layers:

* :mod:`~repro.container.codec` — pure byte codecs (headers, padding,
  checksums, layout planning); unit-testable without an engine.
* :mod:`~repro.container.writer` / :mod:`~repro.container.reader` —
  the simulated N-writer / M-reader APIs over ``ParallelFile`` views
  and collective I/O.
* :mod:`~repro.container.verify` — fsck: media scan, live-data-plane
  scan (degraded-mode aware), and the host-file CLI
  (``python -m repro.container.verify``).
* :mod:`~repro.container.convert` — organization migration with the
  self-description kept honest.

See ``docs/FORMAT.md`` for the byte-level specification.
"""

from .codec import (
    ATTRS_SECTION_ID,
    ChecksumError,
    ContainerFormatError,
    ContainerLayout,
    FileHeader,
    SectionDecl,
    SectionExtent,
    array_section,
    block_section,
    inline_section,
    plan_layout,
)
from .convert import migrate_container
from .reader import ContainerReader
from .verify import ContainerReport, VerifyFinding, fsck, scan_bytes, scan_container
from .writer import ContainerWriter

__all__ = [
    "ATTRS_SECTION_ID",
    "ChecksumError",
    "ContainerFormatError",
    "ContainerLayout",
    "ContainerReader",
    "ContainerReport",
    "ContainerWriter",
    "FileHeader",
    "SectionDecl",
    "SectionExtent",
    "VerifyFinding",
    "array_section",
    "block_section",
    "fsck",
    "inline_section",
    "migrate_container",
    "plan_layout",
    "scan_bytes",
    "scan_container",
]
