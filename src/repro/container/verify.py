"""fsck for containers: structural scan, checksum recomputation, CLI.

Three entry points at three layers:

* :func:`scan_bytes` — pure function over a byte string. Walks the file
  header, every section header, payload and pad, recomputes every
  checksum, and returns a :class:`ContainerReport` of structured
  findings (it never raises on corrupt input — corruption is the
  expected input here).
* :func:`scan_container` — zero-time media scan of a simulated
  container via ``volume.peek``: the byte-level truth, unaffected by
  caches, resilience, or degraded devices.
* :func:`fsck` — a simulated process that reads the container through
  the live data plane (I/O nodes, resilience, QoS — whatever is
  attached). On a file system with a resilience layer this is the
  degraded-mode check: with a failed device, fsck's reads run through
  parity reconstruction, and the report records how much of the scan
  was served degraded.

``python -m repro.container.verify <file>`` runs :func:`scan_bytes`
over a host file (e.g. a committed fixture) and exits nonzero when the
report has findings — CI keeps one good and one corrupt fixture and
asserts both behaviours.

Findings interoperate with the sanitizer:
:meth:`ContainerReport.to_sanitize_findings` converts to
:class:`repro.sanitize.Finding` rows so container damage shows up in
the same report stream as access conflicts
(:func:`repro.trace.report.container_report` renders either form).
"""

from __future__ import annotations

import sys
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .codec import (
    FILE_HEADER_BYTES,
    MAGIC,
    SECTION_HEADER_BYTES,
    ContainerFormatError,
    SectionExtent,
    _dec_crc,
    _dec_int,
    decode_section_header,
    pad_bytes,
    section_crc,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = [
    "VerifyFinding",
    "ContainerReport",
    "scan_bytes",
    "scan_container",
    "fsck",
    "cross_check",
    "main",
]

#: finding kinds, roughly ordered from "not a container" to "cosmetic"
KIND_BAD_MAGIC = "bad-magic"
KIND_BAD_VERSION = "bad-version"
KIND_HEADER_CHECKSUM = "header-checksum"
KIND_BAD_HEADER = "bad-file-header"
KIND_BAD_SECTION_HEADER = "bad-section-header"
KIND_SECTION_CHECKSUM = "section-checksum"
KIND_BAD_PADDING = "bad-padding"
KIND_TRUNCATED = "truncated"
KIND_TRAILING = "trailing-bytes"
#: catalog-vs-media cross-check kinds (see :func:`cross_check`)
KIND_CATALOG_SIZE = "catalog-size-mismatch"
KIND_CATALOG_BOUNDS = "catalog-extent-bounds"
KIND_CATALOG_OVERLAP = "catalog-extent-overlap"
KIND_CATALOG_REGISTRY = "catalog-registry-mismatch"
#: dataset self-description kinds (see :func:`_check_dataset_sections`)
KIND_DATASET_SCHEMA = "dataset-bad-schema"
KIND_DATASET_MISSING = "dataset-missing-variable"
KIND_DATASET_SHAPE = "dataset-variable-shape"
KIND_DATASET_ORPHAN = "dataset-orphan-variable"


@dataclass(frozen=True)
class VerifyFinding:
    """One defect located in the container byte stream."""

    kind: str
    section: str        #: section id, or "" for file-level findings
    offset: int         #: byte offset of the damaged region
    detail: str

    def row(self) -> str:
        """One formatted report line."""
        where = self.section or "<file>"
        return f"@{self.offset:>10d}  {self.kind:<20s} {where:<24s} {self.detail}"


@dataclass
class ContainerReport:
    """What a scan saw: the sections it could map and the defects found."""

    name: str
    total_bytes: int
    findings: list[VerifyFinding] = field(default_factory=list)
    #: sections whose headers parsed (even if their payloads failed)
    sections: list[SectionExtent] = field(default_factory=list)
    #: ids of sections whose payload checksums verified
    verified: list[str] = field(default_factory=list)
    #: resilience counter deltas over the scan (fsck only)
    resilience: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_sanitize_findings(self, time: float = 0.0):
        """Container defects as sanitizer findings, one per defect."""
        from ..sanitize import Finding

        return [
            Finding(
                kind=f"container-{f.kind}",
                file=self.name,
                detail=(
                    f"[{f.section or 'file'}] @byte {f.offset}: {f.detail}"
                ),
                time=time,
                processes=(),
            )
            for f in self.findings
        ]


def _note(report: ContainerReport, kind: str, section: str, offset: int,
          detail: str) -> None:
    report.findings.append(VerifyFinding(kind, section, offset, detail))


def scan_bytes(buf: bytes, name: str = "<bytes>") -> ContainerReport:
    """Walk ``buf`` as a container and report every defect found.

    Never raises on damaged input; structural damage that makes later
    sections unmappable stops the walk with a finding explaining why.
    """
    buf = bytes(buf)
    report = ContainerReport(name=name, total_bytes=len(buf))

    # -- file header, field by field so one defect doesn't mask the rest
    if len(buf) < FILE_HEADER_BYTES:
        _note(report, KIND_TRUNCATED, "", len(buf),
              f"file header needs {FILE_HEADER_BYTES} bytes, have {len(buf)}")
        return report
    hdr = buf[:FILE_HEADER_BYTES]
    if hdr[:16] != MAGIC:
        _note(report, KIND_BAD_MAGIC, "", 0, f"magic is {hdr[:16]!r}")
        return report  # not a container: nothing else is trustworthy
    version = hdr[16:24].decode("ascii", errors="replace").strip()
    if not version.startswith("01."):
        _note(report, KIND_BAD_VERSION, "", 16,
              f"unsupported version {version!r}")
    try:
        stored = _dec_crc(hdr[100:108], "file header")
    except ContainerFormatError as exc:
        stored = None
        _note(report, KIND_BAD_HEADER, "", 100, str(exc))
    actual = zlib.crc32(hdr[:100]) & 0xFFFFFFFF
    if stored is not None and stored != actual:
        _note(report, KIND_HEADER_CHECKSUM, "", 100,
              f"stored {stored:08x}, computed {actual:08x}")
    if hdr[87:88] != b"\n" or hdr[127:128] != b"\n":
        _note(report, KIND_BAD_HEADER, "", 87,
              "header field terminators damaged")
    try:
        section_count = _dec_int(hdr[88:100], "section count")
    except ContainerFormatError as exc:
        _note(report, KIND_BAD_HEADER, "", 88, str(exc))
        return report  # cannot walk sections without a count

    # -- section walk
    off = FILE_HEADER_BYTES
    for i in range(section_count):
        if off + SECTION_HEADER_BYTES > len(buf):
            _note(report, KIND_TRUNCATED, "", off,
                  f"section {i}: header runs past end of file")
            return report
        try:
            shdr = decode_section_header(buf[off:off + SECTION_HEADER_BYTES])
        except ContainerFormatError as exc:
            _note(report, KIND_BAD_SECTION_HEADER, "", off,
                  f"section {i}: {exc}")
            return report  # cannot size the payload: walk ends here
        ext = SectionExtent(decl=shdr.decl, header_off=off)
        report.sections.append(ext)
        sid = shdr.decl.section_id
        if ext.end > len(buf):
            _note(report, KIND_TRUNCATED, sid, ext.payload_off,
                  f"payload + pad need {ext.end - off} bytes from {off}, "
                  f"file ends at {len(buf)}")
            return report
        payload = buf[ext.payload_off:ext.pad_off]
        got = section_crc(payload, shdr.decl.count, shdr.decl.elem_size)
        if got != shdr.crc:
            _note(report, KIND_SECTION_CHECKSUM, sid, ext.payload_off,
                  f"stored {shdr.crc:08x}, computed {got:08x} over "
                  f"{len(payload)} payload bytes")
        else:
            report.verified.append(sid)
        if buf[ext.pad_off:ext.end] != pad_bytes(ext.payload_len):
            _note(report, KIND_BAD_PADDING, sid, ext.pad_off,
                  f"{ext.pad_len}-byte pad is not spaces + newline")
        off = ext.end

    if off < len(buf):
        _note(report, KIND_TRAILING, "", off,
              f"{len(buf) - off} bytes past the last section")

    _check_dataset_sections(report, buf)
    return report


def _check_dataset_sections(report: ContainerReport, buf: bytes) -> None:
    """Dataset self-description consistency (containers that carry a
    ``repro/dataset`` schema section).

    Cross-checks the parsed schema against the mapped sections: every
    declared variable needs a ``var/<name>`` section whose element count
    and size match the schema's dimensions and dtype
    (``dataset-missing-variable`` / ``dataset-variable-shape``), every
    ``var/*`` section must be declared (``dataset-orphan-variable``),
    and an unparseable schema payload is ``dataset-bad-schema``. Only a
    *verified* schema section is parsed: a corrupt payload already has a
    checksum finding, and garbage JSON would just duplicate it.
    """
    # lazy import: repro.dataset imports this package back
    from ..dataset.core import DATASET_SECTION_ID, VAR_PREFIX
    from ..dataset.model import DatasetSchema

    toc = {e.decl.section_id: e for e in report.sections}
    ext = toc.get(DATASET_SECTION_ID)
    var_sections = {
        sid: e for sid, e in toc.items() if sid.startswith(VAR_PREFIX)
    }
    if ext is None:
        if var_sections:
            for sid, e in var_sections.items():
                _note(report, KIND_DATASET_ORPHAN, sid, e.header_off,
                      f"no {DATASET_SECTION_ID!r} schema declares this "
                      "variable section")
        return
    if DATASET_SECTION_ID not in report.verified:
        return  # payload already has a checksum finding
    from ..core.errors import ReproError

    payload = buf[ext.payload_off:ext.pad_off]
    try:
        schema = DatasetSchema.from_json(payload)
    except ReproError as exc:
        _note(report, KIND_DATASET_SCHEMA, DATASET_SECTION_ID,
              ext.payload_off, str(exc))
        return
    for vname in schema.variables:
        sid = VAR_PREFIX + vname
        var_ext = var_sections.pop(sid, None)
        if var_ext is None:
            _note(report, KIND_DATASET_MISSING, sid, 0,
                  f"schema declares variable {vname!r}; container has no "
                  f"{sid!r} section")
            continue
        count = schema.size(vname)
        elem = schema.variable(vname).itemsize
        decl = var_ext.decl
        if decl.count != count or decl.elem_size != elem:
            _note(report, KIND_DATASET_SHAPE, sid, var_ext.header_off,
                  f"schema declares {count} x {elem} bytes "
                  f"(dims {list(schema.variable(vname).dims)}), section "
                  f"holds {decl.count} x {decl.elem_size}")
    for sid, e in var_sections.items():
        _note(report, KIND_DATASET_ORPHAN, sid, e.header_off,
              f"section not declared by the {DATASET_SECTION_ID!r} schema")


def _media_bytes(file: "ParallelFile") -> bytes:
    """The container's raw media bytes via the zero-time peek path."""
    rows = file.volume.peek(
        file.entry.extent, file.layout, 0, file.attrs.file_bytes
    )
    return np.ascontiguousarray(rows, dtype=np.uint8).tobytes()


def scan_container(file: "ParallelFile") -> ContainerReport:
    """Zero-time media scan of a simulated container (bypasses the data
    plane entirely — this is what is physically on the devices)."""
    return scan_bytes(_media_bytes(file), name=file.name)


def fsck(file: "ParallelFile", chunk_records: int = 1 << 16):
    """Generator: scan the container through the live data plane.

    Reads the whole file with ordinary ``read_records`` calls in
    ``chunk_records`` chunks — through I/O nodes, QoS, and the
    resilience layer if attached — then runs the same structural scan as
    :func:`scan_bytes`. When a resilience layer is attached, the report's
    ``resilience`` dict holds the counter deltas the scan itself caused:
    a scan over a failed device shows ``degraded_reads > 0`` with a clean
    report if parity reconstruction recovered every byte.
    """
    rv = getattr(file.pfs, "resilience", None)
    before = rv.stats.counters() if rv is not None else None
    chunks: list[bytes] = []
    total = file.n_records
    off = 0
    while off < total:
        n = min(chunk_records, total - off)
        rows = yield file.read_records(off, n)
        chunks.append(np.ascontiguousarray(rows, dtype=np.uint8).tobytes())
        off += n
    report = scan_bytes(b"".join(chunks), name=file.name)
    if before is not None:
        after = rv.stats.counters()
        report.resilience = {
            k: after[k] - before[k] for k in after if after[k] != before[k]
        }
    return report


def cross_check(pfs) -> ContainerReport:
    """fsck the *catalog* against the media: every directory entry must
    be backed by a sane on-device allocation.

    For every catalog entry (plain :class:`~repro.fs.catalog.Catalog` or
    the sharded facade — anything with ``entries()``):

    * the extent's device ranges must hold at least ``attrs.file_bytes``
      (allocation is block-granular, so over-allocation is legal;
      under-allocation is ``catalog-size-mismatch``);
    * every per-device range must lie inside that device's capacity
      (``catalog-extent-bounds``);
    * no two entries may claim intersecting ranges of one device —
      a namespace double-owner made visible on media
      (``catalog-extent-overlap``);
    * when the sharded metastore fronts the namespace, its extent
      registry must agree with the live entry (owner name and byte
      count, ``catalog-registry-mismatch``).

    The crash-point harness runs this after every injected crash +
    recovery, so "recovered" is asserted at the media layer too, not
    just by the namespace diff.
    """
    report = ContainerReport(name="<catalog>", total_bytes=0)
    claims: dict[int, list[tuple[int, int, str]]] = {}
    for name, entry in pfs.catalog.entries():
        ext = entry.extent
        if ext is None:
            continue
        total = 0
        for dev, (base, size) in enumerate(zip(ext.bases, ext.sizes)):
            if base is None or size == 0:
                continue
            total += size
            cap = pfs.volume.devices[dev].capacity_bytes
            if base < 0 or base + size > cap:
                _note(report, KIND_CATALOG_BOUNDS, name, base,
                      f"device {dev} range [{base}, {base + size}) outside "
                      f"capacity {cap}")
            for lo, hi, other in claims.get(dev, ()):
                if base < hi and lo < base + size:
                    _note(report, KIND_CATALOG_OVERLAP, name, max(base, lo),
                          f"device {dev} range [{base}, {base + size}) "
                          f"intersects {other!r}'s [{lo}, {hi})")
            claims.setdefault(dev, []).append((base, base + size, name))
        # allocation is block-granular, so the extent may legally be
        # larger than the file; smaller means data cannot all be on media
        if total < entry.attrs.file_bytes:
            _note(report, KIND_CATALOG_SIZE, name, 0,
                  f"extent holds {total} bytes, attributes declare "
                  f"{entry.attrs.file_bytes}")
        report.total_bytes += total
    service = getattr(pfs, "metastore", None)
    if service is not None:
        registry = {
            rec.owner: rec
            for shard in service.shards
            for rec in shard.extents.values()
        }
        for name, entry in pfs.catalog.entries():
            rec = registry.get(name)
            if rec is None:
                _note(report, KIND_CATALOG_REGISTRY, name, 0,
                      "no extent-registry record owns this entry")
            elif rec.nbytes != entry.attrs.file_bytes:
                _note(report, KIND_CATALOG_REGISTRY, name, 0,
                      f"registry says {rec.nbytes} bytes, attributes "
                      f"declare {entry.attrs.file_bytes}")
    return report


# -- host-file CLI -------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.container.verify <file> [...]`` — scan host
    files, print a report, exit 0 only if every file is clean."""
    args = list(sys.argv[1:] if argv is None else argv)
    quiet = "-q" in args
    paths = [a for a in args if a != "-q"]
    if not paths:
        print("usage: python -m repro.container.verify [-q] <file> [file ...]",
              file=sys.stderr)
        return 2
    from ..trace.report import container_report

    status = 0
    for path in paths:
        try:
            with open(path, "rb") as fh:
                buf = fh.read()
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            status = 2
            continue
        report = scan_bytes(buf, name=path)
        if not quiet:
            print(container_report(report))
        if not report.clean:
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    # delegate to the canonical module object (the package import above
    # already created one; running this file's copy would duplicate the
    # dataclass types)
    from repro.container.verify import main as _main

    sys.exit(_main())
