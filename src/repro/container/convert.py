"""Container migration: change the backing organization, keep the bytes.

A container's payload geometry is organization-independent (offsets come
from :func:`~repro.container.codec.plan_layout` alone), so migrating a
container between organizations is a byte copy —
:func:`repro.fs.convert.convert_file` through the global view — plus one
in-place rewrite of the reserved ``repro/attrs`` section so the
self-description matches the new backing file. The attrs payload is
fixed at 512 bytes precisely so this rewrite never moves an offset.

A PS-written container is therefore IS-readable (or S-, PDA-, …) after
``migrate_container``: every user section's bytes, checksums and
offsets are untouched, and :func:`repro.container.verify.scan_container`
stays clean across the move.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.organizations import FileOrganization
from ..fs.convert import convert_file
from .codec import (
    ATTRS_PAYLOAD_BYTES,
    ATTRS_SECTION_ID,
    FILE_HEADER_BYTES,
    block_section,
    encode_attrs_payload,
    encode_section_header,
    section_crc,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile, ParallelFileSystem

__all__ = ["migrate_container"]


def migrate_container(
    pfs: "ParallelFileSystem",
    src: "ParallelFile",
    new_name: str,
    dst_org: FileOrganization | str,
    *,
    n_processes: int | None = None,
    chunk_records: int = 4096,
    layout: str | None = None,
    **org_params: Any,
):
    """Generator: copy container ``src`` into organization ``dst_org``.

    Runs inside a simulated process. Returns the new
    :class:`~repro.fs.pfs.ParallelFile`; open it with
    :meth:`~repro.container.ContainerReader.open` as usual. Inherits
    :func:`~repro.fs.convert.convert_file`'s catalog-level atomicity: an
    interrupted migration leaves no half-written destination behind.
    """
    dst = yield from convert_file(
        pfs,
        src,
        new_name,
        dst_org,
        n_processes=n_processes,
        chunk_records=chunk_records,
        layout=layout,
        **org_params,
    )
    try:
        yield from _rewrite_attrs(dst)
    except BaseException:
        if pfs.exists(new_name):
            pfs.delete(new_name)
        raise
    return dst


def _rewrite_attrs(dst: "ParallelFile"):
    """Generator: refresh the self-description section of ``dst`` in place.

    The attrs section is always the first section (header at byte 128),
    with a fixed 512-byte payload; only its payload and header checksum
    change — every other byte of the container is already correct.
    """
    decl = block_section(ATTRS_SECTION_ID, ATTRS_PAYLOAD_BYTES)
    payload = encode_attrs_payload(dst.attrs.to_dict())
    crc = section_crc(payload, decl.count, decl.elem_size)
    header = encode_section_header(decl, crc)
    buf = np.frombuffer(header + payload, dtype=np.uint8).reshape(-1, 1)
    yield dst.write_records(FILE_HEADER_BYTES, buf)
