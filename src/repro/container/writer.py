"""The container writer: serial-equivalent sections over a parallel file.

A container lives *inside* one :class:`~repro.fs.pfs.ParallelFile` with
1-byte records: the container byte stream is the file's global record
stream, so every organization, layout, data plane (I/O nodes,
resilience, QoS) and access path the file system has composes with it
unchanged.

Serial equivalence falls out of three decisions:

* the full section plan is declared up front, so every header, payload
  and pad byte has a fixed offset (:func:`~repro.container.codec.plan_layout`)
  before any process writes anything;
* the physical shape of the file is pinned at create time by
  ``layout_processes`` (recorded in the self-description section) and
  never re-derived from the number of live writers — N writers *open*
  the same file with ``n_processes=N``, which moves only the access
  mapping, never the bytes;
* metadata (file header, section headers, pads) is written by the
  coordinating process, while array payloads go down the PR 6 paths —
  two-phase :class:`~repro.collective.CollectiveIO` writes or
  per-process :class:`~repro.datatype.ContiguousView` list-I/O — whose
  write sets are disjoint and cover the payload exactly.

Any N therefore produces the same media bytes as one serial writer, and
``sha256(media)`` is the equivalence oracle (benchmark X3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..collective import CollectiveIO, balanced_indices
from ..core.organizations import FileCategory, FileOrganization
from .codec import (
    ATTRS_SECTION_ID,
    INLINE_BYTES,
    ContainerLayout,
    SectionDecl,
    SectionExtent,
    block_section,
    encode_attrs_payload,
    encode_file_header,
    encode_section_header,
    pad_bytes,
    plan_layout,
    section_crc,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile, ParallelFileSystem

__all__ = ["ContainerWriter", "attrs_decl", "container_decls"]


def attrs_decl() -> SectionDecl:
    """The reserved self-description section (JSON of the file attributes)."""
    from .codec import ATTRS_PAYLOAD_BYTES

    return block_section(ATTRS_SECTION_ID, ATTRS_PAYLOAD_BYTES)


def container_decls(user_sections: Sequence[SectionDecl]) -> list[SectionDecl]:
    """The full declaration list: the reserved attrs section, then the
    user's sections in order."""
    for d in user_sections:
        if d.section_id == ATTRS_SECTION_ID:
            raise ValueError(
                f"section id {ATTRS_SECTION_ID!r} is reserved for the "
                "self-description section"
            )
    return [attrs_decl(), *user_sections]


def _rows(raw: bytes | np.ndarray) -> np.ndarray:
    """Bytes as (n, 1) uint8 record rows for a 1-byte-record file."""
    arr = (
        np.frombuffer(raw, dtype=np.uint8)
        if isinstance(raw, (bytes, bytearray))
        else np.ascontiguousarray(raw, dtype=np.uint8).reshape(-1)
    )
    return arr.reshape(-1, 1)


class ContainerWriter:
    """Writes one container, section by declared section.

    All I/O methods are generators, driven with ``yield from`` inside a
    simulated process. Sections must be written in declaration order
    (their offsets are fixed by the plan); :meth:`begin` writes the file
    header and the self-description section first.
    """

    def __init__(
        self,
        file: "ParallelFile",
        layout: ContainerLayout,
        user_string: str = "",
    ):
        self.file = file
        self.layout = layout
        self.user_string = user_string
        self._next = 0          # index of the next expected section
        self._began = False

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls,
        pfs: "ParallelFileSystem",
        name: str,
        sections: Sequence[SectionDecl],
        *,
        org: FileOrganization | str = "S",
        writers: int = 1,
        layout_processes: int = 1,
        user_string: str = "",
        records_per_block: int = 64,
        **create_kw: Any,
    ) -> "ContainerWriter":
        """Create the backing parallel file and a writer over it.

        ``layout_processes`` pins the file's physical shape (it is the
        ``n_processes`` the catalog and any clustered layout see);
        ``writers`` is how many processes will drive the array payloads
        and only affects the access mapping. Keeping the two independent
        is what makes N-writer output byte-identical to serial output.
        """
        if writers < 1:
            raise ValueError("writers must be >= 1")
        decls = container_decls(sections)
        layout = plan_layout(decls)
        pfs.create(
            name,
            org,
            n_records=layout.total_bytes,
            record_size=1,
            records_per_block=records_per_block,
            n_processes=layout_processes,
            dtype="uint8",
            category=FileCategory.STANDARD,
            **create_kw,
        )
        # reopen with the live writer count: same bytes, different mapping
        file = pfs.open(name, n_processes=writers)
        return cls(file, layout, user_string=user_string)

    @property
    def n_writers(self) -> int:
        return self.file.map.n_processes

    @property
    def pending(self) -> list[SectionDecl]:
        """Declared sections not yet written (self-description excluded)."""
        return [e.decl for e in self.layout.sections[max(self._next, 1):]]

    @property
    def done(self) -> bool:
        return self._began and self._next >= len(self.layout.sections)

    # -- the serial metadata path ------------------------------------------

    def begin(self):
        """Generator: write the file header and self-description section."""
        if self._began:
            raise RuntimeError("begin() already called")
        header = encode_file_header(
            self.user_string, len(self.layout.sections)
        )
        yield self.file.write_records(0, _rows(header))
        self._began = True
        payload = encode_attrs_payload(self.file.attrs.to_dict())
        yield from self._write_serial(self.layout.sections[0], payload)
        self._next = 1

    def _expect(self, kind: str, section_id: str) -> SectionExtent:
        if not self._began:
            raise RuntimeError("call begin() before writing sections")
        if self._next >= len(self.layout.sections):
            raise RuntimeError("all declared sections already written")
        ext = self.layout.sections[self._next]
        if ext.decl.section_id != section_id or ext.decl.kind != kind:
            raise ValueError(
                f"out-of-order write: expected section "
                f"{ext.decl.section_id!r} (kind {ext.decl.kind}), got "
                f"{section_id!r} (kind {kind}) — sections are written in "
                "declaration order"
            )
        return ext

    def _write_serial(self, ext: SectionExtent, payload: bytes):
        """Generator: header + payload + pad, one writer."""
        crc = section_crc(payload, ext.decl.count, ext.decl.elem_size)
        yield self.file.write_records(
            ext.header_off, _rows(encode_section_header(ext.decl, crc))
        )
        if payload:
            yield self.file.write_records(ext.payload_off, _rows(payload))
        yield self.file.write_records(
            ext.pad_off, _rows(pad_bytes(ext.payload_len))
        )

    def write_inline(self, section_id: str, payload: bytes):
        """Generator: write an inline section (<= 32 bytes, space-padded)."""
        ext = self._expect("I", section_id)
        if len(payload) > INLINE_BYTES:
            raise ValueError(
                f"inline payload {len(payload)} bytes exceeds {INLINE_BYTES}"
            )
        yield from self._write_serial(ext, bytes(payload).ljust(INLINE_BYTES))
        self._next += 1

    def write_block(self, section_id: str, payload: bytes | np.ndarray):
        """Generator: write a block section (declared length required)."""
        ext = self._expect("B", section_id)
        raw = (
            bytes(payload)
            if isinstance(payload, (bytes, bytearray))
            else np.ascontiguousarray(payload, dtype=np.uint8).tobytes()
        )
        if len(raw) != ext.payload_len:
            raise ValueError(
                f"block {section_id!r} declared {ext.payload_len} bytes, "
                f"got {len(raw)}"
            )
        yield from self._write_serial(ext, raw)
        self._next += 1

    # -- the parallel array path -------------------------------------------

    def write_array(
        self,
        section_id: str,
        values: np.ndarray | bytes,
        *,
        mode: str = "collective",
        exchange_rate: float = 10e6,
        exchange_latency: float = 1e-4,
    ):
        """Generator: write an array section with the configured writers.

        ``values`` holds the full array (``count`` x ``elem_size`` bytes).
        The coordinating process writes the header and pad; the payload
        goes down one of the PR 6 parallel paths:

        * ``mode="collective"`` — a two-phase
          :class:`~repro.collective.CollectiveIO` write: static
          organizations partition the payload bytes by the organization
          map, dynamic ones (SS/GDA) by an explicit
          :func:`~repro.collective.balanced_indices` split;
        * ``mode="view"`` — one simulated process per writer, each
          writing its balanced contiguous domain through a
          :class:`~repro.datatype.ContiguousView` (list I/O);
        * ``mode="serial"`` — the coordinator writes the payload alone.

        All three leave identical media bytes; they differ only in
        simulated timing.
        """
        ext = self._expect("A", section_id)
        raw = (
            np.frombuffer(values, dtype=np.uint8)
            if isinstance(values, (bytes, bytearray))
            else np.ascontiguousarray(values, dtype=np.uint8).reshape(-1)
        )
        if raw.size != ext.payload_len:
            raise ValueError(
                f"array {section_id!r} declared "
                f"{ext.decl.count} x {ext.decl.elem_size} = "
                f"{ext.payload_len} bytes, got {raw.size}"
            )
        crc = section_crc(raw.tobytes(), ext.decl.count, ext.decl.elem_size)
        yield self.file.write_records(
            ext.header_off, _rows(encode_section_header(ext.decl, crc))
        )
        if raw.size:
            yield from self._write_payload(
                ext, raw, mode, exchange_rate, exchange_latency
            )
        yield self.file.write_records(
            ext.pad_off, _rows(pad_bytes(ext.payload_len))
        )
        self._next += 1

    def _write_payload(
        self,
        ext: SectionExtent,
        raw: np.ndarray,
        mode: str,
        exchange_rate: float,
        exchange_latency: float,
    ):
        off, nbytes = ext.payload_off, ext.payload_len
        p = self.n_writers
        if p == 1 or mode == "serial":
            yield self.file.write_records(off, raw.reshape(-1, 1))
            return
        if mode == "view":
            env = self.file.env
            domains = balanced_indices(0, nbytes, p)

            def worker(lo: int, hi: int):
                from ..datatype import ContiguousView

                view = ContiguousView(off + lo, hi - lo)
                yield self.file.write_view(raw[lo:hi].reshape(-1, 1), view)

            procs = [
                env.process(worker(int(idx[0]), int(idx[-1]) + 1))
                for idx in domains.values()
                if len(idx)
            ]
            if procs:
                yield env.all_of(procs)
            return
        if mode != "collective":
            raise ValueError(f"unknown array write mode {mode!r}")
        coll = CollectiveIO(
            self.file,
            exchange_rate,
            exchange_latency,
            allow_dynamic=not self.file.map.is_static,
        )
        indices = _payload_indices(self.file, off, nbytes)
        per_process = {
            q: raw[indices[q] - off].reshape(-1, 1) for q in range(p)
        }
        yield from coll.write_at(
            off, nbytes, per_process,
            None if self.file.map.is_static else indices,
        )


def _payload_indices(
    file: "ParallelFile", off: int, nbytes: int
) -> dict[int, np.ndarray]:
    """Per-process byte ownership of ``[off, off + nbytes)``.

    Static organizations use the organization map (clipped to the
    payload); dynamic ones get a balanced contiguous split — the same
    rule readers apply, so writer and reader shares always agree.
    """
    m = file.map
    if not m.is_static:
        return balanced_indices(off, nbytes, m.n_processes)
    end = off + nbytes
    out: dict[int, np.ndarray] = {}
    for q in range(m.n_processes):
        recs = m.records_of(q)
        out[q] = recs[(recs >= off) & (recs < end)]
    return out
