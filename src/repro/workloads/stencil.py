"""One-dimensional stencil sweep with partition-boundary overlap (§5).

The boundary-data problem made concrete: a 3-point smoothing stencil over
a PS-partitioned vector. Each process updates its own records but needs
one neighbour record from each side — the halo. Three strategies, matching
§5's alternatives:

* ``"replicate"`` — the file stores halo copies in each partition
  (:class:`~repro.core.boundary.ReplicatedPartitioning`); each pass reads
  only the process's own (inflated) partition.
* ``"cache"`` — halo records are read once and kept in a
  :class:`~repro.core.boundary.HaloCache`; later passes hit the cache.
* ``"explicit"`` — the application re-reads boundary records from the
  file every pass ("let applications address the problem explicitly").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.boundary import HaloCache

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = ["reference_smooth", "stencil_pass_explicit", "stencil_pass_cached"]


def reference_smooth(x: np.ndarray) -> np.ndarray:
    """The serial ground truth: y[i] = (x[i-1] + x[i] + x[i+1]) / 3,
    with clamped ends."""
    padded = np.concatenate([x[:1], x, x[-1:]])
    return (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0


def _owned_range(file: "ParallelFile", process: int) -> tuple[int, int]:
    recs = file.map.records_of(process)
    if len(recs) == 0:
        return 0, 0
    return int(recs[0]), int(recs[-1]) + 1


def stencil_pass_explicit(file: "ParallelFile", process: int):
    """Generator: one smoothing pass; boundary records re-read from file.

    Returns ``(lo, smoothed_rows)``: the process's updated records. The
    caller writes them back (after a barrier, to keep passes separate).
    """
    lo, hi = _owned_range(file, process)
    if hi <= lo:
        return lo, np.empty((0, file.attrs.record_spec.items_per_record))
    h = file.internal_view(process)
    own = yield from h.read_next(hi - lo)
    gv = file.global_view()
    left = own[:1]
    if lo > 0:
        left = yield from gv.read_at(lo - 1)
    right = own[-1:]
    if hi < file.n_records:
        right = yield from gv.read_at(hi)
    padded = np.concatenate([left, own, right])
    return lo, (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0


def stencil_pass_cached(
    file: "ParallelFile", process: int, cache: HaloCache
):
    """Generator: one smoothing pass; boundary records served from the
    halo cache when present ("helpful if more than one pass is made")."""
    lo, hi = _owned_range(file, process)
    if hi <= lo:
        return lo, np.empty((0, file.attrs.record_spec.items_per_record))
    h = file.internal_view(process)
    own = yield from h.read_next(hi - lo)
    gv = file.global_view()

    def fetch_boundary(record: int):
        hit = cache.lookup(record)
        if hit is not None:
            return hit
        data = yield from gv.read_at(record)
        cache.insert(record, data)
        return data

    left = own[:1]
    if lo > 0:
        left = yield from fetch_boundary(lo - 1)
    right = own[-1:]
    if hi < file.n_records:
        right = yield from fetch_boundary(hi)
    padded = np.concatenate([left, own, right])
    return lo, (padded[:-2] + padded[1:-1] + padded[2:]) / 3.0
