"""Self-scheduled work queue (§3.1's motivating example for SS files).

    "Self-scheduled input is appropriate for algorithms which select the
    next available unit of work for processing, as in a queue with
    multiple servers."

Tasks live one-per-block in an SS file; workers repeatedly draw the next
block, pay its (data-dependent) service time, and optionally write results
to a second self-scheduled output file ("self-scheduled output can be used
when the order of the results is not important").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..fs.internal_io import SSSession

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = ["WorkerStats", "run_task_queue"]


@dataclass
class WorkerStats:
    """Per-worker accounting for a queue run."""

    process: int
    tasks: int = 0
    busy_time: float = 0.0
    blocks: list[int] = field(default_factory=list)


def run_task_queue(
    input_file: "ParallelFile",
    n_workers: int,
    service_time: Callable[[int, np.ndarray], float],
    output_file: "ParallelFile | None" = None,
    result_fn: Callable[[int, np.ndarray], np.ndarray] | None = None,
    early_advance: bool = True,
    pointer_cost: float = 1e-5,
):
    """Set up a self-scheduled queue run; returns (session[s], stats, procs).

    The caller runs ``env.run()`` afterwards and may then validate the
    session. ``service_time(block, data)`` gives each task's simulated
    compute cost — uneven costs are exactly what self-scheduling balances
    and what a static partition cannot (benchmark E7's load-balance side).
    """
    env = input_file.env
    in_session = SSSession(
        input_file, early_advance=early_advance, pointer_cost=pointer_cost
    )
    out_session = (
        SSSession(output_file, early_advance=early_advance, pointer_cost=pointer_cost)
        if output_file is not None
        else None
    )
    stats = [WorkerStats(p) for p in range(n_workers)]

    def worker(p: int):
        h_in = in_session.handle(p)
        h_out = out_session.handle(p) if out_session is not None else None
        while True:
            item = yield from h_in.read_next()
            if item is None:
                return
            block, data = item
            cost = service_time(block, data)
            if cost > 0:
                yield env.timeout(cost)
            stats[p].tasks += 1
            stats[p].busy_time += cost
            stats[p].blocks.append(block)
            if h_out is not None:
                result = (
                    result_fn(block, data) if result_fn is not None else data
                )
                yield from h_out.write_next(result)

    procs = [env.process(worker(p), name=f"worker{p}") for p in range(n_workers)]
    sessions = (in_session, out_session) if out_session else (in_session,)
    return sessions, stats, procs
