"""Workloads: the application patterns §3 motivates each organization with."""

from .database import DatabaseWorkload, run_database_workload
from .generators import (
    record_payload,
    sequential_pattern,
    strided_pattern,
    uniform_pattern,
    working_set_pattern,
    zipf_pattern,
)
from .matrix import WrappedMatrix, parallel_matvec, parallel_row_scale
from .outofcore import OutOfCoreSweep, run_out_of_core
from .stencil import reference_smooth, stencil_pass_cached, stencil_pass_explicit
from .taskqueue import WorkerStats, run_task_queue
from .transpose import create_matrix_file, transpose_naive, transpose_tiled

__all__ = [
    "DatabaseWorkload",
    "run_database_workload",
    "record_payload",
    "sequential_pattern",
    "strided_pattern",
    "uniform_pattern",
    "working_set_pattern",
    "zipf_pattern",
    "WrappedMatrix",
    "parallel_matvec",
    "parallel_row_scale",
    "OutOfCoreSweep",
    "run_out_of_core",
    "reference_smooth",
    "stencil_pass_cached",
    "stencil_pass_explicit",
    "WorkerStats",
    "run_task_queue",
    "create_matrix_file",
    "transpose_naive",
    "transpose_tiled",
]
