"""Wrapped matrix storage (§3.1's motivating example for IS files).

    "This organization would be useful for wrapped storage of a matrix,
    for example."

A matrix is stored one row per record; with an IS file of single-record
blocks, process ``p`` of ``P`` owns rows ``p, p+P, p+2P, ...`` — the
classic wrapped (cyclic) row distribution that balances triangular work.

:class:`WrappedMatrix` wraps file creation plus whole-matrix and per-
process row transfers; :func:`parallel_row_scale` is a simple full-sweep
kernel and :func:`parallel_matvec` an out-of-core matrix-vector multiply,
both usable as simulated processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile, ParallelFileSystem

__all__ = ["WrappedMatrix", "parallel_row_scale", "parallel_matvec"]


class WrappedMatrix:
    """An ``n x m`` float64 matrix in an IS file, one row per record."""

    def __init__(self, pfs: "ParallelFileSystem", name: str, n_rows: int,
                 n_cols: int, n_processes: int):
        if n_rows < 1 or n_cols < 1:
            raise ValueError("matrix must be at least 1x1")
        self.pfs = pfs
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.file: "ParallelFile" = pfs.create(
            name,
            "IS",
            n_records=n_rows,
            record_size=n_cols * 8,
            dtype="float64",
            records_per_block=1,   # "each block may contain only a single record"
            n_processes=n_processes,
        )

    @property
    def n_processes(self) -> int:
        return self.file.map.n_processes

    def my_rows(self, process: int) -> np.ndarray:
        """Global row indices owned by ``process`` (wrapped assignment)."""
        return self.file.map.records_of(process)

    # -- transfers (generators) --------------------------------------------

    def store(self, matrix: np.ndarray):
        """Generator: write the whole matrix through the global view."""
        if matrix.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"expected {(self.n_rows, self.n_cols)}, got {matrix.shape}"
            )
        yield from self.file.global_view().write(matrix)

    def load(self):
        """Generator: read the whole matrix through the global view."""
        out = yield from self.file.global_view().read()
        return out.reshape(self.n_rows, self.n_cols)

    def read_my_rows(self, process: int):
        """Generator: this process's rows, in wrapped order."""
        h = self.file.internal_view(process)
        data = yield from h.read_next(h.n_local_records)
        return data

    def write_my_rows(self, process: int, rows: np.ndarray):
        """Generator: write this process's rows, in wrapped order."""
        h = self.file.internal_view(process)
        yield from h.write_next(rows)


def parallel_row_scale(matrix: WrappedMatrix, process: int, factor: float):
    """Generator: scale this process's rows in place (read-compute-write)."""
    h_in = matrix.file.internal_view(process)
    rows = yield from h_in.read_next(h_in.n_local_records)
    h_out = matrix.file.internal_view(process)
    yield from h_out.write_next(rows * factor)
    return len(rows)


def parallel_matvec(matrix: WrappedMatrix, process: int, x: np.ndarray):
    """Generator: partial y = A x over this process's rows.

    Returns ``(row_indices, partial_y)`` — the caller (or a reducing
    process) scatters the partials into the result vector.
    """
    if len(x) != matrix.n_cols:
        raise ValueError("x length must equal matrix columns")
    rows_idx = matrix.my_rows(process)
    h = matrix.file.internal_view(process)
    rows = yield from h.read_next(h.n_local_records)
    partial = rows @ x if len(rows) else np.empty(0)
    return rows_idx, partial
