"""Out-of-core paging over a PDA file (§3.2's motivating example).

    "This organization is useful for programs which can't fit all of
    their data into memory, and are using files for auxiliary storage.
    Blocks can be thought of as pages of virtual memory, with the direct
    access feature allowing multiple passes on the data."

Each process sweeps its owned blocks repeatedly (multiple passes), with a
per-process block cache standing in for its share of main memory. The
knobs — passes, cache blocks, access order — expose the locality behaviour
that §4's buffer-caching remark predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = ["OutOfCoreSweep", "run_out_of_core"]


@dataclass(frozen=True)
class OutOfCoreSweep:
    """Shape of an out-of-core computation."""

    passes: int = 2
    cache_blocks: int = 4          # per-process "memory" in blocks
    compute_per_record: float = 0.0
    reverse_alternate_passes: bool = False  # sweep direction flips -> better reuse

    def __post_init__(self) -> None:
        if self.passes < 1:
            raise ValueError("passes must be >= 1")
        if self.cache_blocks < 0:
            raise ValueError("cache_blocks must be >= 0")
        if self.compute_per_record < 0:
            raise ValueError("compute cost must be >= 0")


def run_out_of_core(file: "ParallelFile", sweep: OutOfCoreSweep):
    """Start one paging process per owning process; returns (procs, handles).

    Each process touches every record of every owned block once per pass,
    through its cached PDA handle; cache statistics afterwards show the
    reuse across passes.
    """
    env = file.env
    handles = [
        file.internal_view(p, cache_blocks=sweep.cache_blocks)
        if sweep.cache_blocks > 0
        else file.internal_view(p)
        for p in range(file.map.n_processes)
    ]

    def pager(p: int):
        h = handles[p]
        blocks = file.map.blocks_of(p)
        bs = file.attrs.block_spec
        for pass_no in range(sweep.passes):
            order = blocks
            if sweep.reverse_alternate_passes and pass_no % 2 == 1:
                order = blocks[::-1]
            for b in order:
                first = bs.first_record(int(b))
                count = bs.block_records(int(b), file.n_records)
                data = yield from h.read_record(first, count)
                if sweep.compute_per_record > 0:
                    yield env.timeout(sweep.compute_per_record * count)
                # write the page back (updated in place)
                yield from h.write_record(first, np.asarray(data))
        if hasattr(h, "flush"):
            yield from h.flush()

    procs = [
        env.process(pager(p), name=f"pager{p}")
        for p in range(file.map.n_processes)
    ]
    return procs, handles
