"""Out-of-core matrix transpose — the access-pattern stress test.

A transpose is the canonical view-mismatch workload: the input matrix is
stored row-major (one row per record), the output needs it column-major.
Done naively, every output row gathers one record's worth of data from N
scattered input records. Done block-wise — the standard out-of-core
algorithm — the matrix is processed in square tiles: read a tile
(contiguous row runs), transpose in memory, write it to the mirrored tile
position. The tile buffer is the §4 "buffer space" knob.

Both are implemented over GDA files so the benchmark/test can compare the
naive and tiled I/O costs on identical storage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile, ParallelFileSystem

__all__ = ["create_matrix_file", "transpose_naive", "transpose_tiled"]


def create_matrix_file(
    pfs: "ParallelFileSystem", name: str, n: int, n_processes: int = 1,
) -> "ParallelFile":
    """An ``n x n`` float64 matrix, one row per record, in a GDA file."""
    if n < 1:
        raise ValueError("matrix must be at least 1x1")
    return pfs.create(
        name, "GDA", n_records=n, record_size=n * 8, dtype="float64",
        records_per_block=1, n_processes=n_processes,
    )


def transpose_naive(src: "ParallelFile", dst: "ParallelFile", process: int = 0):
    """Generator: column-at-a-time transpose — one read per element row.

    For each output row j, reads all n input rows to collect column j.
    O(n^2) record reads; the I/O pattern §5's mismatch discussion warns
    about.
    """
    n = src.n_records
    h_src = src.internal_view(process)
    h_dst = dst.internal_view(process)
    for j in range(n):
        col = np.empty((1, n))
        for i in range(n):
            row = yield from h_src.read_record(i)
            col[0, i] = row[0, j]
        yield from h_dst.write_record(j, col)
    return n


def transpose_tiled(
    src: "ParallelFile", dst: "ParallelFile", tile: int, process: int = 0,
):
    """Generator: blocked transpose with a ``tile x n``-element buffer.

    Reads ``tile`` full rows at a time (contiguous records — one
    transfer), transposes in memory, and scatters ``tile``-wide column
    strips into the output rows with read-modify-write at tile
    granularity. Total transfers: O((n / tile)^2) instead of O(n^2).
    """
    if tile < 1:
        raise ValueError("tile must be >= 1")
    n = src.n_records
    h_src = src.internal_view(process)
    h_dst = dst.internal_view(process)
    for i0 in range(0, n, tile):
        rows_n = min(tile, n - i0)
        rows = yield from h_src.read_record(i0, count=rows_n)  # (rows_n, n)
        for j0 in range(0, n, tile):
            cols_n = min(tile, n - j0)
            # the (i0, j0) tile of the input, transposed, lands at
            # (j0, i0) in the output
            block = rows[:, j0 : j0 + cols_n].T          # (cols_n, rows_n)
            out_rows = yield from h_dst.read_record(j0, count=cols_n)
            out_rows = out_rows.copy()
            out_rows[:, i0 : i0 + rows_n] = block
            yield from h_dst.write_record(j0, out_rows)
    return n
