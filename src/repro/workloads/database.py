"""Skewed direct-access (database) workload — the Livny et al. setting (E4).

    "Livny et al. [2] conclude that declustering of files across multiple
    drives (disk striping) provides performance improvements in a database
    context ... by splitting blocks across multiple drives rather than
    allocating whole blocks to individual drives, contention problems
    caused by non-uniform access patterns are reduced."

:func:`run_database_workload` drives a GDA file with a mix of record reads
and writes whose target distribution (uniform or Zipf) and concurrency are
parameters; the interesting comparison is the file's layout: declustered
(striped with a small unit) versus whole-block placement (interleaved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .generators import uniform_pattern, zipf_pattern

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = ["DatabaseWorkload", "run_database_workload"]


@dataclass(frozen=True)
class DatabaseWorkload:
    """Shape of a transaction stream."""

    n_transactions: int
    skew: float = 0.0           # 0 = uniform; ~1 = classic Zipf
    write_fraction: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_transactions < 0:
            raise ValueError("n_transactions must be >= 0")
        if not 0 <= self.write_fraction <= 1:
            raise ValueError("write_fraction in [0, 1]")
        if self.skew < 0:
            raise ValueError("skew must be >= 0")

    def targets(self, n_records: int) -> np.ndarray:
        """The per-transaction record targets (uniform or Zipf)."""
        if self.skew == 0:
            return uniform_pattern(n_records, self.n_transactions, self.seed)
        return zipf_pattern(n_records, self.n_transactions, self.skew, self.seed)

    def is_write(self) -> np.ndarray:
        """Boolean mask: which transactions are writes."""
        rng = np.random.default_rng(self.seed + 1)
        return rng.random(self.n_transactions) < self.write_fraction


def run_database_workload(
    file: "ParallelFile",
    workload: DatabaseWorkload,
    n_clients: int,
    think_time: float = 0.0,
):
    """Start ``n_clients`` processes splitting the transaction stream.

    Returns the list of client processes; the caller runs the environment
    and reads elapsed time / device stats. Transactions are dealt to
    clients round-robin, each client issuing its own serially (an open
    queueing system would need arrival processes; the closed system is
    what Livny et al. model).
    """
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    env = file.env
    targets = workload.targets(file.n_records)
    writes = workload.is_write()
    spec = file.attrs.record_spec
    payload = np.zeros((1, spec.items_per_record), dtype=spec.dtype)

    def client(c: int):
        h = file.internal_view(c % file.map.n_processes)
        for t in range(c, len(targets), n_clients):
            record = int(targets[t])
            if writes[t]:
                yield from h.write_record(record, payload)
            else:
                yield from h.read_record(record)
            if think_time > 0:
                yield env.timeout(think_time)

    return [env.process(client(c), name=f"client{c}") for c in range(n_clients)]
