"""Access-pattern and payload generators.

Every experiment drives the file system with one of a small set of
reference patterns:

* sequential / strided — the §3.1 sequential organizations;
* uniform random — the §3.2 "references may be random" direct case;
* Zipf-skewed — the non-uniform access that makes declustering win in
  Livny et al. [2] (experiment E4);
* working-set — repeated passes over a small hot set, the locality that
  makes §4's buffer caching pay off.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sequential_pattern",
    "strided_pattern",
    "uniform_pattern",
    "zipf_pattern",
    "working_set_pattern",
    "record_payload",
]


def sequential_pattern(n_records: int) -> np.ndarray:
    """0, 1, 2, ... n-1."""
    if n_records < 0:
        raise ValueError("n_records must be >= 0")
    return np.arange(n_records, dtype=np.int64)


def strided_pattern(n_records: int, start: int, stride: int) -> np.ndarray:
    """start, start+stride, ... (< n_records) — the IS access shape."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    if not 0 <= start < max(n_records, 1):
        raise ValueError("start outside file")
    return np.arange(start, n_records, stride, dtype=np.int64)


def uniform_pattern(n_records: int, n_accesses: int, seed: int = 0) -> np.ndarray:
    """Uniformly random record indices (with replacement)."""
    _check(n_records, n_accesses)
    rng = np.random.default_rng(seed)
    return rng.integers(0, n_records, size=n_accesses, dtype=np.int64)


def zipf_pattern(
    n_records: int, n_accesses: int, skew: float = 1.0, seed: int = 0
) -> np.ndarray:
    """Zipf-distributed record indices: rank r drawn ∝ 1/r^skew.

    ``skew = 0`` degenerates to uniform; larger skew concentrates accesses
    on few hot records. Hot ranks are shuffled over the record space so
    popularity is not correlated with position (matching the database
    setting of Livny et al.).
    """
    _check(n_records, n_accesses)
    if skew < 0:
        raise ValueError("skew must be >= 0")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_records + 1, dtype=np.float64)
    weights = ranks**-skew
    weights /= weights.sum()
    # map rank -> record via a fixed shuffle
    placement = rng.permutation(n_records)
    draws = rng.choice(n_records, size=n_accesses, p=weights)
    return placement[draws].astype(np.int64)


def working_set_pattern(
    n_records: int,
    n_accesses: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
    seed: int = 0,
) -> np.ndarray:
    """90/10-style locality: ``hot_probability`` of accesses hit the
    ``hot_fraction`` hottest records."""
    _check(n_records, n_accesses)
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction in (0, 1]")
    if not 0 <= hot_probability <= 1:
        raise ValueError("hot_probability in [0, 1]")
    rng = np.random.default_rng(seed)
    hot_n = max(1, int(round(n_records * hot_fraction)))
    hot = rng.random(n_accesses) < hot_probability
    idx = np.where(
        hot,
        rng.integers(0, hot_n, size=n_accesses),
        rng.integers(0, n_records, size=n_accesses),
    )
    return idx.astype(np.int64)


def record_payload(
    n_records: int, items_per_record: int, dtype: str = "float64", seed: int = 0
) -> np.ndarray:
    """Deterministic synthetic record contents."""
    if n_records < 0 or items_per_record < 1:
        raise ValueError("bad payload shape")
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.floating):
        return rng.random((n_records, items_per_record)).astype(dtype)
    info = np.iinfo(np.dtype(dtype))
    return rng.integers(
        info.min, int(info.max) + 1, size=(n_records, items_per_record), dtype=dtype
    )


def _check(n_records: int, n_accesses: int) -> None:
    if n_records < 1:
        raise ValueError("n_records must be >= 1")
    if n_accesses < 0:
        raise ValueError("n_accesses must be >= 0")
