"""Write-ahead intent journal for one metadata shard.

Every mutating namespace operation follows the same discipline:

1. append an **intent** record carrying *everything replay needs* to
   finish the operation (names, extent id, a reference to the entry
   standing in for its serialized form);
2. perform the durable directory/extent mutations, one at a time;
3. append a **commit** record (or an **abort** record when a
   cross-shard transaction discovers its peer never saw the intent).

A crash between any two of those durable actions leaves the journal's
tail with an intent and no resolution; recovery
(:meth:`repro.metastore.service.MetadataService.recover`) rolls such
transactions forward idempotently — the intent was written before any
mutation, so replay always has enough information to reach the
operation's after-state, and an intent that never became durable simply
leaves the before-state. Either way the namespace is atomic.

The journal is an in-simulation stand-in for an on-media log: records
are Python objects, and ``payload["entry"]`` holds the live
:class:`~repro.fs.catalog.CatalogEntry` reference where a real log would
hold its serialized attribute record (``entry.attrs.to_dict()`` is the
wire form; see ``docs/METADATA.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["JournalRecord", "IntentJournal"]

#: record kinds
INTENT = "intent"
COMMIT = "commit"
ABORT = "abort"


@dataclass
class JournalRecord:
    """One durable journal record."""

    lsn: int            #: shard-local log sequence number
    kind: str           #: ``intent`` | ``commit`` | ``abort``
    txid: int           #: service-wide transaction id
    op: str             #: ``create`` | ``delete`` | ``rename`` | ``rename-in`` | ``rename-out`` | ``extend``
    payload: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ish form (the entry reference is reduced to its name)."""
        payload = {
            k: (v.attrs.name if hasattr(v, "attrs") else v)
            for k, v in self.payload.items()
        }
        return {
            "lsn": self.lsn,
            "kind": self.kind,
            "txid": self.txid,
            "op": self.op,
            "payload": payload,
        }


class IntentJournal:
    """Append-only intent log of one shard."""

    def __init__(self) -> None:
        self.records: list[JournalRecord] = []
        self._next_lsn = 0

    def __len__(self) -> int:
        return len(self.records)

    def append(self, kind: str, txid: int, op: str, **payload: Any) -> JournalRecord:
        """Durably append one record (the caller crash-steps first)."""
        rec = JournalRecord(self._next_lsn, kind, txid, op, payload)
        self._next_lsn += 1
        self.records.append(rec)
        return rec

    # -- recovery-time queries ------------------------------------------------

    def intent_of(self, txid: int) -> JournalRecord | None:
        """The intent record of ``txid`` on this shard, if any."""
        for rec in self.records:
            if rec.txid == txid and rec.kind == INTENT:
                return rec
        return None

    def resolved(self, txid: int) -> bool:
        """True iff ``txid`` has a commit or abort record here."""
        return any(
            r.txid == txid and r.kind in (COMMIT, ABORT) for r in self.records
        )

    def uncommitted(self) -> list[JournalRecord]:
        """Intent records with no commit/abort, oldest first."""
        return [
            r for r in self.records
            if r.kind == INTENT and not self.resolved(r.txid)
        ]

    def committed(self) -> list[JournalRecord]:
        """Intent records whose transaction committed, oldest first."""
        return [
            r for r in self.records
            if r.kind == INTENT and any(
                c.txid == r.txid and c.kind == COMMIT for c in self.records
            )
        ]
