"""Kill-at-every-step crash-point matrix for the metadata service.

The robustness claim of :mod:`repro.metastore` is falsifiable: for every
journaled namespace operation, a crash between *any* two durable steps,
followed by journal replay, must land the namespace in exactly the
operation's atomic before- or after-state — never a torn one. This
module proves it exhaustively:

1. each scenario (create, delete, same-shard rename, cross-shard rename,
   extend, and a compound rename-chain) is first run against a fresh
   service with a *tracing* injector to enumerate its durable steps;
2. the scenario is then re-run once per step with the injector armed —
   the step raises :class:`~repro.metastore.crash.InjectedCrash` before
   its durable action takes effect;
3. :meth:`~repro.metastore.service.MetadataService.recover` replays the
   journals, and the resulting :meth:`snapshot` must equal the
   *before* snapshot or the *after* snapshot, with
   :meth:`check_invariants` clean (no lost name, no double owner, no
   orphan extent).

``python -m repro.metastore.harness [--quick]`` runs the matrix and
exits nonzero on any torn state — CI's crash-matrix smoke job.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Callable

from .crash import CrashInjector, InjectedCrash
from .service import MetadataService, shard_index

__all__ = [
    "Scenario",
    "MatrixResult",
    "default_scenarios",
    "crash_matrix",
    "make_entry",
    "name_on_shard",
    "main",
]

#: shard count used by the default scenarios — small enough that names
#: landing on chosen shards are easy to find, big enough to shard
SHARDS = 4


def make_entry(name: str, n_records: int = 64, record_size: int = 32):
    """A real :class:`~repro.fs.catalog.CatalogEntry` with no live media
    behind it (extent/layout ``None``): the pure-namespace test double."""
    from ..core.organizations import FileCategory, FileOrganization
    from ..fs.catalog import CatalogEntry
    from ..fs.metadata import FileAttributes

    attrs = FileAttributes(
        name=name,
        organization=FileOrganization.S,
        category=FileCategory.STANDARD,
        record_size=record_size,
        records_per_block=1,
        n_records=n_records,
        n_processes=1,
        layout="striped",
    )
    return CatalogEntry(attrs=attrs, extent=None, layout=None)


def name_on_shard(target: int, n_shards: int, prefix: str = "f") -> str:
    """A deterministic name that hash-routes to shard ``target``."""
    if not 0 <= target < n_shards:
        raise ValueError(f"no shard {target} with {n_shards} shard(s)")
    i = 0
    while True:
        name = f"{prefix}{i}"
        if shard_index(name, n_shards) == target:
            return name
        i += 1


@dataclass
class Scenario:
    """A seeded namespace plus a sequence of operations under crash test.

    Most scenarios are a single operation; multi-op sequences verify
    that a crash in operation *j* never disturbs the already-committed
    operations before it (the valid post-recovery states are exactly the
    boundary before or after op *j*).
    """

    name: str
    setup: Callable[[MetadataService], None]
    ops: list[Callable[[MetadataService], None]]


def default_scenarios(n_shards: int = SHARDS) -> list[Scenario]:
    """The exhaustive set: every journaled op, same- and cross-shard."""
    # with one shard there is no "shard 1": the cross-shard scenarios
    # degenerate to same-shard ones, which is still a valid matrix
    other = 1 % n_shards
    a = name_on_shard(0, n_shards, "alpha")          # lives on shard 0
    b = name_on_shard(0, n_shards, "beta")           # shard 0 sibling
    c = name_on_shard(other, n_shards, "gamma")      # lives on shard `other`
    same = name_on_shard(0, n_shards, "same")        # rename target, shard 0
    cross = name_on_shard(other, n_shards, "cross")  # rename target, shard `other`

    def seed(svc: MetadataService) -> None:
        svc.create(a, make_entry(a))
        svc.create(c, make_entry(c))

    return [
        Scenario("create", seed, [lambda s: s.create(b, make_entry(b))]),
        Scenario("delete", seed, [lambda s: s.delete(a)]),
        Scenario("rename-same-shard", seed, [lambda s: s.rename(a, same)]),
        Scenario("rename-cross-shard", seed, [lambda s: s.rename(a, cross)]),
        Scenario("extend", seed, [lambda s: s.extend(a, 128)]),
        Scenario(
            # a committed op *behind* the crashed one must stay committed
            "rename-after-create",
            seed,
            [
                lambda s: s.create(b, make_entry(b)),
                lambda s: s.rename(b, cross),
            ],
        ),
    ]


def quick_scenarios(n_shards: int = SHARDS) -> list[Scenario]:
    """Reduced operation set for the CI smoke job."""
    keep = {"create", "rename-cross-shard", "delete"}
    return [s for s in default_scenarios(n_shards) if s.name in keep]


@dataclass
class StepResult:
    step: int
    tag: str
    outcome: str            #: ``before`` | ``after`` | ``TORN``
    findings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.outcome in ("before", "after") and not self.findings


@dataclass
class MatrixResult:
    scenario: str
    steps: list[StepResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.steps)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready summary: outcome tally plus one row per crash step."""
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "n_steps": len(self.steps),
            "outcomes": {
                "before": sum(1 for s in self.steps if s.outcome == "before"),
                "after": sum(1 for s in self.steps if s.outcome == "after"),
                "torn": sum(1 for s in self.steps if s.outcome == "TORN"),
            },
            "steps": [
                {
                    "step": s.step,
                    "tag": s.tag,
                    "outcome": s.outcome,
                    "findings": s.findings,
                }
                for s in self.steps
            ],
        }


def _fresh(
    scenario: Scenario, n_shards: int
) -> tuple[MetadataService, CrashInjector]:
    injector = CrashInjector()
    svc = MetadataService(n_shards=n_shards, injector=injector)
    scenario.setup(svc)
    injector.reset()
    return svc, injector


def run_scenario(
    scenario: Scenario,
    n_shards: int = SHARDS,
    check: Callable[[MetadataService], list[str]] | None = None,
) -> MatrixResult:
    """Kill ``scenario.op`` at every durable step; verify atomicity.

    ``check`` is an optional extra verifier run after every recovery
    (e.g. the fsck cross-check when the service fronts a real pfs); it
    returns finding strings that fail the step.
    """
    # pass 0: enumerate durable steps and capture the boundary state
    # before/after each operation in the sequence
    svc, injector = _fresh(scenario, n_shards)
    boundaries = [svc.snapshot()]
    op_ends: list[int] = []          # cumulative step count after each op
    for op in scenario.ops:
        op(svc)
        boundaries.append(svc.snapshot())
        op_ends.append(len(injector.trace))
    steps = list(injector.trace)
    if not steps:
        raise ValueError(f"scenario {scenario.name} performed no durable step")
    if boundaries[0] == boundaries[-1]:
        raise ValueError(f"scenario {scenario.name} is a namespace no-op")

    def op_of(step: int) -> int:
        """Which operation (0-based) durable step ``step`` belongs to."""
        for j, end in enumerate(op_ends):
            if step <= end:
                return j
        raise AssertionError(f"step {step} beyond the trace")

    result = MatrixResult(scenario.name)
    for k, tag in enumerate(steps, start=1):
        svc, injector = _fresh(scenario, n_shards)
        assert svc.snapshot() == boundaries[0], "setup must be deterministic"
        injector.arm(k)
        try:
            for op in scenario.ops:
                op(svc)
        except InjectedCrash:
            pass
        else:
            raise AssertionError(
                f"{scenario.name}: step {k} ({tag}) did not crash"
            )
        svc.recover()
        snap = svc.snapshot()
        findings = [f"{f.kind}: {f.file} — {f.detail}"
                    for f in svc.check_invariants()]
        if check is not None:
            findings.extend(check(svc))
        # the only legal landing spots: the boundary just before or just
        # after the operation the crash struck — committed earlier ops
        # stay committed, the torn op is atomically in or out
        j = op_of(k)
        outcome = (
            "before" if snap == boundaries[j]
            else "after" if snap == boundaries[j + 1]
            else "TORN"
        )
        # recovery must also be idempotent: a second replay (a crash
        # *during* recovery, rerun) may not move the namespace again
        svc.recover()
        if svc.snapshot() != snap:
            findings.append("recovery is not idempotent")
        result.steps.append(StepResult(k, tag, outcome, findings))
    return result


def crash_matrix(
    scenarios: list[Scenario] | None = None,
    n_shards: int = SHARDS,
    check: Callable[[MetadataService], list[str]] | None = None,
) -> tuple[list[MatrixResult], bool]:
    """Run every scenario's full matrix; returns (results, all_ok)."""
    scenarios = scenarios if scenarios is not None else default_scenarios(n_shards)
    results = [run_scenario(s, n_shards, check) for s in scenarios]
    return results, all(r.ok for r in results)


def render(results: list[MatrixResult]) -> str:
    """Format matrix results as the per-scenario verdict table."""
    lines = [
        "crash-point matrix — kill at every durable step, replay, diff",
        f"{'scenario':<24s} {'steps':>5s} {'before':>7s} {'after':>6s} "
        f"{'torn':>5s}  verdict",
    ]
    for r in results:
        d = r.to_dict()["outcomes"]
        lines.append(
            f"{r.scenario:<24s} {len(r.steps):>5d} {d['before']:>7d} "
            f"{d['after']:>6d} {d['torn']:>5d}  "
            f"{'OK' if r.ok else 'TORN STATE'}"
        )
        for s in r.steps:
            if not s.ok:
                lines.append(f"    step {s.step} ({s.tag}): {s.outcome} "
                             f"{'; '.join(s.findings)}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI: run the matrix, print the table, exit 0 iff fully atomic."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced operation set (CI smoke)")
    parser.add_argument("--shards", type=int, default=SHARDS)
    args = parser.parse_args(argv)
    scenarios = (
        quick_scenarios(args.shards) if args.quick
        else default_scenarios(args.shards)
    )
    results, ok = crash_matrix(scenarios, args.shards)
    print(render(results))
    total = sum(len(r.steps) for r in results)
    print(f"{total} crash points injected across {len(results)} scenario(s): "
          f"{'all atomic' if ok else 'TORN STATES FOUND'}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
