"""One metadata shard: a journaled slice of the namespace.

A shard owns three durable structures — the directory dict mapping file
names to :class:`~repro.fs.catalog.CatalogEntry` objects, the extent
registry mapping extent ids to :class:`ExtentRecord` allocation facts,
and the shard's :class:`~repro.metastore.journal.IntentJournal` — plus a
volatile epoch that client leases validate against.

Every mutation of the durable structures goes through the shard's
:class:`~repro.metastore.crash.CrashInjector` (``_step``), so the
systematic harness can kill the shard between any two durable actions.
The operations themselves live in
:class:`~repro.metastore.service.MetadataService`, because renames can
span two shards; the shard exposes only the individual journaled steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .crash import CrashInjector
from .journal import IntentJournal, JournalRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.catalog import CatalogEntry

__all__ = ["ExtentRecord", "MetaShard"]


@dataclass
class ExtentRecord:
    """The registry's view of one file's media allocation.

    ``extent`` holds the live :class:`~repro.storage.volume.Extent` when
    the shard fronts a real file system (the fsck cross-check compares it
    against ``nbytes``); pure-namespace metastores leave it ``None`` and
    the record is just an ownership token.
    """

    extent_id: int
    owner: str          #: file name currently owning this allocation
    nbytes: int
    extent: Any = None


class MetaShard:
    """Durable state and journaled step primitives of one shard."""

    def __init__(self, index: int, injector: CrashInjector | None = None):
        self.index = index
        self.injector = injector if injector is not None else CrashInjector()
        #: durable directory slice: name -> CatalogEntry
        self.entries: dict[str, "CatalogEntry"] = {}
        #: durable extent registry: extent_id -> ExtentRecord
        self.extents: dict[int, ExtentRecord] = {}
        #: durable write-ahead log
        self.journal = IntentJournal()
        #: lease epoch — bumped on every mutation, recovery, and failover,
        #: so cached lookups (repro.metastore.lease) revalidate
        self.epoch = 0
        #: which node serves this shard (resilience failover re-homes it)
        self.home_node: int | None = None
        #: times this shard was re-homed by a failover
        self.failovers = 0

    def __contains__(self, name: str) -> bool:
        return name in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def _step(self, tag: str) -> None:
        self.injector.step(f"shard{self.index}:{tag}")

    def bump_epoch(self) -> int:
        """Invalidate every lease minted against this shard."""
        self.epoch += 1
        return self.epoch

    # -- journaled durable actions (each is exactly one crash step) -----------

    def log(self, kind: str, txid: int, op: str, **payload: Any) -> JournalRecord:
        """Durably append one journal record."""
        self._step(f"journal-{kind}-{op}")
        return self.journal.append(kind, txid, op, **payload)

    def put_entry(self, name: str, entry: "CatalogEntry") -> None:
        """Durably insert ``name`` into the directory slice."""
        self._step(f"dir-put:{name}")
        self.entries[name] = entry
        self.bump_epoch()

    def drop_entry(self, name: str) -> None:
        """Durably remove ``name`` from the directory slice."""
        self._step(f"dir-drop:{name}")
        del self.entries[name]
        self.bump_epoch()

    def put_extent(self, rec: ExtentRecord) -> None:
        """Durably register an allocation in the extent registry."""
        self._step(f"ext-put:{rec.extent_id}")
        self.extents[rec.extent_id] = rec

    def drop_extent(self, extent_id: int) -> None:
        """Durably free an allocation from the extent registry."""
        self._step(f"ext-drop:{extent_id}")
        del self.extents[extent_id]

    def set_extent_owner(self, extent_id: int, owner: str) -> None:
        """Durably re-point an allocation at its new owning name."""
        self._step(f"ext-owner:{extent_id}")
        self.extents[extent_id].owner = owner

    def grow_extent(self, extent_id: int, nbytes: int) -> None:
        """Durably record an allocation's new size."""
        self._step(f"ext-grow:{extent_id}")
        self.extents[extent_id].nbytes = nbytes

    def set_entry_records(self, name: str, n_records: int) -> None:
        """Durably rewrite a directory record's record count."""
        self._step(f"dir-size:{name}")
        self.entries[name].attrs.n_records = n_records
        self.bump_epoch()

    # -- replay-time idempotent variants (no crash steps: recovery itself is
    #    re-runnable, so its actions are plain idempotent writes) -------------

    def ensure_entry(self, name: str, entry: "CatalogEntry") -> None:
        """Make ``name`` map to ``entry``, bumping the epoch only on change."""
        if self.entries.get(name) is not entry:
            self.entries[name] = entry
            self.bump_epoch()

    def ensure_no_entry(self, name: str) -> None:
        """Make ``name`` absent, bumping the epoch only on change."""
        if name in self.entries:
            del self.entries[name]
            self.bump_epoch()

    def ensure_extent(self, rec: ExtentRecord) -> None:
        """Register ``rec``, overwriting any stale record for its id."""
        self.extents[rec.extent_id] = rec

    def ensure_no_extent(self, extent_id: int) -> None:
        """Drop the extent record if present; silent if already gone."""
        self.extents.pop(extent_id, None)

    def ensure_entry_records(self, name: str, n_records: int) -> None:
        """Set the entry's record count, bumping the epoch only on change."""
        entry = self.entries.get(name)
        if entry is not None and entry.attrs.n_records != n_records:
            entry.attrs.n_records = n_records
            self.bump_epoch()

    def ensure_resolved(self, txid: int, op: str, kind: str = "commit") -> None:
        """Append the commit/abort record unless one already landed."""
        if not self.journal.resolved(txid):
            self.journal.append(kind, txid, op)
