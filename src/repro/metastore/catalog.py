"""Catalog-compatible facade over the sharded metadata service.

:class:`ShardedCatalog` presents the exact interface of
:class:`repro.fs.catalog.Catalog` (``add`` / ``get`` / ``remove`` /
``rename`` / ``__contains__`` / ``names`` / ``to_dict`` plus the
``creates`` / ``deletes`` manageability counters), so
:meth:`repro.fs.pfs.ParallelFileSystem.attach_metastore` can swap it in
without touching any caller — every ``pfs.create``/``open``/``delete``
then routes through the journaled, crash-consistent
:class:`~repro.metastore.service.MetadataService`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from .service import MetadataService

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.catalog import CatalogEntry

__all__ = ["ShardedCatalog"]


class ShardedCatalog:
    """Drop-in :class:`~repro.fs.catalog.Catalog` backed by shards."""

    def __init__(self, service: MetadataService, creates: int = 0,
                 deletes: int = 0):
        self.service = service
        #: lifetime counters (manageability metrics for E12), carried
        #: over from the plain catalog this facade replaced
        self.creates = creates
        self.deletes = deletes

    def __len__(self) -> int:
        return len(self.service)

    def __contains__(self, name: str) -> bool:
        return name in self.service

    def names(self) -> list[str]:
        """All file names, sorted."""
        return self.service.names()

    def entries(self) -> Iterator[tuple[str, "CatalogEntry"]]:
        """Iterate ``(name, entry)`` pairs (see :meth:`Catalog.entries`)."""
        return self.service.entries()

    def add(self, entry: "CatalogEntry") -> None:
        """Register a new file (rejects duplicates), journaled."""
        self.service.create(entry.attrs.name, entry)
        self.creates += 1

    def get(self, name: str) -> "CatalogEntry":
        """Look up a file's entry."""
        return self.service.lookup(name)

    def remove(self, name: str) -> "CatalogEntry":
        """Delete a file's entry, returning it, journaled."""
        entry = self.service.delete(name)
        self.deletes += 1
        return entry

    def rename(self, old: str, new: str) -> None:
        """Rename a file (neither a create nor a delete in the counters)."""
        self.service.rename(old, new)

    def to_dict(self) -> dict[str, Any]:
        """Metadata-only snapshot (extents/layouts are runtime objects)."""
        return {name: e.attrs.to_dict() for name, e in self.service.entries()}
