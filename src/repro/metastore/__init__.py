"""repro.metastore — sharded, crash-consistent metadata/directory service.

The namespace half of the ViPIOS-style server-driven design (PAPERS.md):
file names are hash-partitioned across :class:`MetaShard` slices, every
mutating operation (create / rename / delete / extend) is fronted by a
write-ahead intent journal with idempotent replay, clients cache
lookups under epoch-validated leases, and shard failover rides the
existing resilience layer. The robustness claim is proved by the
kill-at-every-step crash matrix (:mod:`repro.metastore.harness`, also a
CLI: ``python -m repro.metastore.harness``).

Layering:

* :mod:`~repro.metastore.service` — durable namespace logic (synchronous);
* :mod:`~repro.metastore.server` — simulated-time serving front (per-shard
  FIFO inboxes, circuit breakers, crash salvage + resubmission);
* :mod:`~repro.metastore.catalog` — drop-in
  :class:`~repro.fs.catalog.Catalog` facade, installed by
  ``ParallelFileSystem.attach_metastore(shards=...)``;
* :mod:`~repro.metastore.lease` — client-side metadata caching;
* :mod:`~repro.metastore.harness` — systematic crash-point injection.

See ``docs/METADATA.md`` for the journal record format, the step
sequences of each operation, the lease protocol, and the crash-matrix
semantics.
"""

from .catalog import ShardedCatalog
from .crash import CrashInjector, InjectedCrash
from .journal import IntentJournal, JournalRecord
from .lease import Lease, MetadataClient
from .server import MetaRequest, MetaServer
from .service import MetadataService, shard_index
from .shard import ExtentRecord, MetaShard

__all__ = [
    "CrashInjector",
    "ExtentRecord",
    "InjectedCrash",
    "IntentJournal",
    "JournalRecord",
    "Lease",
    "MetaRequest",
    "MetaServer",
    "MetaShard",
    "MetadataClient",
    "MetadataService",
    "ShardedCatalog",
    "shard_index",
]
