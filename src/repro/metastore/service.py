"""The sharded, crash-consistent metadata service.

:class:`MetadataService` partitions the file namespace across
:class:`~repro.metastore.shard.MetaShard` slices by a deterministic name
hash (crc32 — stable across runs and machines), and implements every
namespace operation as a fixed sequence of journaled durable steps:

* **create** — intent → register extent → insert directory record → commit
* **delete** — intent → drop directory record → free extent → commit
* **rename** (same shard) — intent → insert *new* → drop *old* →
  re-point extent owner → commit (insert-before-drop: no observable
  lost-name window, mirroring ``Catalog.rename``)
* **rename** (cross-shard) — intent on the source shard, intent on the
  destination shard, then apply destination-first and resolve both
  journals (a two-shard transaction keyed by one service-wide txid)
* **extend** — intent → grow extent → rewrite record count → commit

A crash between any two durable steps is repaired by :meth:`recover`:
uncommitted transactions are rolled forward idempotently from their
intent records — except a cross-shard rename whose destination intent
never became durable, which is aborted (nothing was applied). Either
way the namespace lands in exactly the operation's atomic before- or
after-state; :mod:`repro.metastore.harness` proves this by killing every
operation at every step.

:meth:`check_invariants` derives the expected namespace from the
committed journal prefix and diffs it against the live directory and
extent registry, emitting sanitizer findings (``namespace-lost-name``,
``namespace-double-owner``, ``namespace-orphan-extent``,
``namespace-ghost-name``) compatible with
:func:`repro.trace.report.conflict_report`.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Any, Iterator

from ..core.errors import FileExistsError_, FileNotFoundError_
from .crash import CrashInjector
from .journal import ABORT, COMMIT, INTENT, JournalRecord
from .shard import ExtentRecord, MetaShard

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.catalog import CatalogEntry
    from ..resilience.failover import FailoverManager
    from ..sanitize.access import Finding

__all__ = ["MetadataService", "shard_index"]


def shard_index(name: str, n_shards: int) -> int:
    """Deterministic shard routing: stable hash of the file name."""
    return zlib.crc32(name.encode("utf-8")) % n_shards


class MetadataService:
    """Hash-partitioned namespace with write-ahead intent journaling."""

    def __init__(
        self,
        n_shards: int = 4,
        injector: CrashInjector | None = None,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        #: one injector shared by every shard, so an operation's durable
        #: steps are numbered globally in execution order
        self.injector = injector if injector is not None else CrashInjector()
        self.shards = [MetaShard(i, self.injector) for i in range(n_shards)]
        self._next_txid = 0
        self._next_extent_id = 0
        #: optional AccessConflictDetector; invariant findings are
        #: appended to it so namespace races surface in the same report
        #: stream as access conflicts
        self.sanitizer = None
        #: lifetime counters
        self.creates = 0
        self.deletes = 0
        self.renames = 0
        self.extends = 0
        self.lookups = 0
        self.recoveries = 0          #: transactions repaired by recover()
        self.shard_failovers = 0     #: shards re-homed by node failures

    # -- routing ----------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, name: str) -> int:
        """The shard index serving ``name`` (deterministic)."""
        return shard_index(name, self.n_shards)

    def shard(self, name: str) -> MetaShard:
        """The :class:`MetaShard` that serves ``name``."""
        return self.shards[self.shard_of(name)]

    def epoch_of(self, shard_idx: int) -> int:
        """The lease epoch of one shard (see :mod:`repro.metastore.lease`)."""
        return self.shards[shard_idx].epoch

    def _txid(self) -> int:
        self._next_txid += 1
        return self._next_txid

    def _extent_id(self) -> int:
        self._next_extent_id += 1
        return self._next_extent_id

    def _extent_of(self, shard: MetaShard, name: str) -> ExtentRecord:
        for rec in shard.extents.values():
            if rec.owner == name:
                return rec
        raise FileNotFoundError_(f"{name} has no registered extent")

    # -- read side --------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __contains__(self, name: str) -> bool:
        return name in self.shard(name)

    def names(self) -> list[str]:
        """Every file name across all shards, sorted."""
        return sorted(n for s in self.shards for n in s.entries)

    def lookup(self, name: str) -> "CatalogEntry":
        """Resolve ``name`` to its catalog entry."""
        self.lookups += 1
        try:
            return self.shard(name).entries[name]
        except KeyError:
            raise FileNotFoundError_(name) from None

    def entries(self) -> Iterator[tuple[str, "CatalogEntry"]]:
        """Iterate ``(name, entry)`` pairs across all shards."""
        for s in self.shards:
            yield from s.entries.items()

    # -- mutating operations (journaled) -----------------------------------------

    def create(
        self,
        name: str,
        entry: "CatalogEntry",
        nbytes: int | None = None,
        extent: Any = None,
    ) -> int:
        """Register a new file; returns the extent id minted for it."""
        shard = self.shard(name)
        if name in shard:
            raise FileExistsError_(name)
        if nbytes is None:
            nbytes = entry.attrs.file_bytes
        if extent is None:
            extent = entry.extent
        txid = self._txid()
        eid = self._extent_id()
        shard.log(
            INTENT, txid, "create",
            name=name, extent_id=eid, nbytes=nbytes, entry=entry, extent=extent,
        )
        shard.put_extent(ExtentRecord(eid, name, nbytes, extent))
        shard.put_entry(name, entry)
        shard.log(COMMIT, txid, "create")
        self.creates += 1
        return eid

    def delete(self, name: str) -> "CatalogEntry":
        """Unregister ``name``; returns the removed entry."""
        shard = self.shard(name)
        if name not in shard:
            raise FileNotFoundError_(name)
        entry = shard.entries[name]
        ext = self._extent_of(shard, name)
        txid = self._txid()
        shard.log(
            INTENT, txid, "delete",
            name=name, extent_id=ext.extent_id, entry=entry,
        )
        shard.drop_entry(name)
        shard.drop_extent(ext.extent_id)
        shard.log(COMMIT, txid, "delete")
        self.deletes += 1
        return entry

    def rename(self, old: str, new: str) -> None:
        """Atomically move ``old`` to ``new`` (possibly across shards)."""
        src = self.shard(old)
        dst = self.shard(new)
        if old not in src:
            raise FileNotFoundError_(old)
        if new in dst:
            raise FileExistsError_(new)
        entry = src.entries[old]
        ext = self._extent_of(src, old)
        txid = self._txid()
        if src is dst:
            src.log(
                INTENT, txid, "rename",
                old=old, new=new, extent_id=ext.extent_id, entry=entry,
            )
            src.put_entry(new, entry)
            entry.attrs.name = new     # rides the directory-record insert
            src.drop_entry(old)
            src.set_extent_owner(ext.extent_id, new)
            src.log(COMMIT, txid, "rename")
        else:
            # two-shard transaction: both intents first, then apply
            # destination-first so the name is never absent everywhere
            src.log(
                INTENT, txid, "rename-out",
                old=old, new=new, extent_id=ext.extent_id,
                nbytes=ext.nbytes, entry=entry, extent=ext.extent,
            )
            dst.log(
                INTENT, txid, "rename-in",
                old=old, new=new, extent_id=ext.extent_id,
                nbytes=ext.nbytes, entry=entry, extent=ext.extent,
            )
            dst.put_entry(new, entry)
            entry.attrs.name = new
            dst.put_extent(
                ExtentRecord(ext.extent_id, new, ext.nbytes, ext.extent)
            )
            src.drop_entry(old)
            src.drop_extent(ext.extent_id)
            dst.log(COMMIT, txid, "rename-in")
            src.log(COMMIT, txid, "rename-out")
        self.renames += 1

    def extend(
        self, name: str, n_records: int, nbytes: int | None = None
    ) -> None:
        """Grow ``name`` to ``n_records`` records (extent grows with it)."""
        shard = self.shard(name)
        if name not in shard:
            raise FileNotFoundError_(name)
        entry = shard.entries[name]
        if n_records < entry.attrs.n_records:
            raise ValueError(
                f"extend cannot shrink {name}: {n_records} < "
                f"{entry.attrs.n_records}"
            )
        ext = self._extent_of(shard, name)
        if nbytes is None:
            nbytes = n_records * entry.attrs.record_size
        txid = self._txid()
        shard.log(
            INTENT, txid, "extend",
            name=name, extent_id=ext.extent_id,
            old_records=entry.attrs.n_records, new_records=n_records,
            old_nbytes=ext.nbytes, new_nbytes=nbytes,
        )
        shard.grow_extent(ext.extent_id, nbytes)
        shard.set_entry_records(name, n_records)
        shard.log(COMMIT, txid, "extend")
        self.extends += 1

    # -- recovery ----------------------------------------------------------------

    def recover(self) -> list[dict[str, Any]]:
        """Replay every unresolved transaction; returns what was repaired.

        Replay is idempotent (safe to run twice, safe to crash *during*
        recovery and run again): each action checks the durable state
        before touching it, and the closing commit/abort records are the
        last thing appended.
        """
        # gather unresolved intents across shards, grouped by txid
        # (a cross-shard rename contributes one intent per side)
        pending: dict[int, dict[str, tuple[MetaShard, JournalRecord]]] = {}
        for shard in self.shards:
            for rec in shard.journal.uncommitted():
                pending.setdefault(rec.txid, {})[rec.op] = (shard, rec)

        repaired: list[dict[str, Any]] = []
        for txid in sorted(pending):
            sides = pending[txid]
            action = self._replay(txid, sides)
            self.recoveries += 1
            repaired.append(
                {"txid": txid, "ops": sorted(sides), "action": action}
            )
        if repaired:
            for shard in self.shards:
                shard.bump_epoch()   # all leases are suspect after a crash
        if self.sanitizer is not None:
            self.sanitizer.findings.extend(self.check_invariants())
        return repaired

    def _replay(
        self, txid: int, sides: dict[str, tuple[MetaShard, JournalRecord]]
    ) -> str:
        """Roll one transaction forward (or abort it); returns the action."""
        if "create" in sides:
            shard, rec = sides["create"]
            p = rec.payload
            shard.ensure_extent(
                ExtentRecord(p["extent_id"], p["name"], p["nbytes"], p["extent"])
            )
            shard.ensure_entry(p["name"], p["entry"])
            shard.ensure_resolved(txid, "create")
            return "rolled-forward"
        if "delete" in sides:
            shard, rec = sides["delete"]
            p = rec.payload
            shard.ensure_no_entry(p["name"])
            shard.ensure_no_extent(p["extent_id"])
            shard.ensure_resolved(txid, "delete")
            return "rolled-forward"
        if "rename" in sides:
            shard, rec = sides["rename"]
            p = rec.payload
            entry = p["entry"]
            shard.ensure_entry(p["new"], entry)
            entry.attrs.name = p["new"]
            shard.ensure_no_entry(p["old"])
            ext = shard.extents.get(p["extent_id"])
            if ext is not None:
                ext.owner = p["new"]
            shard.ensure_resolved(txid, "rename")
            return "rolled-forward"
        if "extend" in sides:
            shard, rec = sides["extend"]
            p = rec.payload
            ext = shard.extents.get(p["extent_id"])
            if ext is not None:
                ext.nbytes = p["new_nbytes"]
            shard.ensure_entry_records(p["name"], p["new_records"])
            shard.ensure_resolved(txid, "extend")
            return "rolled-forward"
        # cross-shard rename: roll forward iff the destination intent
        # became durable; otherwise nothing was applied — abort
        out = sides.get("rename-out")
        inn = sides.get("rename-in")
        if inn is None and out is not None:
            src, rec = out
            dst = self.shard(rec.payload["new"])
            peer = dst.journal.intent_of(txid)
            if peer is not None:
                inn = (dst, peer)
        if inn is None:
            assert out is not None
            src, rec = out
            src.ensure_resolved(txid, "rename-out", kind=ABORT)
            return "aborted"
        dst, rec = inn
        p = rec.payload
        entry = p["entry"]
        dst.ensure_entry(p["new"], entry)
        entry.attrs.name = p["new"]
        dst.ensure_extent(
            ExtentRecord(p["extent_id"], p["new"], p["nbytes"], p["extent"])
        )
        src = self.shards[self.shard_of(p["old"])]
        src.ensure_no_entry(p["old"])
        src.ensure_no_extent(p["extent_id"])
        dst.ensure_resolved(txid, "rename-in")
        src.ensure_resolved(txid, "rename-out")
        return "rolled-forward"

    # -- shard failover (resilience wiring) --------------------------------------

    def assign_homes(self, n_nodes: int) -> None:
        """Home shard *i* on I/O node ``i % n_nodes`` (deterministic)."""
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        for shard in self.shards:
            shard.home_node = shard.index % n_nodes

    def bind_failover(self, manager: "FailoverManager") -> None:
        """Re-home shards when the resilience layer fails their node.

        Registers with the :class:`~repro.resilience.FailoverManager`'s
        node-failure hook: when a node dies (crash or circuit-breaker
        quarantine), every shard homed there is re-homed on a survivor,
        its journal is replayed (completing whatever the dead server had
        in flight), and its lease epoch is bumped so clients revalidate.
        """
        if any(s.home_node is None for s in self.shards):
            self.assign_homes(len(manager.cluster.nodes))
        manager.on_node_failed.append(self._on_node_failed)

    def _on_node_failed(self, index: int, survivors: list[int]) -> None:
        moved = [s for s in self.shards if s.home_node == index]
        if not moved:
            return
        for shard in moved:
            shard.home_node = survivors[shard.index % len(survivors)]
            shard.failovers += 1
            shard.bump_epoch()
            self.shard_failovers += 1
        self.recover()

    # -- verification -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Canonical namespace state for before/after crash comparison."""
        names = {}
        for shard in self.shards:
            for name, entry in shard.entries.items():
                names[name] = {
                    "shard": shard.index,
                    "name_attr": entry.attrs.name,
                    "n_records": entry.attrs.n_records,
                }
        extents = {
            rec.extent_id: {
                "shard": shard.index,
                "owner": rec.owner,
                "nbytes": rec.nbytes,
            }
            for shard in self.shards
            for rec in shard.extents.values()
        }
        return {"names": names, "extents": extents}

    def expected_namespace(self) -> dict[str, int]:
        """``name -> extent_id`` implied by the committed journal prefix.

        Replays the committed intents logically, in txid order, without
        touching any durable state — the reference the invariant checks
        diff the live directory against.
        """
        committed: dict[int, JournalRecord] = {}
        for shard in self.shards:
            for rec in shard.journal.committed():
                # cross-shard renames commit on both sides; one wins
                committed.setdefault(rec.txid, rec)
        expected: dict[str, int] = {}
        for txid in sorted(committed):
            rec = committed[txid]
            p = rec.payload
            if rec.op == "create":
                expected[p["name"]] = p["extent_id"]
            elif rec.op == "delete":
                expected.pop(p["name"], None)
            elif rec.op in ("rename", "rename-in", "rename-out"):
                expected.pop(p["old"], None)
                expected[p["new"]] = p["extent_id"]
        return expected

    def check_invariants(self, time: float = 0.0) -> list["Finding"]:
        """Namespace-race invariant findings (empty means healthy).

        * ``namespace-lost-name`` — a committed name is missing from every
          shard's directory;
        * ``namespace-ghost-name`` — a directory name no committed
          operation accounts for;
        * ``namespace-double-owner`` — one name present on two shards, a
          name routed to the wrong shard, or one extent claimed by two
          names;
        * ``namespace-orphan-extent`` — a registered extent no directory
          record owns, or a directory record with no backing extent.
        """
        from ..sanitize.access import Finding

        findings: list[Finding] = []

        def note(kind: str, file: str, detail: str) -> None:
            findings.append(
                Finding(kind=kind, file=file, detail=detail, time=time,
                        processes=())
            )

        seen: dict[str, int] = {}
        for shard in self.shards:
            for name in shard.entries:
                if name in seen:
                    note(
                        "namespace-double-owner", name,
                        f"present on shards {seen[name]} and {shard.index}",
                    )
                else:
                    seen[name] = shard.index
                if self.shard_of(name) != shard.index:
                    note(
                        "namespace-double-owner", name,
                        f"found on shard {shard.index}, routes to "
                        f"{self.shard_of(name)}",
                    )
        owners: dict[int, str] = {}
        owned_by: dict[str, int] = {}
        for shard in self.shards:
            for rec in shard.extents.values():
                if rec.extent_id in owners:
                    note(
                        "namespace-double-owner", rec.owner,
                        f"extent {rec.extent_id} also claimed by "
                        f"{owners[rec.extent_id]!r}",
                    )
                owners[rec.extent_id] = rec.owner
                if rec.owner in owned_by:
                    note(
                        "namespace-double-owner", rec.owner,
                        f"owns extents {owned_by[rec.owner]} and "
                        f"{rec.extent_id}",
                    )
                owned_by[rec.owner] = rec.extent_id
                if rec.owner not in seen:
                    note(
                        "namespace-orphan-extent", rec.owner,
                        f"extent {rec.extent_id} ({rec.nbytes}B) has no "
                        "directory record",
                    )
        for name in seen:
            if name not in owned_by:
                note(
                    "namespace-orphan-extent", name,
                    "directory record has no backing extent",
                )
        expected = self.expected_namespace()
        for name in expected:
            if name not in seen:
                note(
                    "namespace-lost-name", name,
                    "committed by the journal but absent from every shard",
                )
        for name in seen:
            if name not in expected:
                note(
                    "namespace-ghost-name", name,
                    "present but no committed operation accounts for it",
                )
        return findings

    def to_dict(self) -> dict[str, Any]:
        """Summary form for reports and tests."""
        return {
            "n_shards": self.n_shards,
            "entries": len(self),
            "counters": {
                "creates": self.creates,
                "deletes": self.deletes,
                "renames": self.renames,
                "extends": self.extends,
                "lookups": self.lookups,
                "recoveries": self.recoveries,
                "shard_failovers": self.shard_failovers,
            },
            "shards": [
                {
                    "index": s.index,
                    "entries": len(s.entries),
                    "extents": len(s.extents),
                    "journal": len(s.journal),
                    "epoch": s.epoch,
                    "home_node": s.home_node,
                    "failovers": s.failovers,
                }
                for s in self.shards
            ],
        }
