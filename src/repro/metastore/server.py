"""Simulated-time serving front for the metadata service.

The durable namespace logic (:mod:`repro.metastore.service`) is
synchronous — correctness is proved by the crash-point harness. What a
*server* adds is time and queueing: every shard is a serving loop with a
FIFO inbox, each operation costs ``op_time`` simulated seconds, and
requests to different shards proceed in parallel. A 1-shard
:class:`MetaServer` is exactly the single-catalog FIFO bottleneck the
open/create-storm benchmark (``benchmarks/bench_metadata.py``) compares
against; with *k* shards the storm fans out *k* ways.

Crash handling mirrors the I/O-node failover design
(:mod:`repro.resilience.failover`): an :class:`~repro.metastore.crash.
InjectedCrash` (or any infrastructure error) inside a serving loop kills
that shard's server. The queued inbox and the request in service are
**salvaged**, the journal is replayed (``service.recover()``), a fresh
serving loop is started, and the salvaged requests are resubmitted.
Resubmission is made idempotent by inspecting the recovered namespace
first: an operation the replay already rolled forward is acknowledged
instead of re-executed (a resubmitted ``create`` must not see
``FileExistsError_`` for its own committed first attempt). A
:class:`~repro.resilience.CircuitBreaker` per shard watches
infrastructure failures and quarantines a flapping shard through the
same crash-and-recover path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.errors import FileExistsError_, FileNotFoundError_
from ..resilience.failover import CircuitBreaker
from ..sim.engine import Environment, Event, Process
from ..sim.resources import Store
from .service import MetadataService

__all__ = ["MetaRequest", "MetaServer"]

#: operations a request may carry, mapped to their service methods
_OPS = ("create", "delete", "rename", "extend", "lookup")


@dataclass
class MetaRequest:
    """One queued namespace operation."""

    op: str
    args: tuple
    kwargs: dict[str, Any] = field(default_factory=dict)
    event: Event | None = None
    submitted_at: float = 0.0

    @property
    def name(self) -> str:
        """The name the request routes by (``old`` for renames)."""
        return self.args[0]


class MetaServer:
    """Per-shard serving loops over one :class:`MetadataService`."""

    def __init__(
        self,
        env: Environment,
        service: MetadataService,
        op_time: float = 5e-5,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
    ):
        self.env = env
        self.service = service
        self.op_time = op_time
        self.inboxes = [Store(env) for _ in service.shards]
        self.breakers = [
            CircuitBreaker(env, breaker_threshold, breaker_cooldown)
            for _ in service.shards
        ]
        #: request currently in service at each shard (salvage target)
        self._in_service: list[MetaRequest | None] = [None] * service.n_shards
        self._servers: list[Process] = [
            env.process(self._serve(i), name=f"metashard{i}")
            for i in range(service.n_shards)
        ]
        #: completed operations per shard
        self.served = [0] * service.n_shards
        #: shard-server crashes survived (injected or breaker-tripped)
        self.crashes = 0
        #: requests salvaged out of dead serving loops and resubmitted
        self.salvaged = 0

    # -- client side -------------------------------------------------------------

    def submit(self, op: str, *args: Any, **kwargs: Any) -> Event:
        """Queue one operation; the event settles with its result."""
        if op not in _OPS:
            raise ValueError(f"unknown metadata op {op!r}")
        req = MetaRequest(op, args, kwargs, Event(self.env), self.env.now)
        self.inboxes[self.service.shard_of(req.name)].put(req)
        return req.event

    # -- serving loops -----------------------------------------------------------

    def _dispatch(self, req: MetaRequest) -> Any:
        return getattr(self.service, req.op)(*req.args, **req.kwargs)

    def _serve(self, idx: int):
        inbox = self.inboxes[idx]
        while True:
            req = yield inbox.get()
            if req.op == "__poison__":
                # deliberate server kill (see crash_shard)
                self._crash(idx, None)
                return
            self._in_service[idx] = req
            yield self.env.timeout(self.op_time)
            try:
                result = self._dispatch(req)
            except (FileExistsError_, FileNotFoundError_, ValueError) as exc:
                # an application-level rejection, not a server failure
                req.event.fail(exc)
                self.breakers[idx].record_success()
            except Exception:
                # infrastructure failure (e.g. an injected crash): this
                # serving loop is dead; salvage, recover, restart
                self.breakers[idx].record_failure()
                self._crash(idx, req)
                return
            else:
                req.event.succeed(result)
                self.breakers[idx].record_success()
                self.served[idx] += 1
            finally:
                self._in_service[idx] = None

    def _crash(self, idx: int, dying: MetaRequest | None) -> None:
        """Kill shard ``idx``'s server: salvage, replay, restart, resubmit."""
        self.crashes += 1
        inbox = self.inboxes[idx]
        salvaged: list[MetaRequest] = []
        if dying is not None:
            salvaged.append(dying)
        while inbox.items:
            salvaged.append(inbox.items.popleft())
        self._in_service[idx] = None
        # journal replay completes (or aborts) whatever the dying server
        # had mid-mutation, and bumps epochs so leases revalidate
        self.service.recover()
        self._servers[idx] = self.env.process(
            self._serve(idx), name=f"metashard{idx}.reborn"
        )
        for req in salvaged:
            self.salvaged += 1
            done, value = self._already_applied(req)
            if done:
                # replay rolled the operation forward: acknowledge it
                # instead of re-executing (resubmission idempotence)
                req.event.succeed(value)
                self.served[idx] += 1
            else:
                inbox.put(req)

    def _already_applied(self, req: MetaRequest) -> tuple[bool, Any]:
        """Did recovery already complete this request's effect?"""
        svc = self.service
        if req.op == "create":
            name = req.args[0]
            if name in svc:
                try:
                    ext = svc._extent_of(svc.shard(name), name)
                except FileNotFoundError_:
                    return False, None
                return True, ext.extent_id
        elif req.op == "delete":
            if req.args[0] not in svc:
                return True, None
        elif req.op == "rename":
            old, new = req.args[0], req.args[1]
            if old not in svc and new in svc:
                return True, None
        elif req.op == "extend":
            name, n_records = req.args[0], req.args[1]
            if name in svc and svc.lookup(name).attrs.n_records >= n_records:
                return True, None
        return False, None

    # -- fault injection / breaker plumbing ---------------------------------------

    def crash_shard(self, idx: int) -> None:
        """Deliberately kill shard ``idx``'s serving loop (tests/benches).

        The kill is delivered as a poison request jumped to the *front*
        of the inbox, so it lands the moment the server is between
        requests: every queued request behind it is salvaged and
        resubmitted, while an operation already mid-mutation dies at its
        own (injected) crash point instead. Interrupting the blocked
        serving process directly would strand its pending inbox get,
        which could later swallow a live request — the poison pill keeps
        the store bookkeeping consistent.
        """
        poison = MetaRequest("__poison__", ("",), {}, Event(self.env),
                             self.env.now)
        box = self.inboxes[idx]
        box.items.appendleft(poison)
        box._dispatch()   # pair it with the server's pending get, if any

    def note_op_failure(self, idx: int) -> None:
        """Feed the shard's breaker; quarantine (crash) it on the trip."""
        if self.breakers[idx].record_failure():
            self.crash_shard(idx)

    @property
    def total_served(self) -> int:
        return sum(self.served)

    def queue_lengths(self) -> list[int]:
        """Pending (unserved) requests in each shard's inbox."""
        return [len(box) for box in self.inboxes]
