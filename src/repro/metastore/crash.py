"""Crash-point injection for the metadata service.

The metastore's durability story is only as good as its worst crash
point, so every durable action a namespace operation performs — each
journal append, each directory-dict mutation, each extent-registry
update — funnels through one :class:`CrashInjector`. The injector
numbers the durable actions of an operation in execution order; arming
it at step *k* makes the *k*-th action raise :class:`InjectedCrash`
**before** the action takes effect, modelling a crash that struck after
``k - 1`` durable actions reached media and nothing else.

The systematic harness (:mod:`repro.metastore.harness`) first runs each
operation with a tracing (unarmed) injector to enumerate its steps, then
re-runs it once per step with the injector armed — "kill at every step"
— and checks that journal replay lands the namespace in exactly the
atomic before- or after-state.
"""

from __future__ import annotations

__all__ = ["InjectedCrash", "CrashInjector"]


class InjectedCrash(Exception):
    """An injected crash: the in-flight operation dies mid-mutation.

    Carries the 1-based step index and the step's tag so harness reports
    can say *where* the operation was killed.
    """

    def __init__(self, step: int, tag: str):
        super().__init__(f"injected crash at durable step {step} ({tag})")
        self.step = step
        self.tag = tag


class CrashInjector:
    """Counts durable actions; optionally kills the n-th one.

    ``arm(k)`` schedules a crash at durable step ``k`` (1-based);
    ``step(tag)`` is called by the shard immediately *before* each
    durable action. Unarmed, the injector just records the tag trace,
    which is how the harness enumerates an operation's crash points.
    """

    def __init__(self) -> None:
        self.counter = 0
        self.crash_at: int | None = None
        #: tags of every durable step seen since the last ``reset``
        self.trace: list[str] = []

    def arm(self, crash_at: int | None) -> None:
        """Crash at durable step ``crash_at`` (1-based); ``None`` disarms."""
        if crash_at is not None and crash_at < 1:
            raise ValueError("crash_at is 1-based")
        self.crash_at = crash_at

    def reset(self) -> None:
        """Zero the step counter and trace (call between operations)."""
        self.counter = 0
        self.trace.clear()

    def step(self, tag: str) -> None:
        """One durable action is about to happen; maybe die instead."""
        self.counter += 1
        self.trace.append(tag)
        if self.crash_at is not None and self.counter == self.crash_at:
            self.crash_at = None  # one crash per arming
            raise InjectedCrash(self.counter, tag)
