"""Client-side metadata leases with epoch-based invalidation.

A client that opens files by name would hammer the metadata service on
every access; :class:`MetadataClient` caches resolved
:class:`~repro.fs.catalog.CatalogEntry` lookups under a **lease**: the
entry plus the owning shard's epoch at fetch time. Every shard mutation
(and every recovery or failover) bumps the shard's epoch, so a cached
entry is served only while its epoch still matches — a rename, delete,
or shard failover silently invalidates every lease minted against that
shard, and the next lookup revalidates against the service.

This is deliberately coarse (per-shard, not per-name): an epoch compare
is one integer read, and false invalidations only cost a refetch — never
a stale answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.catalog import CatalogEntry
    from .service import MetadataService

__all__ = ["Lease", "MetadataClient"]


@dataclass
class Lease:
    """One cached name resolution."""

    entry: "CatalogEntry"
    shard: int
    epoch: int


class MetadataClient:
    """A caching metadata client of one :class:`MetadataService`."""

    def __init__(self, service: "MetadataService", name: str = "client"):
        self.service = service
        self.name = name
        self._cache: dict[str, Lease] = {}
        #: lease served without a service round trip
        self.hits = 0
        #: lease minted or re-minted from the service
        self.misses = 0
        #: cached entries discarded because their shard epoch moved on
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, name: str) -> "CatalogEntry":
        """Resolve ``name``, from cache when the lease is still valid."""
        lease = self._cache.get(name)
        if lease is not None:
            if lease.epoch == self.service.epoch_of(lease.shard):
                self.hits += 1
                return lease.entry
            del self._cache[name]
            self.invalidations += 1
        entry = self.service.lookup(name)   # raises FileNotFoundError_
        shard = self.service.shard_of(name)
        self._cache[name] = Lease(entry, shard, self.service.epoch_of(shard))
        self.misses += 1
        return entry

    def invalidate(self, name: str | None = None) -> None:
        """Drop one cached lease, or all of them."""
        if name is None:
            self._cache.clear()
        else:
            self._cache.pop(name, None)
