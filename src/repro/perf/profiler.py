"""Wall-clock profiling for simulation runs.

The rest of the repo measures *simulated* time; this module measures the
simulator itself — how many engine events per wall-clock second a
configuration sustains, and where the wall time goes. It is the
observability half of the fast-path work: `docs/PERF.md` explains the
fast/legacy loop split these numbers compare.

Two tools:

* :func:`measure_run` — run an :class:`~repro.sim.engine.Environment` to
  completion and return a :class:`PerfSample` (wall seconds, simulated
  seconds, events processed, events/sec).
* :class:`Profiler` — named cumulative wall-clock spans
  (``with prof.span("setup"): ...``) for attributing time to subsystems
  or phases around/inside a run.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..sim.engine import Environment, Event

__all__ = ["PerfSample", "Profiler", "measure_run"]


@dataclass(frozen=True)
class PerfSample:
    """One measured run: wall time, simulated time, and event throughput."""

    label: str
    wall_s: float
    sim_s: float
    events: int

    @property
    def events_per_sec(self) -> float:
        """Engine events processed per wall-clock second."""
        return self.events / self.wall_s if self.wall_s > 0 else float("inf")

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.label:<28s} wall={self.wall_s:8.3f} s  "
            f"sim={self.sim_s:10.4f} s  events={self.events:>9d}  "
            f"{self.events_per_sec:>12,.0f} ev/s"
        )


def measure_run(
    env: Environment,
    until: float | Event | None = None,
    label: str = "run",
) -> PerfSample:
    """Run ``env`` (to ``until``) and measure it.

    Events and simulated seconds are counted from where the environment
    currently stands, so a pre-populated env measures only the run itself.
    """
    steps0 = env.steps
    now0 = env.now
    t0 = time.perf_counter()
    env.run(until)
    wall = time.perf_counter() - t0
    return PerfSample(
        label=label,
        wall_s=wall,
        sim_s=env.now - now0,
        events=env.steps - steps0,
    )


@dataclass
class Profiler:
    """Cumulative named wall-clock spans (per-subsystem attribution)."""

    spans: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the enclosed block under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.spans[name] = self.spans.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def wall(self, name: str) -> float:
        """Total wall seconds accumulated under ``name``."""
        return self.spans.get(name, 0.0)

    @property
    def total(self) -> float:
        """Wall seconds across all spans."""
        return sum(self.spans.values())

    def rows(self) -> list[str]:
        """Formatted per-span report lines, largest first."""
        total = self.total or 1.0
        out = []
        for name, wall in sorted(self.spans.items(), key=lambda kv: -kv[1]):
            out.append(
                f"{name:<28s} {wall:8.3f} s  {100 * wall / total:5.1f}%  "
                f"({self.counts[name]} span{'s' if self.counts[name] != 1 else ''})"
            )
        return out

    def as_dict(self) -> dict[str, Any]:
        """JSON-friendly ``{span: {wall_s, count}}``."""
        return {
            name: {"wall_s": wall, "count": self.counts[name]}
            for name, wall in self.spans.items()
        }
