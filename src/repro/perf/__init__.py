"""Wall-clock performance observability: profiling, reporting, workloads.

The rest of the repo measures *simulated* seconds; this package measures
the simulator — events per wall-clock second under the fast and legacy
engine loops, per-subsystem wall-time attribution, and the shared
deterministic workloads that the engine-throughput benchmark and the
determinism regression tests both drive. See ``docs/PERF.md``.
"""

from .profiler import PerfSample, Profiler, measure_run
from .report import (
    bench_record,
    load_bench_json,
    mode_summary,
    regression_warnings,
    speedup_rows,
    write_bench_json,
)
from .workloads import (
    ORGS,
    WorkloadConfig,
    digest,
    fs_digest,
    make_file,
    run_org,
    seed_file,
    spawn_workload,
)

__all__ = [
    "PerfSample",
    "Profiler",
    "measure_run",
    "bench_record",
    "load_bench_json",
    "mode_summary",
    "regression_warnings",
    "speedup_rows",
    "write_bench_json",
    "ORGS",
    "WorkloadConfig",
    "digest",
    "fs_digest",
    "make_file",
    "run_org",
    "seed_file",
    "spawn_workload",
]
