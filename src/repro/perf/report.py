"""Perf reporting: tables, the BENCH_engine.json schema, regression checks.

``BENCH_engine.json`` schema (one object per file)::

    {
      "bench": "engine_throughput",
      "quick": false,
      "config": {...workload/stack knobs...},
      "modes": {
        "<mode>": {
          "wall_s": float,       # total wall seconds across orgs
          "sim_s": float,        # total simulated seconds
          "events": int,         # engine events processed
          "events_per_sec": float,
          "per_org": {"S": {...same fields...}, ...}
        }, ...
      },
      "baseline_mode": "normal",
      "speedup": {"<mode>": float, ...}   # baseline wall_s / mode wall_s
    }

The committed baseline lives at ``benchmarks/results/BENCH_engine.json``;
CI regenerates the file in quick mode and *warns* (non-blocking) when
events/sec drops by more than the regression factor against it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .profiler import PerfSample

__all__ = [
    "mode_summary",
    "bench_record",
    "write_bench_json",
    "load_bench_json",
    "regression_warnings",
    "speedup_rows",
]


def mode_summary(samples: list[PerfSample]) -> dict[str, Any]:
    """Aggregate one mode's per-org samples into the JSON mode block."""
    wall = sum(s.wall_s for s in samples)
    events = sum(s.events for s in samples)
    return {
        "wall_s": wall,
        "sim_s": sum(s.sim_s for s in samples),
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "per_org": {
            s.label: {
                "wall_s": s.wall_s,
                "sim_s": s.sim_s,
                "events": s.events,
                "events_per_sec": s.events_per_sec,
            }
            for s in samples
        },
    }


def bench_record(
    config: dict[str, Any],
    modes: dict[str, list[PerfSample]],
    baseline_mode: str,
    quick: bool,
) -> dict[str, Any]:
    """Build the full ``BENCH_engine.json`` object."""
    mode_blocks = {name: mode_summary(samples) for name, samples in modes.items()}
    base_wall = mode_blocks[baseline_mode]["wall_s"]
    return {
        "bench": "engine_throughput",
        "quick": quick,
        "config": config,
        "modes": mode_blocks,
        "baseline_mode": baseline_mode,
        "speedup": {
            name: (base_wall / blk["wall_s"] if blk["wall_s"] > 0 else 0.0)
            for name, blk in mode_blocks.items()
        },
    }


def write_bench_json(path: str | Path, record: dict[str, Any]) -> None:
    """Write the record to ``path`` (pretty, trailing newline)."""
    Path(path).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def load_bench_json(path: str | Path) -> dict[str, Any] | None:
    """Load a bench record, or ``None`` if the file does not exist."""
    p = Path(path)
    if not p.exists():
        return None
    return json.loads(p.read_text())


def regression_warnings(
    current: dict[str, Any],
    baseline: dict[str, Any],
    factor: float = 2.0,
) -> list[str]:
    """Non-blocking warnings: modes whose events/sec regressed > ``factor``.

    Wall-clock comparisons across different machines are noise; a >2x
    events/sec drop on the *same* workload is still worth a look, which
    is why CI prints these as warnings instead of failing.
    """
    out = []
    for name, blk in current.get("modes", {}).items():
        base = baseline.get("modes", {}).get(name)
        if not base:
            continue
        cur_eps = blk.get("events_per_sec", 0.0)
        base_eps = base.get("events_per_sec", 0.0)
        if base_eps > 0 and cur_eps > 0 and base_eps / cur_eps > factor:
            out.append(
                f"WARNING: mode {name!r} events/sec regressed "
                f"{base_eps / cur_eps:.2f}x vs baseline "
                f"({cur_eps:,.0f} now vs {base_eps:,.0f} baseline)"
            )
    return out


def speedup_rows(record: dict[str, Any]) -> list[str]:
    """Formatted per-mode summary lines from a bench record."""
    base = record["baseline_mode"]
    rows = []
    for name, blk in record["modes"].items():
        marker = " (baseline)" if name == base else ""
        rows.append(
            f"{name:<24s} wall={blk['wall_s']:8.3f} s  "
            f"{blk['events_per_sec']:>12,.0f} ev/s  "
            f"speedup={record['speedup'][name]:5.2f}x{marker}"
        )
    return rows
