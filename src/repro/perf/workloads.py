"""Deterministic six-organization workloads for perf and determinism runs.

One workload per file organization (S, PS, IS, SS, GDA, PDA), each a full
read pass followed by a full write pass through the organization's own
handle type. The workloads are shared by the engine-throughput benchmark
(`benchmarks/bench_engine_throughput.py`) and the determinism regression
tests (`tests/perf/test_determinism.py`): the benchmark measures their
wall-clock cost, the tests pin their simulated outcome.

Everything here is deterministic by construction — no RNG, no wall-clock
reads — so two runs of the same workload on the same configuration must
produce the same event order, final clock, device statistics, and media
bytes. :func:`digest` folds all of those into one hash; the fast engine
loop and extent-batched submission are required to leave it unchanged
relative to the legacy per-block paths (see ``docs/PERF.md``).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..fs.internal_io import SSSession
from ..sim.engine import Environment, Process

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile, ParallelFileSystem

__all__ = [
    "ORGS",
    "WorkloadConfig",
    "make_file",
    "seed_file",
    "spawn_workload",
    "run_org",
    "digest",
]

#: every file organization, in the paper's order
ORGS = ("S", "PS", "IS", "SS", "GDA", "PDA")


class WorkloadConfig:
    """Shape of one workload file (size, blocking, parallelism)."""

    __slots__ = ("n_records", "record_size", "records_per_block",
                 "n_processes", "chunk", "cache_blocks")

    def __init__(
        self,
        n_records: int = 480,
        record_size: int = 32,
        records_per_block: int = 6,
        n_processes: int = 4,
        chunk: int = 48,
        cache_blocks: int = 2,
    ):
        if n_records % n_processes:
            raise ValueError("n_records must divide evenly among processes")
        self.n_records = n_records
        self.record_size = record_size
        self.records_per_block = records_per_block
        self.n_processes = n_processes
        self.chunk = chunk
        self.cache_blocks = cache_blocks

    def as_dict(self) -> dict[str, int]:
        """The config as a plain dict (for the benchmark JSON record)."""
        return {name: getattr(self, name) for name in self.__slots__}


def make_file(
    pfs: "ParallelFileSystem", org: str, cfg: WorkloadConfig
) -> "ParallelFile":
    """Create (and seed) the workload file for ``org``."""
    f = pfs.create(
        f"perf_{org}",
        org,
        n_records=cfg.n_records,
        record_size=cfg.record_size,
        records_per_block=cfg.records_per_block,
        n_processes=cfg.n_processes,
    )
    seed_file(f)
    return f


def seed_file(file: "ParallelFile") -> None:
    """Fill the file's media with a deterministic pattern in zero time."""
    nbytes = file.attrs.file_bytes
    raw = (np.arange(nbytes, dtype=np.uint64) % 251).astype(np.uint8)
    file.volume.poke(file.entry.extent, file.layout, 0, raw)


def _fill(count: int, record_size: int, salt: int) -> np.ndarray:
    """Deterministic write payload: ``count`` records of ``record_size``."""
    flat = (np.arange(count * record_size, dtype=np.uint64) * 7 + salt) % 251
    return flat.astype(np.uint8).reshape(count, record_size)


def spawn_workload(
    file: "ParallelFile", cfg: WorkloadConfig
) -> list[Process]:
    """Spawn the organization's read-then-write workload processes.

    The caller owns the run (``env.run(env.all_of(procs))`` or a bare
    ``env.run()``); this only creates the processes.
    """
    org = file.map.org.name
    env = file.env
    driver = {
        "S": _spawn_s,
        "PS": _spawn_partition,
        "IS": _spawn_partition,
        "SS": _spawn_ss,
        "GDA": _spawn_gda,
        "PDA": _spawn_pda,
    }[org]
    return driver(env, file, cfg)


def run_org(
    env: Environment, pfs: "ParallelFileSystem", org: str, cfg: WorkloadConfig
) -> "ParallelFile":
    """Create, seed, and spawn one organization's workload (no run)."""
    f = make_file(pfs, org, cfg)
    spawn_workload(f, cfg)
    return f


# -- per-organization drivers -------------------------------------------------


def _spawn_s(env, file, cfg):
    def reader_writer():
        h = file.internal_view(file.map.reader)
        while not h.eof:
            yield from h.read_next(cfg.chunk)
        w = file.internal_view(file.map.reader)
        pos = 0
        while pos < cfg.n_records:
            count = min(cfg.chunk, cfg.n_records - pos)
            yield from w.write_next(_fill(count, cfg.record_size, pos))
            pos += count

    return [env.process(reader_writer())]


def _spawn_partition(env, file, cfg):
    def worker(p):
        h = file.internal_view(p)
        while not h.eof:
            yield from h.read_next(cfg.chunk)
        w = file.internal_view(p)
        pos = 0
        while pos < w.n_local_records:
            count = min(cfg.chunk, w.n_local_records - pos)
            yield from w.write_next(_fill(count, cfg.record_size, p * 131 + pos))
            pos += count

    return [env.process(worker(p)) for p in range(cfg.n_processes)]


def _spawn_ss(env, file, cfg):
    read_session = SSSession(file)
    write_session = SSSession(file)
    block_records = cfg.records_per_block

    def worker(p):
        h = read_session.handle(p)
        while not read_session.exhausted:
            data = yield from h.read_next()
            if data is None:
                break
        w = write_session.handle(p)
        payload = _fill(block_records, cfg.record_size, p * 17 + 5)
        while not write_session.exhausted:
            n = yield from w.write_next(payload)
            if not n:
                break

    return [env.process(worker(p)) for p in range(cfg.n_processes)]


def _spawn_gda(env, file, cfg):
    # Disjoint record extents: process p owns every P-th extent of
    # records_per_block records and visits them in a scrambled (but
    # fixed) order, which is what makes this "direct" rather than
    # interleaved.
    P = cfg.n_processes
    span = cfg.records_per_block
    if cfg.n_records % (P * span):
        raise ValueError("GDA needs n_records divisible by n_processes * records_per_block")
    k = cfg.n_records // (P * span)

    def worker(p):
        # extents are block-aligned, so a working-set cache turns the
        # write pass into cache hits and defers device writes to one
        # flush — a gather under extent batching
        h = file.internal_view(p, cache_blocks=max(k, 1))
        order = [(((i * 7 + 3) % k) * P + p) * span for i in range(k)]
        for r in order:
            yield from h.read_record(r, span)
        for r in order:
            yield from h.write_record(r, _fill(span, cfg.record_size, r))
        yield from h.flush()

    return [env.process(worker(p)) for p in range(P)]


def _spawn_pda(env, file, cfg):
    # Every owned block is cached (the §3.2 private-block working set), so
    # the read pass misses once per block, the write pass hits, and the
    # final flush writes the whole dirty set back — one gather under
    # extent batching, one write per block without it.
    bs = file.attrs.block_spec

    def worker(p):
        owned = [int(b) for b in file.map.blocks_of(p)]
        h = file.internal_view(p, cache_blocks=max(len(owned), 1))
        spans = []
        for b in owned:
            first = bs.first_record(b)
            count = min(cfg.records_per_block, cfg.n_records - first)
            spans.append((first, count))
        for first, count in spans:
            yield from h.read_record(first, count)
        for first, count in spans:
            yield from h.write_record(
                first, _fill(count, cfg.record_size, first)
            )
        yield from h.flush()

    return [env.process(worker(p)) for p in range(cfg.n_processes)]


# -- outcome digest -----------------------------------------------------------


def _device_members(device) -> Iterable:
    """Expand ShadowPair-style composites into their member controllers."""
    primary = getattr(device, "primary", None)
    if primary is not None:
        return (primary, device.shadow)
    return (device,)


def _fold_outcomes(
    h,
    pfs: "ParallelFileSystem",
    files: "Iterable[ParallelFile]",
) -> None:
    """Fold per-device statistics and file media bytes into hash ``h``."""
    for device in pfs.volume.devices:
        for d in _device_members(device):
            lat = d.latency
            h.update(
                repr(
                    (
                        d.name,
                        d.writes_applied,
                        lat.count,
                        float(lat.total),
                        d.transient_errors,
                    )
                ).encode()
            )
    for f in files:
        raw = f.volume.peek(f.entry.extent, f.layout, 0, f.attrs.file_bytes)
        h.update(f.name.encode())
        h.update(np.ascontiguousarray(raw).tobytes())


def digest(
    env: Environment,
    pfs: "ParallelFileSystem",
    files: "Iterable[ParallelFile]",
) -> str:
    """Hash of everything the simulation produced that users can observe.

    Folds in the final clock, the event-id and step counters (so any
    reordering or extra/missing event changes the hash), per-device
    statistics, and the media bytes of every workload file. Two runs that
    agree on this digest produced byte-identical simulated results —
    the fast/normal and batched/per-block equivalence contract.
    """
    h = hashlib.sha256()
    h.update(repr((float(env.now), env._eid, env.steps)).encode())
    _fold_outcomes(h, pfs, files)
    return h.hexdigest()


def fs_digest(
    pfs: "ParallelFileSystem",
    files: "Iterable[ParallelFile]",
) -> str:
    """Hash of simulated *outcomes* only — no environment counters.

    The cross-topology cousin of :func:`digest`: per-device statistics
    (writes applied, service counts/time, transient errors) and the
    media bytes of every workload file, but not the clock, event-id, or
    step counters. Sharded and single-heap runs of the same workload
    necessarily differ in per-environment bookkeeping (N shard clocks
    versus one), yet must produce identical simulated results — this is
    the digest that equivalence is pinned with. For same-topology
    comparisons prefer :func:`digest`, which is strictly stronger.
    """
    h = hashlib.sha256()
    _fold_outcomes(h, pfs, files)
    return h.hexdigest()
