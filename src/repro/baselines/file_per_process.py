"""The file-per-process baseline (§3's NASA Finite Element Machine story).

    "partitioning of external data is frequently handled by assigning a
    separate file to each process ... This approach was tried on NASA's
    Finite Element Machine, but was found to be unsatisfactory for more
    than a handful of processes."

Two failure modes the paper reports, both made measurable here:

1. *Manageability*: "just keeping track of the large number of files was
   burdensome" — the dataset creates ``files_per_process x P`` catalog
   entries that must be created/deleted individually (counted).
2. *Pre/post-processing*: "data stored in a multitude of small files often
   needed to be treated as a unit by sequential programs" — consuming the
   dataset globally requires an explicit merge pass that reads and
   rewrites every byte (timed).

A parallel file (PS organization) provides the same per-process access
with ONE catalog entry and a global view that costs nothing to set up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.mapping import PartitionedMap

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile, ParallelFileSystem

__all__ = ["FilePerProcessDataset"]


class FilePerProcessDataset:
    """A logically-single dataset split across one file per process."""

    def __init__(
        self,
        pfs: "ParallelFileSystem",
        basename: str,
        n_records: int,
        record_size: int,
        n_processes: int,
        records_per_block: int = 1,
        dtype: str = "uint8",
    ):
        self.pfs = pfs
        self.basename = basename
        self.n_processes = n_processes
        self.record_size = record_size
        self.dtype = dtype
        # partition exactly as a PS file would, for apples-to-apples
        from ..core.blocks import BlockSpec
        from ..core.records import RecordSpec

        self._map = PartitionedMap(
            BlockSpec(RecordSpec(record_size, dtype), records_per_block),
            n_records,
            n_processes,
        )
        self.files: list["ParallelFile"] = []
        for p in range(n_processes):
            count = self._map.n_local_records(p)
            self.files.append(
                pfs.create(
                    self._name(p),
                    "S",
                    n_records=count,
                    record_size=record_size,
                    records_per_block=records_per_block,
                    dtype=dtype,
                    n_devices=1 if pfs.volume.n_devices == 1 else None,
                )
            )
        #: bytes moved by pre/post-processing utilities (the overhead the
        #: paper's users "balked at")
        self.utility_bytes = 0

    def _name(self, p: int) -> str:
        return f"{self.basename}.{p:04d}"

    @property
    def file_count(self) -> int:
        """Catalog entries this dataset occupies (vs. 1 for a parallel file)."""
        return len(self.files)

    # -- the pre-processing utility -------------------------------------------

    def partition(self, data: np.ndarray):
        """Generator: split a global dataset into the per-process files.

        This is the §3 pre-processing pass: every byte is read from the
        global source and rewritten into a small file.
        """
        if len(data) != self._map.n_records:
            raise ValueError("data does not match dataset record count")
        for p, f in enumerate(self.files):
            recs = self._map.records_of(p)
            if len(recs) == 0:
                continue
            chunk = data[recs]
            yield from f.global_view().write(chunk)
            self.utility_bytes += chunk.size * np.dtype(self.dtype).itemsize

    # -- per-process access (the part that works fine) ---------------------------

    def read_partition(self, p: int):
        """Generator: process ``p`` reads its own file (independent, fast)."""
        out = yield from self.files[p].global_view().read()
        return out

    def write_partition(self, p: int, values: np.ndarray):
        """Generator: process ``p`` rewrites its own file."""
        view = self.files[p].global_view()
        view.seek(0)
        yield from view.write(values)

    # -- the post-processing utility ------------------------------------------------

    def merge(self, out_name: str):
        """Generator: merge the small files into one sequential file.

        The §3 post-processing pass sequential programs require; returns
        the merged :class:`ParallelFile`. Cost: full read + full write.
        """
        merged = self.pfs.create(
            out_name,
            "S",
            n_records=self._map.n_records,
            record_size=self.record_size,
            records_per_block=self._map.blocks.records_per_block,
            dtype=self.dtype,
        )
        writer = merged.global_view()
        for p, f in enumerate(self.files):
            if f.n_records == 0:
                continue
            chunk = yield from f.global_view().read()
            yield from writer.write(chunk)
            self.utility_bytes += chunk.size * np.dtype(self.dtype).itemsize
        return merged

    # -- cleanup (every file individually, as the paper laments) -----------------

    def delete_all(self) -> int:
        """Delete every per-process file; returns how many deletions it took."""
        n = 0
        for p in range(self.n_processes):
            self.pfs.delete(self._name(p))
            n += 1
        self.files.clear()
        return n
