"""Baselines: file-per-process (FEM) and conventional single-device files."""

from .conventional import build_parallel_fs, build_sharded_fs, single_device_fs
from .file_per_process import FilePerProcessDataset

__all__ = [
    "build_parallel_fs",
    "build_sharded_fs",
    "single_device_fs",
    "FilePerProcessDataset",
]
