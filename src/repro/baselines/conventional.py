"""Conventional single-device file system — the speedup reference point.

Every striping/interleaving speedup in the benchmarks is reported relative
to the same file on ONE device of the same type, which is what 1989
systems without parallel I/O offered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..devices.controller import DeviceController
from ..devices.disk import WREN_1989, DiskGeometry, DiskModel, DiskTiming
from ..fs.pfs import ParallelFileSystem
from ..sim.engine import Environment
from ..storage.volume import Volume
from ..trace.events import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..qos.config import QoSConfig
    from ..resilience.config import ResilienceConfig
    from ..sim.sharded import ShardedSimulation

__all__ = ["build_parallel_fs", "build_sharded_fs", "single_device_fs"]


def build_parallel_fs(
    env: Environment,
    n_devices: int,
    timing: DiskTiming = WREN_1989,
    geometry: DiskGeometry | None = None,
    recorder: TraceRecorder | None = None,
    scheduling: str | None = None,
    io_nodes: int | None = None,
    resilience: "ResilienceConfig | None" = None,
    qos: "QoSConfig | None" = None,
    batch_io: bool = False,
    shards: "int | ShardedSimulation | None" = None,
) -> ParallelFileSystem:
    """A file system over ``n_devices`` identical drives.

    ``io_nodes`` (a node count) opts the file system into the
    server-mediated data plane of :mod:`repro.ionode`.

    ``qos`` (a :class:`~repro.qos.QoSConfig`) opts into the multi-tenant
    QoS layer: tenant-aware scheduling on every device and I/O-node
    inbox, token-bucket admission throttling, and per-tenant
    backpressure accounting. It is attached last, after the I/O-node and
    resilience layers, so it schedules whatever queue points exist.

    ``batch_io=True`` turns on extent-batched (list-I/O) submission —
    see :meth:`~repro.fs.pfs.ParallelFileSystem.set_batching` and
    ``docs/PERF.md``.

    ``resilience`` (a :class:`~repro.resilience.ResilienceConfig`) opts
    into the online resilience layer: ``protection="parity"`` adds one
    check drive and a :class:`~repro.storage.parity.ParityGroup` over the
    data drives, ``protection="shadow"`` mirrors every drive into a
    :class:`~repro.devices.ShadowPair`; ``spares`` idle drives are built
    for the hot-spare rebuilder either way. The layer wraps whatever data
    plane is active (direct or server-mediated), and the file system's
    ``resilience`` attribute exposes its stats/journal/rebuilder.

    ``shards`` (a shard count, or a prebuilt
    :class:`~repro.sim.sharded.ShardedSimulation`) switches to sharded
    mode: the call returns a
    :class:`~repro.sim.sharded.ShardedParallelFS` holding one complete
    file system (``n_devices`` drives, plus any I/O-node/resilience/QoS
    layers) per shard, each on its own :class:`Environment`. Pass
    ``env=None`` with an integer ``shards`` (the sharded simulation is
    created for you, with lookahead set to the default interconnect
    latency) or ``env=None`` with a ``ShardedSimulation`` you built.
    """
    if shards is not None:
        return build_sharded_fs(
            shards,
            n_devices,
            timing=timing,
            geometry=geometry,
            recorder=recorder,
            scheduling=scheduling,
            io_nodes=io_nodes,
            resilience=resilience,
            qos=qos,
            batch_io=batch_io,
            env=env,
        )
    from ..devices.scheduling import make_policy

    geo = geometry or DiskGeometry()

    def make_disk(name: str) -> DeviceController:
        return DeviceController(
            env,
            DiskModel(geo, timing),
            name=name,
            policy=make_policy(scheduling) if scheduling else None,
        )

    devices: list = [make_disk(f"disk{i}") for i in range(n_devices)]
    group = None
    if resilience is not None and resilience.protection == "shadow":
        from ..devices.shadow import ShadowPair

        devices = [
            ShadowPair(env, dev, make_disk(f"{dev.name}s")) for dev in devices
        ]
    pfs = ParallelFileSystem(
        env, Volume(env, devices), recorder=recorder, io_nodes=io_nodes
    )
    if resilience is not None:
        if resilience.protection == "parity":
            from ..storage.parity import ParityGroup

            group = ParityGroup(
                env,
                devices,
                make_disk("parity"),
                mode=resilience.parity_mode,
                parity_unit=resilience.parity_unit,
            )
        spares = [make_disk(f"spare{k}") for k in range(resilience.spares)]
        pfs.attach_resilience(resilience, group=group, spares=spares)
    if qos is not None:
        pfs.attach_qos(qos)
    if batch_io:
        pfs.set_batching(True)
    return pfs


def build_sharded_fs(
    shards: "int | ShardedSimulation",
    n_devices: int,
    timing: DiskTiming = WREN_1989,
    geometry: DiskGeometry | None = None,
    recorder: TraceRecorder | None = None,
    scheduling: str | None = None,
    io_nodes: int | None = None,
    resilience: "ResilienceConfig | None" = None,
    qos: "QoSConfig | None" = None,
    batch_io: bool = False,
    env: Environment | None = None,
):
    """One file system per shard under conservative-window sync.

    ``shards`` is a shard count (a :class:`~repro.sim.sharded.
    ShardedSimulation` is created, with lookahead set to the default
    :class:`~repro.ionode.interconnect.Interconnect` latency — the
    fastest any cross-shard message can travel) or a prebuilt
    ``ShardedSimulation`` whose lookahead you chose yourself. Every
    other parameter means what it means in :func:`build_parallel_fs`
    and applies to each shard identically: shard *i* gets its own
    ``n_devices`` drives, optional I/O nodes, resilience group, and QoS
    layer, all living on shard *i*'s environment.

    ``recorder``, when given, is shared by every shard — fine for
    counting recorders like ``NullTraceRecorder``, but a full trace will
    interleave events from N shard clocks.

    Returns a :class:`~repro.sim.sharded.ShardedParallelFS`.
    """
    from ..sim.sharded import ShardedParallelFS, ShardedSimulation

    if env is not None:
        raise ValueError(
            "sharded mode builds one Environment per shard: pass env=None "
            "(a ShardedSimulation owns the shard environments)"
        )
    if isinstance(shards, ShardedSimulation):
        sim = shards
    else:
        from ..ionode.interconnect import Interconnect

        sim = ShardedSimulation(int(shards), lookahead=Interconnect().latency)
    file_systems = [
        build_parallel_fs(
            shard.env,
            n_devices,
            timing=timing,
            geometry=geometry,
            recorder=recorder,
            scheduling=scheduling,
            io_nodes=io_nodes,
            resilience=resilience,
            qos=qos,
            batch_io=batch_io,
        )
        for shard in sim.shards
    ]
    return ShardedParallelFS(sim, file_systems)


def single_device_fs(
    env: Environment,
    timing: DiskTiming = WREN_1989,
    geometry: DiskGeometry | None = None,
    recorder: TraceRecorder | None = None,
) -> ParallelFileSystem:
    """The conventional baseline: one drive, no I/O parallelism."""
    return build_parallel_fs(env, 1, timing, geometry, recorder)
