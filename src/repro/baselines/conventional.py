"""Conventional single-device file system — the speedup reference point.

Every striping/interleaving speedup in the benchmarks is reported relative
to the same file on ONE device of the same type, which is what 1989
systems without parallel I/O offered.
"""

from __future__ import annotations

from ..devices.controller import DeviceController
from ..devices.disk import WREN_1989, DiskGeometry, DiskModel, DiskTiming
from ..fs.pfs import ParallelFileSystem
from ..sim.engine import Environment
from ..storage.volume import Volume
from ..trace.events import TraceRecorder

__all__ = ["build_parallel_fs", "single_device_fs"]


def build_parallel_fs(
    env: Environment,
    n_devices: int,
    timing: DiskTiming = WREN_1989,
    geometry: DiskGeometry | None = None,
    recorder: TraceRecorder | None = None,
    scheduling: str | None = None,
    io_nodes: int | None = None,
) -> ParallelFileSystem:
    """A file system over ``n_devices`` identical drives.

    ``io_nodes`` (a node count) opts the file system into the
    server-mediated data plane of :mod:`repro.ionode`.
    """
    from ..devices.scheduling import make_policy

    geo = geometry or DiskGeometry()
    devices = [
        DeviceController(
            env,
            DiskModel(geo, timing),
            name=f"disk{i}",
            policy=make_policy(scheduling) if scheduling else None,
        )
        for i in range(n_devices)
    ]
    return ParallelFileSystem(
        env, Volume(env, devices), recorder=recorder, io_nodes=io_nodes
    )


def single_device_fs(
    env: Environment,
    timing: DiskTiming = WREN_1989,
    geometry: DiskGeometry | None = None,
    recorder: TraceRecorder | None = None,
) -> ParallelFileSystem:
    """The conventional baseline: one drive, no I/O parallelism."""
    return build_parallel_fs(env, 1, timing, geometry, recorder)
