"""Discrete-event simulation engine.

A small, deterministic, generator-coroutine event simulator in the style of
SimPy, built from scratch (no external dependency is available offline).
Simulated processes are Python generators that ``yield`` events; the
:class:`Environment` advances simulated time from event to event.

The engine is the substrate for every performance experiment in this
reproduction: simulated processes model the application processes of
Crockett's MIMD machine, and simulated time models elapsed wall time on
that machine (seek, rotation, transfer, compute).

Determinism contract: given the same program and the same RNG seeds, a
simulation run produces the same event order and the same final clock.
Ties in scheduled time are broken by insertion order (FIFO).

Fast mode: an :class:`Environment` runs its event loop through an inlined
fast path whenever no sanitizer is attached (``fast=None``, the default,
auto-detects; ``fast=False`` forces the legacy hooked loop). The fast loop
is observationally identical to the legacy loop — same event order, same
clock, same values — it only removes per-event hook checks, method-call
overhead, and :class:`Timeout` allocations (via the :meth:`Environment.
sleep` pool). Attaching a sanitizer (``repro.sanitize.attach`` or
``strict=True``) always switches the environment to the hooked loop.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal engine operations (double-trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, may be *triggered* (scheduled with a value or
    an exception), and is *processed* once its callbacks have run. Processes
    wait for events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused")

    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        #: callables invoked with this event when it is processed
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = Event._PENDING
        self._ok: bool | None = None
        self._processed = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (value or failure set)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception is re-raised inside any process waiting on the event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay", "_poolable")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._poolable = False
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Initialize(Event):
    """Internal: first resumption of a new process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        env._schedule(self)


class Process(Event):
    """A simulated process wrapping a generator.

    The process is itself an event that triggers when the generator returns
    (value = return value) or raises (failure). Other processes can wait for
    it by yielding it, which is how fork/join is expressed.
    """

    __slots__ = ("_generator", "_target", "name", "qos_tenant")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Ambient QoS context: child processes are always created from
        # within their parent's generator body, so inheriting from the
        # active process propagates the tenant down the whole call chain
        # (see ``repro.qos``). None means "untagged" (system work).
        self.qos_tenant: Any = getattr(env._active, "qos_tenant", None)
        #: the event this process is currently waiting on
        self._target: Event | None = Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting yourself is
        also an error (a process cannot preempt itself).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self.env._active is self:
            raise SimulationError("a process cannot interrupt itself")
        target = self._target
        if target is not None and target.callbacks is not None:
            # Stop waiting on the old target (it may already be triggered —
            # e.g. a Timeout is born triggered — but not yet processed).
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.env)
        interrupt_event.callbacks = [self._resume]
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        self.env._schedule(interrupt_event)
        self._target = interrupt_event

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active = None
                self._target = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                # Close the generator and fail the process cleanly. (Throwing
                # the error into the generator instead would misbehave when
                # the generator catches it and keeps yielding.)
                env._active = None
                try:
                    self._generator.close()
                except RuntimeError:
                    pass  # generator ignored GeneratorExit; fail it anyway
                self._target = None
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded non-event "
                        f"{next_event!r}"
                    )
                )
                return
            if next_event.env is not env:
                raise SimulationError(
                    "yielded event belongs to a different Environment"
                )

            if next_event.callbacks is not None:
                # Not yet processed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active = None
                return
            # Already processed: feed its value back immediately.
            event = next_event


class Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_done")

    def __init__(self, env: "Environment", events: list[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_done = 0
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("mixed environments in condition")
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)
        if not self.events and not self.triggered:
            self.succeed({})

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if not event._ok:
            # Always defuse: with several concurrently-failing components
            # the condition fails once, but every component's failure is
            # handled here (otherwise the later ones crash the run).
            event.defuse()
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._satisfied():
            # Only *processed* events contribute values: a Timeout is
            # "triggered" from birth but has not yet occurred.
            self.succeed(
                {ev: ev._value for ev in self.events if ev.processed and ev._ok}
            )


class AllOf(Condition):
    """Triggers once every component event has triggered (barrier join)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done == len(self.events)


class AnyOf(Condition):
    """Triggers as soon as one component event triggers."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


#: upper bound on recycled Timeout objects kept per environment
_TIMEOUT_POOL_CAP = 256


class Environment:
    """The simulation clock and event queue.

    ``fast`` selects the event-loop flavour: ``None`` (default) runs the
    inlined fast loop until a sanitizer is attached, ``False`` always runs
    the legacy hooked loop (the pre-optimization baseline, useful as the
    reference side of perf comparisons — see ``docs/PERF.md``). Both
    flavours produce byte-identical simulated results.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        strict: bool = False,
        fast: bool | None = None,
    ):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._eid = 0
        self._active: Process | None = None
        #: events processed so far (events/sec denominator for perf runs)
        self._steps = 0
        #: fast-loop eligibility; cleared when a sanitizer attaches
        self._fast = fast is not False
        #: recycled poolable Timeouts (see :meth:`sleep`)
        self._timeout_pool: list[Timeout] = []
        #: attached EngineSanitizer, if any (see ``repro.sanitize``)
        self._sanitizer: Any = None
        if strict:
            from ..sanitize.engine_hooks import attach

            attach(self, raise_on_violation=True)

    @property
    def sanitizer(self) -> Any:
        """The attached :class:`~repro.sanitize.EngineSanitizer`, if any."""
        return self._sanitizer

    @property
    def fast_mode(self) -> bool:
        """True when :meth:`run` will use the inlined fast loop."""
        return self._fast and self._sanitizer is None

    @property
    def steps(self) -> int:
        """Events processed so far (both loop flavours count)."""
        return self._steps

    def _hooks_attached(self) -> None:
        """A sanitizer attached: fall back to the hooked legacy loop.

        Takes effect at the next :meth:`run`/:meth:`step` call; a fast loop
        already in flight finishes its current ``run`` without hooks.
        """
        self._fast = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active

    # -- event constructors -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """A pooled :class:`Timeout` for internal hot paths.

        Contract: the caller must ``yield`` the returned event exactly once
        and must NOT retain a reference to it afterwards — in fast mode the
        object is recycled the moment it is processed, so ``.value`` /
        ``.processed`` reads after the yield observe a *different* sleep.
        Pooling is timing-transparent: a pooled timeout consumes the same
        schedule slot (eid) as a fresh one, so event order is unchanged.
        Outside fast mode this is exactly ``timeout(delay)``.
        """
        if not self._fast:
            return Timeout(self, delay)
        pool = self._timeout_pool
        if not pool:
            t = Timeout(self, delay)
            t._poolable = True
            return t
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = pool.pop()
        t.delay = delay
        t._value = None
        t._processed = False
        t._defused = False
        t._poolable = True
        self._schedule(t, delay)
        return t

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: list[Event]) -> AllOf:
        """An event triggering once every component has occurred (join)."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """An event triggering as soon as any component occurs."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on empty event queue")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        self._steps += 1
        if self._sanitizer is not None:
            self._sanitizer.on_step(event)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for cb in callbacks:
            cb(event)
        if event._ok is False and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception if it failed).
        """
        if self._fast and self._sanitizer is None:
            return self._run_fast(until)
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before target event triggered"
                    )
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})"
                )
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self._now = horizon
            return None
        while self._queue:
            self.step()
        return None

    def _run_fast(self, until: float | Event | None) -> Any:
        """The inlined fast event loop (no per-event hook checks).

        Observationally identical to the legacy ``step()`` loop: it pops
        the same heap in the same order, runs the same callbacks, and
        raises the same errors. It exists so the hot path pays no method
        call, no sanitizer test, and no Timeout allocation per event.
        """
        queue = self._queue
        pool = self._timeout_pool
        pop = heapq.heappop
        steps = self._steps
        try:
            if isinstance(until, Event):
                stop = until
                while not stop._processed:
                    if not queue:
                        raise SimulationError(
                            "event queue drained before target event triggered"
                        )
                    when, _, event = pop(queue)
                    self._now = when
                    steps += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                    if type(event) is Timeout and event._poolable:
                        event._poolable = False
                        if len(pool) < _TIMEOUT_POOL_CAP:
                            callbacks.clear()
                            event.callbacks = callbacks
                            pool.append(event)
                if stop._ok:
                    return stop._value
                raise stop._value
            if until is not None:
                horizon = float(until)
                if horizon < self._now:
                    raise ValueError(
                        f"until={horizon} is in the past (now={self._now})"
                    )
                while queue and queue[0][0] <= horizon:
                    when, _, event = pop(queue)
                    self._now = when
                    steps += 1
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._processed = True
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                    if type(event) is Timeout and event._poolable:
                        event._poolable = False
                        if len(pool) < _TIMEOUT_POOL_CAP:
                            callbacks.clear()
                            event.callbacks = callbacks
                            pool.append(event)
                self._now = horizon
                return None
            while queue:
                when, _, event = pop(queue)
                self._now = when
                steps += 1
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for cb in callbacks:
                    cb(event)
                if event._ok is False and not event._defused:
                    raise event._value
                if type(event) is Timeout and event._poolable:
                    event._poolable = False
                    if len(pool) < _TIMEOUT_POOL_CAP:
                        callbacks.clear()
                        event.callbacks = callbacks
                        pool.append(event)
            return None
        finally:
            self._steps = steps
