"""Discrete-event simulation engine.

A small, deterministic, generator-coroutine event simulator in the style of
SimPy, built from scratch (no external dependency is available offline).
Simulated processes are Python generators that ``yield`` events; the
:class:`Environment` advances simulated time from event to event.

The engine is the substrate for every performance experiment in this
reproduction: simulated processes model the application processes of
Crockett's MIMD machine, and simulated time models elapsed wall time on
that machine (seek, rotation, transfer, compute).

Determinism contract: given the same program and the same RNG seeds, a
simulation run produces the same event order and the same final clock.
Ties in scheduled time are broken by insertion order (FIFO).

Fast mode: an :class:`Environment` runs its event loop through an inlined
fast path whenever no sanitizer is attached (``fast=None``, the default,
auto-detects; ``fast=False`` forces the legacy hooked loop). The fast loop
is observationally identical to the legacy loop — same event order, same
clock, same values — it only removes per-event hook checks, method-call
overhead, and event allocations (via the :meth:`Environment.sleep`,
:meth:`Environment.pooled_event`, and process-initialize pools). Attaching
a sanitizer (``repro.sanitize.attach`` or ``strict=True``) always switches
the environment to the hooked loop.

Queue flavours: the future-event set is a plain ``heapq`` list while it is
small and a :class:`~repro.sim.calqueue.CalendarQueue` once it grows past a
promotion threshold (``queue="auto"``, the default). Promotion/demotion is
invisible: both flavours pop entries in the identical ``(when, eid)`` total
order, so simulated behaviour — including the golden digests in
``tests/baselines/engine_digests.json`` — is byte-identical across
``queue="heap"``, ``queue="calendar"``, and ``"auto"``. Both event-loop
flavours (fast and hooked) run on both queue flavours.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Generator
from functools import partial
from typing import Any, Callable

from .calqueue import DEMOTE_LEN, CalendarQueue

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal engine operations (double-trigger, bad yield...)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*, may be *triggered* (scheduled with a value or
    an exception), and is *processed* once its callbacks have run. Processes
    wait for events by yielding them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed", "_defused", "_poolable")

    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        #: callables invoked with this event when it is processed
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = Event._PENDING
        self._ok: bool | None = None
        self._processed = False
        self._defused = False
        #: recycled by the fast loop after processing (see the pool methods
        #: on Environment for the do-not-retain contract)
        self._poolable = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (value or failure set)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not Event._PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``.

        The exception is re-raised inside any process waiting on the event.
        """
        if self._value is not Event._PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "pending"
            if not self.triggered
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    ``_tight`` is the trampoline-flattening fast path: when a process's
    *only* wait target is this timeout (the common ``yield env.sleep(d)``
    leaf-process shape), the process parks itself in the slot instead of
    appending its resume callback — the event loop then resumes it with one
    direct call, skipping bound-method allocation and callback-list
    iteration. Timing-transparent: the tight wake runs exactly where the
    callback would have (first, in append order).
    """

    __slots__ = ("delay", "_tight")

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0 or delay != delay:  # rejects negatives and NaN
            raise ValueError(f"negative or NaN delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._processed = False
        self._defused = False
        self._poolable = False
        self._tight: Process | None = None
        self.delay = delay
        env._schedule(self, delay)


class Initialize(Event):
    """Internal: first resumption of a new process (pooled in fast mode)."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._processed = False
        self._defused = False
        self._poolable = env._fast
        env._schedule(self)


class Process(Event):
    """A simulated process wrapping a generator.

    The process is itself an event that triggers when the generator returns
    (value = return value) or raises (failure). Other processes can wait for
    it by yielding it, which is how fork/join is expressed.
    """

    __slots__ = ("_generator", "_target", "_resume_cb", "name", "qos_tenant")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not hasattr(generator, "send"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = Event._PENDING
        self._ok = None
        self._processed = False
        self._defused = False
        self._poolable = False
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Ambient QoS context: child processes are always created from
        # within their parent's generator body, so inheriting from the
        # active process propagates the tenant down the whole call chain
        # (see ``repro.qos``). None means "untagged" (system work).
        self.qos_tenant: Any = getattr(env._active, "qos_tenant", None)
        #: the bound resume method, created once — every wait point used to
        #: rebuild it (``callbacks.append(self._resume)`` allocates a fresh
        #: bound method per append, ~1 per event on process-heavy runs)
        self._resume_cb = self._resume
        pool = env._init_pool
        if pool and env._fast:
            init = pool.pop()
            init.callbacks.append(self._resume_cb)
            init._processed = False
            init._poolable = True
            env._schedule(init)
        else:
            init = Initialize(env, self)
        #: the event this process is currently waiting on
        self._target: Event | None = init

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting yourself is
        also an error (a process cannot preempt itself).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        if self.env._active is self:
            raise SimulationError("a process cannot interrupt itself")
        target = self._target
        if target is not None:
            # Stop waiting on the old target (it may already be triggered —
            # e.g. a Timeout is born triggered — but not yet processed).
            if type(target) is Timeout and target._tight is self:
                target._tight = None
            elif target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        interrupt_event = Event(self.env)
        interrupt_event.callbacks = [self._resume_cb]
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        self.env._schedule(interrupt_event)
        self._target = interrupt_event

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of ``event``."""
        env = self.env
        env._active = self
        send = self._generator.send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active = None
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active = None
                self._target = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                # Close the generator and fail the process cleanly. (Throwing
                # the error into the generator instead would misbehave when
                # the generator catches it and keeps yielding.)
                env._active = None
                try:
                    self._generator.close()
                except RuntimeError:
                    pass  # generator ignored GeneratorExit; fail it anyway
                self._target = None
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded non-event "
                        f"{next_event!r}"
                    )
                )
                return
            if next_event.env is not env:
                raise SimulationError(
                    "yielded event belongs to a different Environment"
                )

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Not yet processed: wait for it. A sole-waiter Timeout takes
                # the tight slot (see Timeout docstring) — same wake order.
                if (
                    not callbacks
                    and type(next_event) is Timeout
                    and next_event._tight is None
                ):
                    next_event._tight = self
                else:
                    callbacks.append(self._resume_cb)
                self._target = next_event
                env._active = None
                return
            # Already processed: feed its value back immediately.
            event = next_event


class Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_n_done", "_check_cb")

    def __init__(self, env: "Environment", events: list[Event]):
        super().__init__(env)
        self.events = list(events)
        self._n_done = 0
        check = self._check_cb = self._check
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("mixed environments in condition")
            if ev.callbacks is None:  # already processed
                check(ev)
            else:
                ev.callbacks.append(check)
        if not self.events and not self.triggered:
            self.succeed({})

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if not event._ok:
            # Always defuse: with several concurrently-failing components
            # the condition fails once, but every component's failure is
            # handled here (otherwise the later ones crash the run).
            event.defuse()
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._n_done += 1
        if self._satisfied():
            # Only *processed* events contribute values: a Timeout is
            # "triggered" from birth but has not yet occurred.
            self.succeed(
                {ev: ev._value for ev in self.events if ev.processed and ev._ok}
            )


class AllOf(Condition):
    """Triggers once every component event has triggered (barrier join)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done == len(self.events)


class AnyOf(Condition):
    """Triggers as soon as one component event triggers."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._n_done >= 1


#: upper bound on recycled objects kept per environment, per pool
_TIMEOUT_POOL_CAP = 256
_EVENT_POOL_CAP = 256
_INIT_POOL_CAP = 256

#: heap→calendar promotion thresholds (schedule entries): "auto" promotes
#: only once C heapq stops winning; "calendar" promotes almost immediately
#: (test/bench knob); "heap" never does.
_PROMOTE_LEN = 2048
_PROMOTE_LEN_FORCED = 16
_NEVER = 1 << 62

_QUEUE_MODES = ("auto", "heap", "calendar")


class Environment:
    """The simulation clock and event queue.

    ``fast`` selects the event-loop flavour: ``None`` (default) runs the
    inlined fast loop until a sanitizer is attached, ``False`` always runs
    the legacy hooked loop (the pre-optimization baseline, useful as the
    reference side of perf comparisons — see ``docs/PERF.md``).

    ``queue`` selects the future-event-set flavour: ``"auto"`` (default)
    starts on a binary heap and promotes to a
    :class:`~repro.sim.calqueue.CalendarQueue` past ~2k pending entries
    (demoting back when it shrinks or the distribution turns pathological);
    ``"heap"``/``"calendar"`` force one flavour (the forced calendar still
    starts on the heap until it has enough entries to pick a geometry, and
    stays on the heap when the distribution admits none).

    All four combinations produce byte-identical simulated results.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        strict: bool = False,
        fast: bool | None = None,
        queue: str = "auto",
    ):
        if queue not in _QUEUE_MODES:
            raise ValueError(f"queue={queue!r} not one of {_QUEUE_MODES}")
        self._now = float(initial_time)
        self._queue_mode = queue
        #: schedule entries ``(when, eid, event)`` — a heapq list or a
        #: CalendarQueue; ``_push``/``_pop`` are always bound to the live
        #: flavour (C ``partial`` for the heap, methods for the calendar)
        #: so the hot paths never dispatch on the flavour themselves
        self._queue: list[tuple[float, int, Event]] | CalendarQueue = []
        self._push: Callable[[tuple], None]
        self._pop: Callable[[], tuple]
        self._bind_queue(self._queue)
        self._promote_at = (
            _NEVER
            if queue == "heap"
            else _PROMOTE_LEN_FORCED if queue == "calendar" else _PROMOTE_LEN
        )
        self._eid = 0
        self._active: Process | None = None
        #: events processed so far (events/sec denominator for perf runs)
        self._steps = 0
        #: fast-loop eligibility; cleared when a sanitizer attaches
        self._fast = fast is not False
        #: recycled poolable Timeouts (see :meth:`sleep`)
        self._timeout_pool: list[Timeout] = []
        #: recycled poolable generic Events (see :meth:`pooled_event`)
        self._event_pool: list[Event] = []
        #: recycled process-Initialize events
        self._init_pool: list[Initialize] = []
        #: attached EngineSanitizer, if any (see ``repro.sanitize``)
        self._sanitizer: Any = None
        if strict:
            from ..sanitize.engine_hooks import attach

            attach(self, raise_on_violation=True)

    @property
    def sanitizer(self) -> Any:
        """The attached :class:`~repro.sanitize.EngineSanitizer`, if any."""
        return self._sanitizer

    @property
    def fast_mode(self) -> bool:
        """True when :meth:`run` will use the inlined fast loop."""
        return self._fast and self._sanitizer is None

    @property
    def queue_flavor(self) -> str:
        """Current future-event-set flavour: ``"heap"`` or ``"calendar"``."""
        return "heap" if type(self._queue) is list else "calendar"

    @property
    def steps(self) -> int:
        """Events processed so far (both loop flavours count)."""
        return self._steps

    def _hooks_attached(self) -> None:
        """A sanitizer attached: fall back to the hooked legacy loop.

        Takes effect at the next :meth:`run`/:meth:`step` call; a fast loop
        already in flight finishes its current ``run`` without hooks.
        """
        self._fast = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active

    # -- event constructors -------------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def pooled_event(self) -> Event:
        """A fresh-or-recycled untriggered :class:`Event` for hot paths.

        Contract (same as :meth:`sleep`): the event must be triggered
        exactly once, and no reference may be retained after it is
        processed — in fast mode the object is recycled the moment its
        callbacks finish, so later ``.value``/``.processed`` reads observe
        a *different* event. Pooling is timing-transparent: a recycled
        event consumes the same schedule slot (eid) as a fresh one.
        Outside fast mode this is exactly :meth:`event`.
        """
        if self._fast:
            pool = self._event_pool
            if pool:
                ev = pool.pop()
                ev._value = Event._PENDING
                ev._ok = None
                ev._processed = False
                ev._defused = False
                ev._poolable = True
                return ev
            ev = Event(self)
            ev._poolable = True
            return ev
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float) -> Timeout:
        """A pooled :class:`Timeout` for internal hot paths.

        Contract: the caller must ``yield`` the returned event exactly once
        and must NOT retain a reference to it afterwards — in fast mode the
        object is recycled the moment it is processed, so ``.value`` /
        ``.processed`` reads after the yield observe a *different* sleep.
        Pooling is timing-transparent: a pooled timeout consumes the same
        schedule slot (eid) as a fresh one, so event order is unchanged.
        Outside fast mode this is exactly ``timeout(delay)``.
        """
        # Validate here, above every branch, so a bad delay is rejected
        # whether or not the pool is warm and whether or not the env is
        # fast. NaN must be caught too: a NaN `when` is incomparable and
        # corrupts both heap and calendar ordering invariants.
        if delay < 0 or delay != delay:
            raise ValueError(f"negative or NaN delay {delay}")
        if not self._fast:
            return Timeout(self, delay)
        pool = self._timeout_pool
        if not pool:
            t = Timeout(self, delay)
            t._poolable = True
            return t
        t = pool.pop()
        t.delay = delay
        t._value = None
        t._processed = False
        t._defused = False
        t._poolable = True
        # _schedule, inlined: sleep is the single hottest schedule site
        # (one per simulated wait) and the method call is measurable.
        self._eid += 1
        self._push((self._now + delay, self._eid, t))
        return t

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ) -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator, name)

    def all_of(self, events: list[Event]) -> AllOf:
        """An event triggering once every component has occurred (join)."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """An event triggering as soon as any component occurs."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _bind_queue(self, q: "list | CalendarQueue") -> None:
        """Point ``_queue``/``_push``/``_pop`` at the given flavour."""
        self._queue = q
        if type(q) is list:
            self._push = partial(heapq.heappush, q)
            self._pop = partial(heapq.heappop, q)
        else:
            q.owner = self
            self._push = q.push
            self._pop = q.pop

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._eid += 1
        self._push((self._now + delay, self._eid, event))

    def _maybe_promote(self) -> None:
        """Called periodically by the loops: heap too big → try calendar."""
        q = self._queue
        if type(q) is list and len(q) > self._promote_at:
            cal = CalendarQueue.from_entries(q)
            if cal is not None:
                self._bind_queue(cal)
            elif self._queue_mode == "calendar":
                # No usable bucket geometry yet (e.g. an initialization
                # storm: every entry at one instant). Forced mode must
                # still promote once spread appears, so retry as soon as
                # the schedule changes shape — the refused probe was
                # O(sample), not O(n), so this stays cheap.
                self._promote_at = len(q)
            else:
                # Auto mode: stay on the heap, back off before retrying.
                self._promote_at <<= 1

    def _on_queue_demote(self, q: CalendarQueue) -> None:
        """The calendar flagged itself unprofitable: act on it (or not).

        A forced-calendar environment ignores the flag (it exists to pin
        digests and benchmark the calendar specifically); auto mode drops
        back to a heap, backing the promotion threshold off when the
        demotion was for pathology rather than shrinkage.
        """
        if self._queue_mode == "calendar":
            q.demote = False
            return
        entries = q.entries()
        heapq.heapify(entries)
        self._bind_queue(entries)
        if len(entries) >= DEMOTE_LEN:
            # Pathological distribution, not shrinkage: re-promoting at the
            # same size would thrash, so require substantially more growth.
            self._promote_at = max(self._promote_at * 2, len(entries) * 2)
        else:
            self._promote_at = _PROMOTE_LEN

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        q = self._queue
        if type(q) is list:
            return q[0][0] if q else float("inf")
        return q.peek() if q._len else float("inf")

    def step(self) -> None:
        """Process the single next event (the hooked/legacy path)."""
        try:
            when, _, event = self._pop()
        except IndexError:
            raise SimulationError("step() on empty event queue") from None
        self._maybe_promote()
        self._now = when
        self._steps += 1
        if self._sanitizer is not None:
            self._sanitizer.on_step(event)
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if type(event) is Timeout and event._tight is not None:
            proc = event._tight
            event._tight = None
            proc._resume(event)
        for cb in callbacks:
            cb(event)
        if event._ok is False and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue drains;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value (re-raising its exception if it failed).
        """
        if self._fast and self._sanitizer is None:
            return self._run_fast(until)
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before target event triggered"
                    )
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(
                    f"until={horizon} is in the past (now={self._now})"
                )
            while True:
                q = self._queue
                if type(q) is list:
                    if not q or q[0][0] > horizon:
                        break
                elif not q._len or q.peek() > horizon:
                    break
                self.step()
            self._now = horizon
            return None
        while self._queue:
            self.step()
        return None

    def run_window(self, horizon: float) -> int:
        """Process every event scheduled *strictly before* ``horizon``.

        The conservative-synchronization primitive for sharded simulation
        (see ``repro.sim.sharded``): a shard that knows no cross-shard
        message can arrive before ``horizon`` may safely execute everything
        earlier than it. Unlike ``run(until=h)`` this uses a strict bound
        (events *at* ``horizon`` stay queued — they may tie with incoming
        arrivals) and does NOT advance the clock to ``horizon``: the clock
        rests at the last processed event so :meth:`peek` keeps reporting
        true event times for the next window computation.

        Returns the number of events processed.
        """
        before = self._steps
        if self._fast and self._sanitizer is None:
            self._run_fast_bounded(horizon, strict=True)
        else:
            while True:
                q = self._queue
                if type(q) is list:
                    if not q or q[0][0] >= horizon:
                        break
                elif not q._len or q.peek() >= horizon:
                    break
                self.step()
        return self._steps - before

    # -- the fast loop ------------------------------------------------------

    def _run_fast(self, until: float | Event | None) -> Any:
        """The inlined fast event loop (no per-event hook checks).

        Observationally identical to the legacy ``step()`` loop: it pops
        the same entries in the same order, runs the same callbacks, and
        raises the same errors. It exists so the hot path pays no method
        call, no sanitizer test, and no Event/Timeout/Initialize
        allocation per event (see the pools).
        """
        if isinstance(until, Event):
            return self._run_fast_until_event(until)
        if until is None:
            self._run_fast_bounded(float("inf"), strict=False)
            return None
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(
                f"until={horizon} is in the past (now={self._now})"
            )
        self._run_fast_bounded(horizon, strict=False)
        self._now = horizon
        return None

    def _run_fast_bounded(self, bound: float, strict: bool) -> None:
        """Fast loop until the queue drains or its head reaches ``bound``.

        ``strict=False`` processes events *at* ``bound`` too (the
        ``run(until=...)`` contract); ``strict=True`` stops before them
        (the :meth:`run_window` contract). ``bound=inf`` drains.

        ``_pop``/``_push`` are re-read from ``self`` every iteration
        because a callback's ``_schedule`` may promote the heap to a
        calendar queue (and a calendar pop may demote it back) mid-run.
        """
        # One effective *exclusive* bound: an inclusive bound is the strict
        # bound one ulp up, so the loop pays a single float compare per
        # event. inf stays inf (drain mode: times are finite, never >= inf).
        if not strict:
            bound = math.nextafter(bound, math.inf)
        t_pool = self._timeout_pool
        e_pool = self._event_pool
        i_pool = self._init_pool
        Timeout_, Event_, Initialize_ = Timeout, Event, Initialize
        steps = self._steps
        check = 512
        try:
            while True:
                try:
                    entry = self._pop()
                except IndexError:
                    return  # drained
                when = entry[0]
                if when >= bound:
                    self._push(entry)  # out of window: back it goes
                    return
                event = entry[2]
                self._now = when
                steps += 1
                check -= 1
                if not check:
                    check = 512
                    self._maybe_promote()
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if type(event) is Timeout_:
                    # Timeouts are born triggered-ok, so they can never
                    # fail: skip the failure check on this branch.
                    proc = event._tight
                    if proc is not None:
                        event._tight = None
                        proc._resume(event)
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                    if event._poolable:
                        event._poolable = False
                        if len(t_pool) < _TIMEOUT_POOL_CAP:
                            callbacks.clear()
                            event.callbacks = callbacks
                            t_pool.append(event)
                else:
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                    if event._poolable:
                        event._poolable = False
                        cls = type(event)
                        if cls is Event_:
                            if len(e_pool) < _EVENT_POOL_CAP:
                                callbacks.clear()
                                event.callbacks = callbacks
                                e_pool.append(event)
                        elif cls is Initialize_:
                            if len(i_pool) < _INIT_POOL_CAP:
                                callbacks.clear()
                                event.callbacks = callbacks
                                i_pool.append(event)
        finally:
            self._steps = steps

    def _run_fast_until_event(self, stop: Event) -> Any:
        """Fast loop until ``stop`` is processed; returns its value."""
        t_pool = self._timeout_pool
        e_pool = self._event_pool
        i_pool = self._init_pool
        Timeout_, Event_, Initialize_ = Timeout, Event, Initialize
        steps = self._steps
        check = 512
        try:
            while not stop._processed:
                try:
                    entry = self._pop()
                except IndexError:
                    raise SimulationError(
                        "event queue drained before target event triggered"
                    ) from None
                self._now = entry[0]
                event = entry[2]
                steps += 1
                check -= 1
                if not check:
                    check = 512
                    self._maybe_promote()
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                if type(event) is Timeout_:
                    proc = event._tight
                    if proc is not None:
                        event._tight = None
                        proc._resume(event)
                    if callbacks:
                        for cb in callbacks:
                            cb(event)
                    if event._poolable:
                        event._poolable = False
                        if len(t_pool) < _TIMEOUT_POOL_CAP:
                            callbacks.clear()
                            event.callbacks = callbacks
                            t_pool.append(event)
                else:
                    for cb in callbacks:
                        cb(event)
                    if event._ok is False and not event._defused:
                        raise event._value
                    if event._poolable:
                        event._poolable = False
                        cls = type(event)
                        if cls is Event_:
                            if len(e_pool) < _EVENT_POOL_CAP:
                                callbacks.clear()
                                event.callbacks = callbacks
                                e_pool.append(event)
                        elif cls is Initialize_:
                            if len(i_pool) < _INIT_POOL_CAP:
                                callbacks.clear()
                                event.callbacks = callbacks
                                i_pool.append(event)
        finally:
            self._steps = steps
        if stop._ok:
            return stop._value
        raise stop._value
