"""Calendar (bucket) queue for the engine's future-event set.

A classic Brown-style calendar queue specialized for the engine's
schedule entries — ``(when, eid, event)`` tuples totally ordered by
``(when, eid)``. The structure is a ring of ``nbuckets`` day-buckets of
``width`` simulated seconds each; one lap of the ring is a *year*.
Entries due inside the current year land in their day's bucket (each
bucket a small min-heap, so same-day entries pop in exact ``(when,
eid)`` order with no memmove even when thousands of entries tie on one
instant); entries past the current year wait in an *overflow* min-heap
and migrate into buckets as the year advances. Pop walks the ring from the current day —
O(1) when the schedule is reasonably dense, which timer-heavy
many-client workloads are.

Contract: :meth:`pop` yields entries in exactly the order
``heapq.heappop`` would — the same ``(when, eid)`` total order — so the
engine can swap queue flavours without moving a single event (pinned by
the golden-digest suite and the property tests in
``tests/sim/test_calqueue.py``).

The queue is *cooperatively hybrid*: :class:`~repro.sim.engine.
Environment` keeps a plain ``heapq`` list while the schedule is small
(C-implemented binary heaps are unbeatable below a few thousand
entries), promotes to a ``CalendarQueue`` via :meth:`from_entries` when
it grows past the promotion threshold, and demotes back to the heap when
:attr:`demote` goes true — the queue shrank, or the entry distribution
turned pathological (e.g. a huge dynamic range of inter-event gaps that
keeps the ring walk long). :meth:`from_entries` itself returns ``None``
for distributions with no usable bucket width (all entries at one
instant), leaving the engine on the heap. Far-future entries are always
heap-managed (the overflow), so a few outliers never poison the ring.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any

__all__ = ["CalendarQueue"]

#: ring size bounds (powers of two)
_MIN_BUCKETS = 64
_MAX_BUCKETS = 1 << 17
#: rebuild when the calendar population leaves [len/8, len*8] of the ring
_GROW_FACTOR = 8
#: below this population the engine's heap is faster: signal demotion
DEMOTE_LEN = 768
#: ring-walk steps per pop (averaged over a window) that flag pathology
_MAX_WALK_PER_POP = 24.0
#: pops per heuristics window
_WINDOW = 4096


def _pick_geometry(
    times: list[float], n: int | None = None
) -> tuple[float, int] | None:
    """Bucket ``(width, nbuckets)`` for a sample of entry times.

    ``times`` may be a subsample of the population; pass the true
    population size as ``n`` (ring sizing needs it). Width is a robust
    multiple of the typical inter-entry gap (inter-quartile span, so
    far-future outliers do not stretch the ring); returns ``None`` when
    there is no usable spread (pathological — caller stays on the heap).
    """
    if n is None:
        n = len(times)
    if n < 2 or len(times) < 2:
        return None
    sample = sorted(times if len(times) <= 4096 else times[:4096])
    m = len(sample)
    q1 = sample[m // 4]
    q3 = sample[(3 * m) // 4]
    span = q3 - q1
    if span <= 0.0:
        # No interquartile spread: fall back to the full span.
        span = sample[-1] - sample[0]
        if span <= 0.0:
            return None
    nbuckets = _MIN_BUCKETS
    while nbuckets < n and nbuckets < _MAX_BUCKETS:
        nbuckets <<= 1
    # One lap of the ring must cover the whole live window or entries
    # thrash through the overflow heap (strictly worse than a plain
    # heap). The sample IQR holds the middle half of the population, so
    # a lap of 4x IQR covers ~2x the bulk span; entries per bucket then
    # degrade gracefully as n outgrows the ring cap.
    width = 4.0 * span / nbuckets
    if width <= 0.0 or width != width or width == float("inf"):
        return None
    return width, nbuckets


class CalendarQueue:
    """Bucket-ring future-event set with exact ``(when, eid)`` pop order."""

    __slots__ = (
        "_w",
        "_mask",
        "_buckets",
        "_ncal",
        "_overflow",
        "_epoch",
        "_horizon",
        "_len",
        "_walks",
        "_pops",
        "demote",
        "owner",
    )

    def __init__(self, width: float, nbuckets: int):
        if width <= 0.0:
            raise ValueError(f"bucket width must be positive, got {width}")
        if nbuckets < 1 or nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two, got {nbuckets}")
        self._w = width
        self._mask = nbuckets - 1
        self._buckets: list[list[tuple]] = [[] for _ in range(nbuckets)]
        #: entries resident in buckets (excludes overflow)
        self._ncal = 0
        #: far-future entries, a plain min-heap
        self._overflow: list[tuple] = []
        #: absolute day number of the current bucket (``int(time / width)``).
        #: Every filing and eligibility decision goes through that same
        #: day function — never a recomputed ``day * width`` product, whose
        #: rounding can disagree with the division near a day boundary and
        #: pop an entry a whole ring-lap late (time runs backwards).
        self._epoch = 0
        #: last day resident in the ring (``_epoch + _mask``); entries
        #: with a later day go to overflow
        self._horizon = nbuckets - 1
        self._len = 0
        #: ring-walk steps and pops since the last heuristics window
        self._walks = 0
        self._pops = 0
        #: set true when the engine should fall back to its heap
        self.demote = False
        #: object notified via ``_on_queue_demote(self)`` when ``demote``
        #: flips true (the owning Environment); None = polling only
        self.owner: Any = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_entries(cls, entries: list[tuple]) -> "CalendarQueue | None":
        """Build from existing schedule entries (any order, e.g. a heap).

        Returns ``None`` when the entry times have no usable spread —
        the caller should stay on (or return to) its binary heap. The
        no-spread probe runs on a stride sample, so a refused promotion
        costs O(sample), not O(n) — callers may re-probe cheaply while
        an initialization storm (every process scheduled at one instant)
        drains.
        """
        n = len(entries)
        step = n // 4096 or 1
        geometry = _pick_geometry([e[0] for e in entries[::step]], n)
        if geometry is None:
            return None
        q = cls(*geometry)
        w = q._w
        q._epoch = epoch = int(min(e[0] for e in entries) / w)
        q._horizon = horizon = epoch + q._mask
        buckets, overflow, mask = q._buckets, q._overflow, q._mask
        ncal = 0
        for e in entries:
            day = int(e[0] / w)
            if day > horizon:
                overflow.append(e)
            else:
                buckets[day & mask].append(e)
                ncal += 1
        for b in buckets:
            if len(b) > 1:
                heapify(b)
        heapify(overflow)
        q._ncal = ncal
        q._len = len(entries)
        return q

    def entries(self) -> list[tuple]:
        """Every entry, in no particular order (for demotion/rebuild)."""
        out = list(self._overflow)
        for b in self._buckets:
            out.extend(b)
        return out

    # -- core ops ------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def push(self, entry: tuple) -> None:
        """Insert ``entry = (when, eid, event)``."""
        day = int(entry[0] / self._w)
        if day > self._horizon:
            heappush(self._overflow, entry)
        else:
            if day < self._epoch:
                # A (re)build anchors the cursor at the earliest *entry*,
                # which may sit a day ahead of the owner's clock; a push
                # between the two would file behind the cursor and wait a
                # full ring lap (time runs backwards). Clamp to the cursor
                # bucket — eligibility is per-entry and day() is monotone,
                # so exact (when, eid) pop order is preserved.
                day = self._epoch
            heappush(self._buckets[day & self._mask], entry)
            self._ncal += 1
        self._len += 1

    def _head_bucket(self) -> list[tuple]:
        """Advance the ring to the bucket holding the earliest entry.

        Migrates overflow entries into the ring as the year boundary
        sweeps past them. Caller guarantees the queue is non-empty.
        """
        w = self._w
        mask = self._mask
        buckets = self._buckets
        overflow = self._overflow
        epoch = self._epoch
        if not self._ncal:
            # Ring empty: jump the year straight to the overflow head.
            epoch = int(overflow[0][0] / w)
        horizon = epoch + mask
        while overflow and int(overflow[0][0] / w) <= horizon:
            entry = heappop(overflow)
            heappush(buckets[int(entry[0] / w) & mask], entry)
            self._ncal += 1
        walks = 0
        while True:
            bucket = buckets[epoch & mask]
            if bucket and int(bucket[0][0] / w) <= epoch:
                self._epoch = epoch
                self._horizon = horizon
                self._walks += walks
                return bucket
            epoch += 1
            walks += 1
            horizon += 1
            while overflow and int(overflow[0][0] / w) <= horizon:
                entry = heappop(overflow)
                heappush(buckets[int(entry[0] / w) & mask], entry)
                self._ncal += 1

    def pop(self) -> tuple:
        """Remove and return the earliest entry (exact heap order)."""
        if not self._len:
            raise IndexError("pop from an empty CalendarQueue")
        bucket = self._head_bucket()
        entry = heappop(bucket)
        self._ncal -= 1
        self._len -= 1
        self._pops += 1
        if self._pops >= _WINDOW:
            self._tune()
        return entry

    def peek(self) -> float:
        """Time of the earliest entry (queue must be non-empty)."""
        if not self._len:
            raise IndexError("peek on an empty CalendarQueue")
        return self._head_bucket()[0][0]

    # -- self-tuning ---------------------------------------------------------

    def _tune(self) -> None:
        """Once per window: resize a mismatched ring, flag pathology."""
        walks, pops = self._walks, self._pops
        self._walks = 0
        self._pops = 0
        if self._len < DEMOTE_LEN:
            self.demote = True
        else:
            nbuckets = self._mask + 1
            if (
                self._ncal > _GROW_FACTOR * nbuckets
                or (self._ncal * _GROW_FACTOR < nbuckets and nbuckets > _MIN_BUCKETS)
                or walks > _MAX_WALK_PER_POP * pops
            ):
                self._rebuild()  # may set ``demote`` (hopeless geometry)
        if self.demote and self.owner is not None:
            self.owner._on_queue_demote(self)

    def _rebuild(self) -> None:
        """Re-pick geometry from the live population; demote if hopeless."""
        entries = self.entries()
        geometry = _pick_geometry([e[0] for e in entries])
        if geometry is None:
            self.demote = True
            return
        width, nbuckets = geometry
        self._w = width
        self._mask = mask = nbuckets - 1
        self._buckets = buckets = [[] for _ in range(nbuckets)]
        self._overflow = overflow = []
        self._epoch = epoch = int(min(e[0] for e in entries) / width)
        self._horizon = horizon = epoch + mask
        ncal = 0
        for e in entries:
            day = int(e[0] / width)
            if day > horizon:
                overflow.append(e)
            else:
                buckets[day & mask].append(e)
                ncal += 1
        for b in buckets:
            if len(b) > 1:
                heapify(b)
        heapify(overflow)
        self._ncal = ncal

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarQueue len={self._len} ring={self._mask + 1}x{self._w:g}s "
            f"cal={self._ncal} overflow={len(self._overflow)}>"
        )
