"""Discrete-event simulation substrate.

The simulator stands in for the MIMD multiprocessor of Crockett (1989):
simulated processes play the application processes, simulated time plays
elapsed machine time. See DESIGN.md §2 for the substitution rationale.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Container, PriorityResource, Resource, Store
from .rng import RngStreams
from .sharded import Shard, ShardChannel, ShardedSimulation
from .stats import PercentileTally, Tally, TimeWeighted, UtilizationTracker
from .sync import SimBarrier, SimLock, SimSemaphore, TicketCounter

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Container",
    "PriorityResource",
    "Resource",
    "Store",
    "RngStreams",
    "Shard",
    "ShardChannel",
    "ShardedSimulation",
    "PercentileTally",
    "Tally",
    "TimeWeighted",
    "UtilizationTracker",
    "SimBarrier",
    "SimLock",
    "SimSemaphore",
    "TicketCounter",
]
