"""Synchronization primitives for simulated processes.

These model the coordination mechanisms Crockett's parallel programs need:
mutual exclusion on shared file state (:class:`SimLock`), counting
semaphores for buffer slots (:class:`SimSemaphore`), phase barriers
(:class:`SimBarrier`), and the shared ticket counter at the heart of the
self-scheduled (SS) file organization (:class:`TicketCounter`).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Generator
from typing import Any

from .engine import Environment, Event, SimulationError

__all__ = ["SimLock", "SimSemaphore", "SimBarrier", "TicketCounter"]


class SimLock:
    """A FIFO mutual-exclusion lock.

    Usage::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    __slots__ = ("env", "_locked", "_waiters", "contended_acquires",
                 "total_acquires")

    def __init__(self, env: Environment):
        self.env = env
        self._locked = False
        self._waiters: deque[Event] = deque()
        #: number of acquisitions that had to wait (contention metric)
        self.contended_acquires = 0
        self.total_acquires = 0

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Claim the lock; the returned event triggers once held."""
        ev = Event(self.env)
        self.total_acquires += 1
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self.contended_acquires += 1
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release the lock, waking the oldest waiter."""
        if not self._locked:
            raise SimulationError("release of unheld lock")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False

    def holding(self, body: Generator[Event, Any, Any]) -> Generator[Event, Any, Any]:
        """Run generator ``body`` under the lock (helper for subprocesses)."""
        yield self.acquire()
        try:
            result = yield from body
        finally:
            self.release()
        return result


class SimSemaphore:
    """A counting semaphore with FIFO wakeup."""

    __slots__ = ("env", "_value", "_waiters")

    def __init__(self, env: Environment, value: int = 1):
        if value < 0:
            raise ValueError("initial value must be >= 0")
        self.env = env
        self._value = value
        self._waiters: deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        """Take one unit; the returned event triggers once available."""
        ev = Event(self.env)
        if self._value > 0:
            self._value -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._value += 1


class SimBarrier:
    """A reusable phase barrier for ``parties`` processes."""

    __slots__ = ("env", "parties", "_arrived", "generation")

    def __init__(self, env: Environment, parties: int):
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.env = env
        self.parties = parties
        self._arrived: list[Event] = []
        #: number of completed barrier phases
        self.generation = 0

    def wait(self) -> Event:
        """Arrive at the barrier; triggers when all parties have arrived.

        The event value is the arrival index (0 = first to arrive), so one
        process per phase can be elected to do serial work.
        """
        ev = Event(self.env)
        self._arrived.append(ev)
        if len(self._arrived) == self.parties:
            arrived, self._arrived = self._arrived, []
            self.generation += 1
            # Arrival order is list order, so enumerate() is the index.
            for i, waiter in enumerate(arrived):
                waiter.succeed(i)
        return ev


class TicketCounter:
    """Shared monotone counter used for self-scheduled (SS) file access.

    Each call to :meth:`next` atomically hands out the next integer. In the
    simulator, atomicity is modelled by an internal lock with a configurable
    critical-section cost (``update_cost``): Crockett notes (§4) that SS
    synchronization must avoid "unduly serializing access"; the cost knob
    lets benchmark E7 measure exactly that serialization.
    """

    __slots__ = ("env", "_next", "limit", "update_cost", "_lock")

    def __init__(
        self,
        env: Environment,
        start: int = 0,
        limit: int | None = None,
        update_cost: float = 0.0,
    ):
        self.env = env
        self._next = start
        self.limit = limit
        self.update_cost = update_cost
        self._lock = SimLock(env)

    @property
    def value(self) -> int:
        """The next ticket that would be issued."""
        return self._next

    def next(self) -> Generator[Event, Any, int | None]:
        """Atomically draw the next ticket (``None`` once past ``limit``).

        This is a generator to be driven with ``yield from`` inside a
        simulated process.
        """
        yield self._lock.acquire()
        try:
            if self.update_cost > 0:
                yield self.env.sleep(self.update_cost)
            if self.limit is not None and self._next >= self.limit:
                return None
            ticket = self._next
            self._next += 1
            return ticket
        finally:
            self._lock.release()
