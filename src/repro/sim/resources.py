"""Shared resources for simulated processes.

Provides SimPy-style resources:

* :class:`Resource` — a server pool with FIFO request queue (models a disk
  arm, a channel, an I/O processor slot).
* :class:`PriorityResource` — like :class:`Resource` but requests carry a
  priority (lower value served first; FIFO within a priority).
* :class:`Store` — a queue of Python objects with blocking put/get (models
  buffer queues and mailbox communication between processes).
* :class:`Container` — a continuous level with blocking put/get (models
  buffer-space accounting in bytes).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any

from .engine import Environment, Event, SimulationError

__all__ = ["Request", "Release", "Resource", "PriorityResource", "Store", "Container"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource", "priority", "_order", "_cancelled")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._cancelled = False
        resource._order += 1
        self._order = resource._order
        resource._enqueue(self)
        resource._trigger_requests()

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)

    def __lt__(self, other: "Request") -> bool:
        # The ``_order`` component is load-bearing: it is a per-resource
        # monotonic sequence number that guarantees FIFO service among
        # equal-priority requests, including after cancellations re-heapify
        # the PriorityResource queue. Do not drop it.
        return (self.priority, self._order) < (other.priority, other._order)


class Release(Event):
    """Immediate event confirming a release (triggers instantly)."""

    __slots__ = ()

    def __init__(self, env: Environment):
        super().__init__(env)
        self.succeed()


class Resource:
    """``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self._waiting: deque[Request] = deque()
        self._order = 0
        self._n_cancelled = 0

    # -- queue policy (overridden by PriorityResource) ----------------------

    def _enqueue(self, request: Request) -> None:
        self._waiting.append(request)

    def _dequeue(self) -> Request:
        return self._waiting.popleft()

    def _queue_nonempty(self) -> bool:
        return bool(self._waiting)

    def _discard(self, request: Request) -> None:
        # Lazy cancellation: an O(n) remove (plus a heapify for the
        # PriorityResource) per cancel made cancel-heavy workloads
        # quadratic. Flag the request and let the grant loop skip it when
        # it surfaces; the counter keeps ``queue_length`` O(1)-exact.
        if not request._cancelled:
            request._cancelled = True
            self._n_cancelled += 1

    # -- public API ----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot (cancelled ones excluded)."""
        return len(self._waiting) - self._n_cancelled

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot; the returned event triggers once granted."""
        return Request(self, priority)

    def peek_waiter(self) -> Request | None:
        """The request that will be granted next, without dequeuing it.

        Skips lazily-cancelled entries but never removes them, so waiter
        state (FIFO order, cancellation bookkeeping) is untouched —
        sharded-mode lookahead computations may call this freely between
        windows. Returns ``None`` when nothing is waiting.
        """
        for req in self._waiting:
            if not req._cancelled:
                return req
        return None

    def release(self, request: Request) -> Release:
        """Return a slot.

        Safe to call for a request never granted (cancels it) and a no-op
        for a request already released — a double release must not grant
        waiters twice.
        """
        if request in self.users:
            self.users.remove(request)
            self._trigger_requests()
        elif not request.triggered:
            # still waiting: cancel it (frees no slot, wakes nobody)
            self._discard(request)
        return Release(self.env)

    def _trigger_requests(self) -> None:
        while len(self.users) < self.capacity and self._queue_nonempty():
            req = self._dequeue()
            if req._cancelled:
                self._n_cancelled -= 1
                continue
            if req.triggered:
                continue
            self.users.append(req)
            req.succeed(req)
        sanitizer = self.env._sanitizer
        if sanitizer is not None:
            sanitizer.on_resource(self)


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._waiting: list[Request] = []

    def _enqueue(self, request: Request) -> None:
        heapq.heappush(self._waiting, request)

    def _dequeue(self) -> Request:
        return heapq.heappop(self._waiting)

    def _queue_nonempty(self) -> bool:
        return bool(self._waiting)

    # _discard: the base class's lazy-cancellation flag works unchanged for
    # the heap — cancelled entries keep their slot until dequeued, so no
    # remove + heapify (O(n)) per cancel, and FIFO-within-priority order
    # among survivors is untouched.

    def peek_waiter(self) -> Request | None:
        """Next request by ``(priority, order)``, without dequeuing it.

        A heap is only partially ordered and may hold lazily-cancelled
        entries anywhere, so this scans for the minimum live request —
        O(n), but it leaves the heap and cancellation counters untouched.
        """
        best: Request | None = None
        for req in self._waiting:
            if not req._cancelled and (best is None or req < best):
                best = req
        return best


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._puts.append(self)
        store._dispatch()


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store"):
        super().__init__(store.env)
        store._gets.append(self)
        store._dispatch()


class Store:
    """A FIFO queue of items with blocking put (when full) and get (when empty)."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._puts: deque[StorePut] = deque()
        self._gets: deque[StoreGet] = deque()

    def put(self, item: Any) -> StorePut:
        """Append ``item``; triggers once there is room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove and return the oldest item; triggers once one exists."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    # -- subclass hooks (see repro.qos.scheduler.TenantStore) ----------------

    def _take(self) -> Any:
        """Remove and return the next item to hand to a getter (FIFO)."""
        return self.items.popleft()

    def on_admit(self, item: Any) -> None:
        """Called after ``item`` is admitted into the store (put granted)."""

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._puts and len(self.items) < self.capacity:
                put = self._puts.popleft()
                if put.triggered:
                    continue
                self.items.append(put.item)
                put.succeed()
                self.on_admit(put.item)
                progressed = True
            while self._gets and self.items:
                get = self._gets.popleft()
                if get.triggered:
                    continue
                get.succeed(self._take())
                progressed = True
        sanitizer = self.env._sanitizer
        if sanitizer is not None:
            sanitizer.on_store(self)


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._puts.append(self)
        container._dispatch()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount
        container._gets.append(self)
        container._dispatch()


class Container:
    """A continuous quantity (e.g. buffer bytes) with blocking put/get."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init outside [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._puts: deque[ContainerPut] = deque()
        self._gets: deque[ContainerGet] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; triggers once it fits under capacity."""
        if amount > self.capacity:
            raise SimulationError(
                f"put of {amount} can never fit capacity {self.capacity}"
            )
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Take ``amount``; triggers once the level covers it."""
        if amount > self.capacity:
            raise SimulationError(
                f"get of {amount} exceeds capacity {self.capacity}"
            )
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts:
                put = self._puts[0]
                if put.triggered:
                    self._puts.popleft()
                    progressed = True
                elif self._level + put.amount <= self.capacity:
                    self._puts.popleft()
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._gets:
                get = self._gets[0]
                if get.triggered:
                    self._gets.popleft()
                    progressed = True
                elif self._level >= get.amount:
                    self._gets.popleft()
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progressed = True
        sanitizer = self.env._sanitizer
        if sanitizer is not None:
            sanitizer.on_container(self)
