"""Seedable, reproducible random-number streams.

Every stochastic component (seek distances, failure times, skewed access
patterns) draws from its own named substream so that adding randomness to
one component never perturbs another — the standard trick for reproducible
parallel simulation.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of independent numpy Generators derived from one seed.

    >>> streams = RngStreams(42)
    >>> a = streams.get("disk0.seek")
    >>> b = streams.get("disk1.seek")
    >>> a is streams.get("disk0.seek")   # same name -> same stream
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The named substream (created deterministically on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive the child seed from (root seed, stable hash of name) so
            # the stream depends only on the name, not on creation order.
            digest = hashlib.blake2s(name.encode("utf-8")).digest()
            key = (
                int.from_bytes(digest[:4], "little"),
                int.from_bytes(digest[4:8], "little"),
            )
            child = np.random.SeedSequence(entropy=self.seed, spawn_key=key)
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def exponential(self, name: str, mean: float) -> float:
        """One exponential variate with the given mean from stream ``name``."""
        return float(self.get(name).exponential(mean))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform variate in [low, high) from stream ``name``."""
        return float(self.get(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer in [low, high) from stream ``name``."""
        return int(self.get(name).integers(low, high))
