"""Statistics collection for simulation runs.

Collectors here are deliberately simple and allocation-light: benchmarks run
millions of simulated events and the guides for this domain insist on
measuring before optimizing — so the collectors themselves must not be the
bottleneck.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "Tally",
    "PercentileTally",
    "TimeWeighted",
    "UtilizationTracker",
    "summary",
]


class Tally:
    """Running mean/variance/min/max of observed samples (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def observe(self, x: float) -> None:
        """Fold one sample into the running statistics."""
        self.count += 1
        self.total += x
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    def merge(self, other: "Tally") -> "Tally":
        """Combine two tallies (parallel Welford merge)."""
        out = Tally()
        if self.count == 0:
            out.count, out._mean, out._m2 = other.count, other._mean, other._m2
            out.min, out.max, out.total = other.min, other.max, other.total
            return out
        if other.count == 0:
            out.count, out._mean, out._m2 = self.count, self._mean, self._m2
            out.min, out.max, out.total = self.min, self.max, self.total
            return out
        n = self.count + other.count
        delta = other._mean - self._mean
        out.count = n
        out._mean = self._mean + delta * other.count / n
        out._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / n
        )
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        out.total = self.total + other.total
        return out


class PercentileTally(Tally):
    """A :class:`Tally` that also keeps raw samples for percentile queries.

    Used where order statistics matter (queue-wait distributions): the
    time-weighted mean hides tail latency, and tails are exactly what QoS
    scheduling is supposed to bound. Samples are kept unsorted and sorted
    lazily on first percentile query after new data.

    By default every sample is retained, which is exact but unbounded for
    long-running simulations. Pass ``reservoir=k`` to cap memory at ``k``
    samples using Vitter's Algorithm R: each of the ``count`` observations
    ends up in the reservoir with equal probability ``k/count``, so
    percentiles stay unbiased estimates. The sampler draws from ``rng`` (a
    ``numpy`` Generator, an int seed, or a named stream from
    :class:`~repro.sim.rng.RngStreams`) so runs remain deterministic;
    ``mean``/``variance``/``min``/``max`` stay exact either way.
    """

    __slots__ = ("_samples", "_sorted", "_reservoir", "_rng")

    def __init__(self, reservoir: int | None = None, rng: Any = None) -> None:
        super().__init__()
        if reservoir is not None:
            if reservoir < 1:
                raise ValueError(f"reservoir size {reservoir} must be >= 1")
            if rng is None:
                rng = 0
            if not hasattr(rng, "integers"):
                rng = np.random.default_rng(rng)
        self._samples: list[float] = []
        self._sorted = True
        self._reservoir = reservoir
        self._rng = rng

    def observe(self, x: float) -> None:
        """Fold one sample in and retain it for percentile queries."""
        super().observe(x)
        k = self._reservoir
        if k is None or len(self._samples) < k:
            self._samples.append(x)
        else:
            # Algorithm R: keep slot j with probability k/count.
            j = int(self._rng.integers(0, self.count))
            if j < k:
                self._samples[j] = x
        self._sorted = False

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), linear interpolation."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if not self._samples:
            return math.nan
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        samples = self._samples
        if len(samples) == 1:
            return samples[0]
        pos = (q / 100.0) * (len(samples) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(samples) - 1)
        frac = pos - lo
        return samples[lo] * (1.0 - frac) + samples[hi] * frac


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal (e.g. queue length)."""

    __slots__ = ("_t0", "_last_t", "_last_v", "_area", "max")

    def __init__(self, t0: float = 0.0, initial: float = 0.0):
        self._t0 = t0
        self._last_t = t0
        self._last_v = float(initial)
        self._area = 0.0
        self.max = float(initial)

    def record(self, t: float, value: float) -> None:
        """The signal changed to ``value`` at time ``t``."""
        if t < self._last_t:
            raise ValueError("time went backwards")
        self._area += self._last_v * (t - self._last_t)
        self._last_t = t
        self._last_v = float(value)
        if value > self.max:
            self.max = float(value)

    def mean(self, now: float) -> float:
        """Time-average over [t0, now]."""
        if now < self._last_t:
            raise ValueError("now precedes last record")
        span = now - self._t0
        if span <= 0:
            return self._last_v
        return (self._area + self._last_v * (now - self._last_t)) / span

    @property
    def current(self) -> float:
        return self._last_v


class UtilizationTracker:
    """Fraction of time a server (disk arm, channel) was busy."""

    __slots__ = ("_busy_since", "_busy_total", "_t0")

    def __init__(self, t0: float = 0.0):
        self._t0 = t0
        self._busy_since: float | None = None
        self._busy_total = 0.0

    def busy(self, t: float) -> None:
        """The server became busy at time ``t`` (idempotent)."""
        if self._busy_since is None:
            self._busy_since = t

    def idle(self, t: float) -> None:
        """The server went idle at time ``t`` (idempotent)."""
        if self._busy_since is not None:
            self._busy_total += t - self._busy_since
            self._busy_since = None

    def utilization(self, now: float) -> float:
        """Busy fraction over [t0, now]."""
        busy = self._busy_total
        if self._busy_since is not None:
            busy += now - self._busy_since
        span = now - self._t0
        return busy / span if span > 0 else 0.0


@dataclass
class summary:
    """A labelled scalar result row, printable in benchmark reports."""

    label: str
    value: float
    unit: str = ""
    extra: dict = field(default_factory=dict)

    def __str__(self) -> str:
        s = f"{self.label:<44s} {self.value:>12.4g} {self.unit}"
        if self.extra:
            s += "  " + " ".join(f"{k}={v}" for k, v in self.extra.items())
        return s
