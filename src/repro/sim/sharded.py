"""Sharded simulation: one :class:`Environment` per I/O-node shard.

A single discrete-event heap serializes every event in the machine
through one Python loop — fine for dozens of clients, hopeless for the
10k–1M-client sweeps the 1989 paper's "thousands of cooperating
processes" setting implies. This module splits the machine into
*shards* (one shard per I/O-node group, each with its own
:class:`Environment`, file system, devices, and clients) and advances
them with classic **conservative time-window synchronization**
(Chandy/Misra-style lookahead):

1. Every cross-shard interaction carries a minimum delay — the
   *lookahead* ``L``, derived from the minimum interconnect latency
   (no message between I/O nodes can arrive faster than the wire).
2. Each round, the coordinator reads ``m = min(shard.peek())`` — the
   globally earliest pending event — and grants every shard the window
   ``[m, m + L)``.
3. Each shard runs :meth:`Environment.run_window` to the horizon.
   A message sent at local time ``t >= m`` with delay ``d >= L``
   arrives at ``t + d >= m + L`` — at or past the horizon — so no
   event inside the current window can be affected by a message
   generated in the same window, and shards may execute the window in
   any order (we run them sequentially, in shard order, for
   determinism).

Cross-shard messages travel over :class:`ShardChannel`, which enforces
``delay >= lookahead`` and schedules the arrival directly into the
destination shard's queue — safe because, by the invariant above, the
arrival is always at/after the destination's horizon and therefore
strictly in its future.

Within a shard everything is ordinary engine code: the calendar/heap
hybrid queue, event pooling, and the fast loop all apply per shard.
Results are compared across topologies with
:func:`repro.perf.workloads.fs_digest`, which hashes only simulated
*outcomes* (device stats, media bytes) — per-environment event counters
necessarily differ between one global heap and N shard heaps.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Iterator

from .engine import Environment, Event, Process
from .resources import Store

__all__ = ["Shard", "ShardChannel", "ShardedParallelFS", "ShardedSimulation"]


class Shard:
    """One partition of the machine: an :class:`Environment` plus its gear.

    ``fs`` is attached by ``build_parallel_fs(..., shards=...)``; plain
    engine users can ignore it and use ``env`` directly.
    """

    __slots__ = ("index", "env", "fs")

    def __init__(self, index: int, env: Environment):
        self.index = index
        self.env = env
        #: the shard-local ParallelFileSystem (set by build_parallel_fs)
        self.fs: Any = None

    def process(self, generator) -> Process:
        """Spawn a process on this shard's environment."""
        return self.env.process(generator)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Shard {self.index} now={self.env.now:g} pending={len(self.env._queue)}>"


class ShardChannel:
    """A one-way message pipe between two shards with enforced lookahead.

    ``send(payload)`` on the source shard schedules delivery into the
    destination shard's *inbox* (a :class:`Store`) after ``delay``
    simulated seconds; receivers ``yield channel.recv()``. The channel
    refuses any delay below the simulation lookahead — that bound is
    what makes window-parallel execution safe, so it is a hard error,
    not a warning.
    """

    __slots__ = ("sim", "src", "dst", "latency", "inbox", "sent", "received")

    def __init__(
        self,
        sim: "ShardedSimulation",
        src: Shard,
        dst: Shard,
        latency: float,
    ):
        if src is dst:
            raise ValueError("a ShardChannel must connect two distinct shards")
        if latency < sim.lookahead:
            raise ValueError(
                f"channel latency {latency} below simulation lookahead "
                f"{sim.lookahead}: cross-shard messages this fast would "
                f"break conservative-window synchronization"
            )
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency = latency
        self.inbox: Store = Store(dst.env)
        self.sent = 0
        self.received = 0

    def send(self, payload: Any, delay: float | None = None) -> None:
        """Deliver ``payload`` to the destination after ``delay`` seconds.

        ``delay`` defaults to the channel latency and must be at least
        the simulation lookahead. Delivery is scheduled *directly* into
        the destination environment: the arrival time
        ``src.now + delay`` is at/after the destination's current
        window horizon (the conservative-sync invariant), hence always
        in its future.
        """
        d = self.latency if delay is None else delay
        if d < self.sim.lookahead:
            raise ValueError(
                f"send delay {d} below lookahead {self.sim.lookahead}"
            )
        src_env = self.src.env
        dst_env = self.dst.env
        arrival = src_env._now + d
        ev = Event(dst_env)
        ev._ok = True
        ev._value = payload
        ev.callbacks.append(self._deliver)
        dst_env._schedule(ev, arrival - dst_env._now)
        self.sent += 1
        self.sim.messages += 1

    def _deliver(self, event: Event) -> None:
        self.received += 1
        self.inbox.put(event._value)

    def recv(self) -> Event:
        """Event triggering with the oldest delivered payload (blocking)."""
        return self.inbox.get()

    def __len__(self) -> int:
        """Payloads delivered but not yet received."""
        return len(self.inbox)


class ShardedSimulation:
    """A fleet of shard :class:`Environment`\\ s under one windowed clock.

    Parameters
    ----------
    n_shards:
        Number of shards (>= 1). One-shard mode is valid and equivalent
        to a plain environment — useful for digest comparisons.
    lookahead:
        The minimum cross-shard delay, in simulated seconds. Use the
        minimum interconnect latency of the modelled machine; larger
        lookahead means wider windows and fewer synchronization rounds.
    queue, fast:
        Forwarded to every shard :class:`Environment`.
    """

    def __init__(
        self,
        n_shards: int,
        lookahead: float,
        initial_time: float = 0.0,
        queue: str = "auto",
        fast: bool | None = None,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if not (lookahead > 0.0) or math.isinf(lookahead):
            raise ValueError(
                f"lookahead must be positive and finite, got {lookahead}"
            )
        self.lookahead = lookahead
        self.shards: list[Shard] = [
            Shard(i, Environment(initial_time, queue=queue, fast=fast))
            for i in range(n_shards)
        ]
        #: synchronization rounds executed so far
        self.windows = 0
        #: cross-shard messages sent over all channels
        self.messages = 0

    # -- topology ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __getitem__(self, index: int) -> Shard:
        return self.shards[index]

    @property
    def environments(self) -> list[Environment]:
        return [s.env for s in self.shards]

    def channel(
        self,
        src: Shard | int,
        dst: Shard | int,
        latency: float | None = None,
    ) -> ShardChannel:
        """A new one-way channel ``src -> dst`` (default latency = lookahead)."""
        if isinstance(src, int):
            src = self.shards[src]
        if isinstance(dst, int):
            dst = self.shards[dst]
        return ShardChannel(
            self, src, dst, self.lookahead if latency is None else latency
        )

    # -- execution -----------------------------------------------------------

    @property
    def now(self) -> float:
        """The window floor: no shard has unprocessed work earlier."""
        m = self.peek()
        if m == math.inf:
            return max(s.env._now for s in self.shards)
        return m

    @property
    def steps(self) -> int:
        """Total events processed across every shard."""
        return sum(s.env._steps for s in self.shards)

    def peek(self) -> float:
        """Time of the globally earliest pending event (+inf when drained)."""
        return min(s.env.peek() for s in self.shards)

    def run(self, until: float | None = None) -> int:
        """Advance all shards with conservative windows; return events run.

        ``until=None`` drains every shard. With a numeric ``until``, all
        events *strictly before* it are processed and every shard clock
        is then advanced to ``until`` (matching ``Environment.run``'s
        bounded form closely enough for steady-state workloads; an event
        scheduled exactly at ``until`` stays queued).
        """
        shards = self.shards
        lookahead = self.lookahead
        before = self.steps
        while True:
            m = self.peek()
            if m == math.inf or (until is not None and m >= until):
                break
            horizon = m + lookahead
            if until is not None and horizon > until:
                horizon = until
            for shard in shards:
                shard.env.run_window(horizon)
            self.windows += 1
        if until is not None:
            for shard in shards:
                if shard.env._now < until:
                    shard.env._now = until
        return self.steps - before

    def run_all(
        self, programs: Iterable[Callable[[Shard], Any]] | None = None
    ) -> int:
        """Convenience: optionally spawn one program per shard, then drain.

        ``programs`` is an iterable of callables ``shard -> generator``;
        callable *i* runs on shard ``i % n_shards``.
        """
        if programs is not None:
            for i, make in enumerate(programs):
                shard = self.shards[i % len(self.shards)]
                shard.env.process(make(shard))
        return self.run()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedSimulation shards={len(self.shards)} "
            f"lookahead={self.lookahead:g} windows={self.windows} "
            f"messages={self.messages}>"
        )


class ShardedParallelFS:
    """N shard-local file systems under one :class:`ShardedSimulation`.

    Built by ``build_parallel_fs(..., shards=...)``: shard *i* owns
    ``file_systems[i]``, a complete ParallelFileSystem (devices,
    optional I/O nodes, resilience, QoS) living on shard *i*'s
    environment. The machine model is one I/O-node group per shard:
    clients of a shard talk to their local file system in simulated
    time, and only explicitly-channelled traffic crosses shards.
    """

    __slots__ = ("sim", "file_systems")

    def __init__(self, sim: ShardedSimulation, file_systems: list):
        if len(file_systems) != len(sim.shards):
            raise ValueError(
                f"{len(file_systems)} file systems for {len(sim.shards)} shards"
            )
        self.sim = sim
        self.file_systems = file_systems
        for shard, fs in zip(sim.shards, file_systems):
            shard.fs = fs

    @property
    def shards(self) -> list[Shard]:
        return self.sim.shards

    def __len__(self) -> int:
        return len(self.file_systems)

    def __iter__(self) -> Iterator:
        return iter(self.file_systems)

    def __getitem__(self, index: int):
        return self.file_systems[index]

    def run(self, until: float | None = None) -> int:
        """Advance the whole fleet (see :meth:`ShardedSimulation.run`)."""
        return self.sim.run(until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardedParallelFS shards={len(self.file_systems)}>"
