"""Disk-arm scheduling policies.

Crockett (§4) notes that when several processes share one drive, "seek
times are likely to cause some performance degradation as the drive
services requests from different processes" and calls for work on space
allocation to minimize it. Arm scheduling is the other classical lever on
the same problem, so the device controller accepts a pluggable policy.

Each policy answers one question: *given the pending requests and the
current head cylinder, which request is served next?*
"""

from __future__ import annotations

from typing import Protocol, Sequence

__all__ = ["SchedulingPolicy", "FCFS", "SSTF", "SCAN", "CSCAN", "make_policy"]


class _HasCylinder(Protocol):
    cylinder: int


class SchedulingPolicy:
    """Base class; subclasses override :meth:`select`.

    Stateful policies (e.g. :class:`~repro.qos.QoSDevicePolicy`, which
    tracks a virtual clock) additionally override the dispatch
    notifications :meth:`on_dispatch` / :meth:`on_clear`; for the
    classical arm schedulers they are no-ops.
    """

    name = "base"

    def select(self, pending: Sequence[_HasCylinder], head: int) -> int:
        """Index into ``pending`` of the request to serve next."""
        raise NotImplementedError

    def on_dispatch(self, request: object) -> None:
        """The controller took ``request`` (a selected entry) into service."""

    def on_clear(self) -> None:
        """The controller dropped its whole pending queue (device failure)."""


class FCFS(SchedulingPolicy):
    """First come, first served (arrival order)."""

    name = "fcfs"

    def select(self, pending: Sequence[_HasCylinder], head: int) -> int:
        return 0


class SSTF(SchedulingPolicy):
    """Shortest seek time first (greedy nearest cylinder)."""

    name = "sstf"

    def select(self, pending: Sequence[_HasCylinder], head: int) -> int:
        best, best_dist = 0, abs(pending[0].cylinder - head)
        for i in range(1, len(pending)):
            d = abs(pending[i].cylinder - head)
            if d < best_dist:
                best, best_dist = i, d
        return best


class SCAN(SchedulingPolicy):
    """Elevator: sweep up, then down, serving requests along the way."""

    name = "scan"

    def __init__(self) -> None:
        self._direction = 1  # +1 sweeping toward higher cylinders

    def select(self, pending: Sequence[_HasCylinder], head: int) -> int:
        ahead = [
            (abs(r.cylinder - head), i)
            for i, r in enumerate(pending)
            if (r.cylinder - head) * self._direction >= 0
        ]
        if not ahead:
            self._direction = -self._direction
            ahead = [(abs(r.cylinder - head), i) for i, r in enumerate(pending)]
        return min(ahead)[1]


class CSCAN(SchedulingPolicy):
    """Circular SCAN: sweep up only; jump back to the lowest request."""

    name = "cscan"

    def select(self, pending: Sequence[_HasCylinder], head: int) -> int:
        ahead = [
            (r.cylinder - head, i)
            for i, r in enumerate(pending)
            if r.cylinder >= head
        ]
        if ahead:
            return min(ahead)[1]
        # wrap around to the lowest cylinder
        return min((r.cylinder, i) for i, r in enumerate(pending))[1]


_POLICIES = {cls.name: cls for cls in (FCFS, SSTF, SCAN, CSCAN)}


def make_policy(name: str) -> SchedulingPolicy:
    """Construct a policy by name ('fcfs', 'sstf', 'scan', 'cscan')."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
