"""Failure injection for storage devices.

Device lifetimes are exponential with mean MTBF (the memoryless model under
which §5's arithmetic — system MTBF = device MTBF / N — is exact). The
injector schedules each device's failure as a simulated event so that
experiments can observe what breaks mid-run, and the Monte Carlo half of
experiment E8 can be driven by the same machinery that the analytic half
(`repro.reliability.analytic`) predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.engine import Environment
from ..sim.rng import RngStreams
from .controller import DeviceController

__all__ = ["FailureInjector", "FailureRecord", "TransientFaultInjector"]

SECONDS_PER_HOUR = 3600.0


@dataclass
class FailureRecord:
    """One observed device fault.

    ``kind`` distinguishes permanent deaths (the exponential-MTBF model of
    §5) from transient episodes: ``"transient"`` for intermittent request
    errors, ``"limp"`` for a duration-bounded slow-drive episode.
    """

    device: str
    time: float  # simulated seconds
    kind: str = "permanent"


@dataclass
class FailureInjector:
    """Schedules exponential failures for a set of controllers."""

    env: Environment
    rng: RngStreams
    time_scale: float = field(default=SECONDS_PER_HOUR)
    failures: list[FailureRecord] = field(default_factory=list)

    def arm(self, device: DeviceController, mtbf_hours: float | None = None) -> float:
        """Draw a lifetime for ``device`` and schedule its failure.

        Returns the scheduled failure time (simulated seconds). The MTBF
        defaults to the device's own disk timing parameter.
        """
        hours = mtbf_hours if mtbf_hours is not None else device.disk.timing.mtbf_hours
        if hours <= 0:
            raise ValueError("MTBF must be positive")
        lifetime = self.rng.exponential(f"fail.{device.name}", hours) * self.time_scale
        self.env.process(self._kill_later(device, lifetime), name=f"fail.{device.name}")
        return self.env.now + lifetime

    def arm_all(self, devices: list[DeviceController]) -> list[float]:
        """Arm every device; returns the scheduled failure times."""
        return [self.arm(d) for d in devices]

    def kill_at(self, device: DeviceController, when: float) -> None:
        """Deterministically fail ``device`` at absolute time ``when``."""
        if when < self.env.now:
            raise ValueError("cannot schedule a failure in the past")
        self.env.process(
            self._kill_later(device, when - self.env.now),
            name=f"fail.{device.name}",
        )

    def _kill_later(self, device: DeviceController, delay: float):
        yield self.env.timeout(delay)
        if not device.failed:
            device.fail()
            self.failures.append(FailureRecord(device.name, self.env.now))

    @property
    def first_failure_time(self) -> float | None:
        """Earliest observed failure (simulated seconds), if any."""
        if not self.failures:
            return None
        return min(f.time for f in self.failures)


@dataclass
class TransientFaultInjector:
    """Injects *recoverable* faults: intermittent errors and limping drives.

    Permanent death (:class:`FailureInjector`) is only half of the §5
    failure model; real drives also glitch — a request fails but the
    next one succeeds — and degrade, serving traffic at a fraction of
    rated speed. Both modes leave the device contents untouched, so a
    bounded-retry policy (``repro.resilience.RetryPolicy``) recovers
    without any reconstruction. Shares :class:`FailureRecord` bookkeeping
    with the permanent injector (``kind="transient"`` / ``kind="limp"``).
    """

    env: Environment
    rng: RngStreams
    failures: list[FailureRecord] = field(default_factory=list)

    def inject_errors(
        self, device: DeviceController, count: int = 1, at: float | None = None
    ) -> None:
        """Make the next ``count`` served requests fail transiently.

        With ``at`` the budget is granted at that absolute simulated time;
        otherwise immediately.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if at is None:
            self._grant(device, count)
        else:
            if at < self.env.now:
                raise ValueError("cannot schedule a fault in the past")
            self.env.process(
                self._grant_later(device, count, at - self.env.now),
                name=f"transient.{device.name}",
            )

    def limp(
        self,
        device: DeviceController,
        factor: float,
        duration: float,
        at: float | None = None,
    ) -> None:
        """Slow ``device`` by ``factor``x for ``duration`` simulated seconds."""
        if factor <= 1.0:
            raise ValueError("limp factor must exceed 1.0")
        if duration <= 0:
            raise ValueError("limp duration must be positive")
        if at is None:
            self._start_limp(device, factor, duration)
        else:
            if at < self.env.now:
                raise ValueError("cannot schedule a fault in the past")
            self.env.process(
                self._limp_later(device, factor, duration, at - self.env.now),
                name=f"limp.{device.name}",
            )

    def arm_intermittent(
        self,
        device: DeviceController,
        mean_interval: float,
        horizon: float,
        burst: int = 1,
    ) -> None:
        """Poisson stream of transient-error bursts until ``horizon``.

        Inter-arrival times are exponential with ``mean_interval`` seconds
        (drawn from the ``glitch.<device>`` substream for determinism).
        """
        if mean_interval <= 0 or horizon <= self.env.now:
            raise ValueError("need positive mean_interval and a future horizon")
        self.env.process(
            self._poisson_glitches(device, mean_interval, horizon, burst),
            name=f"glitch.{device.name}",
        )

    # -- internals --------------------------------------------------------

    def _grant(self, device: DeviceController, count: int) -> None:
        device.transient_error_budget += count
        self.failures.append(
            FailureRecord(device.name, self.env.now, kind="transient")
        )

    def _grant_later(self, device: DeviceController, count: int, delay: float):
        yield self.env.timeout(delay)
        if not device.failed:
            self._grant(device, count)

    def _start_limp(
        self, device: DeviceController, factor: float, duration: float
    ) -> None:
        device.slow_factor = factor
        device.slow_until = self.env.now + duration
        self.failures.append(FailureRecord(device.name, self.env.now, kind="limp"))

    def _limp_later(
        self, device: DeviceController, factor: float, duration: float, delay: float
    ):
        yield self.env.timeout(delay)
        if not device.failed:
            self._start_limp(device, factor, duration)

    def _poisson_glitches(
        self,
        device: DeviceController,
        mean_interval: float,
        horizon: float,
        burst: int,
    ):
        stream = f"glitch.{device.name}"
        while True:
            gap = self.rng.exponential(stream, mean_interval)
            if self.env.now + gap >= horizon:
                return
            yield self.env.timeout(gap)
            if device.failed:
                return
            self._grant(device, burst)
