"""Failure injection for storage devices.

Device lifetimes are exponential with mean MTBF (the memoryless model under
which §5's arithmetic — system MTBF = device MTBF / N — is exact). The
injector schedules each device's failure as a simulated event so that
experiments can observe what breaks mid-run, and the Monte Carlo half of
experiment E8 can be driven by the same machinery that the analytic half
(`repro.reliability.analytic`) predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.engine import Environment
from ..sim.rng import RngStreams
from .controller import DeviceController

__all__ = ["FailureInjector", "FailureRecord"]

SECONDS_PER_HOUR = 3600.0


@dataclass
class FailureRecord:
    """One observed device failure."""

    device: str
    time: float  # simulated seconds


@dataclass
class FailureInjector:
    """Schedules exponential failures for a set of controllers."""

    env: Environment
    rng: RngStreams
    time_scale: float = field(default=SECONDS_PER_HOUR)
    failures: list[FailureRecord] = field(default_factory=list)

    def arm(self, device: DeviceController, mtbf_hours: float | None = None) -> float:
        """Draw a lifetime for ``device`` and schedule its failure.

        Returns the scheduled failure time (simulated seconds). The MTBF
        defaults to the device's own disk timing parameter.
        """
        hours = mtbf_hours if mtbf_hours is not None else device.disk.timing.mtbf_hours
        if hours <= 0:
            raise ValueError("MTBF must be positive")
        lifetime = self.rng.exponential(f"fail.{device.name}", hours) * self.time_scale
        self.env.process(self._kill_later(device, lifetime), name=f"fail.{device.name}")
        return self.env.now + lifetime

    def arm_all(self, devices: list[DeviceController]) -> list[float]:
        """Arm every device; returns the scheduled failure times."""
        return [self.arm(d) for d in devices]

    def kill_at(self, device: DeviceController, when: float) -> None:
        """Deterministically fail ``device`` at absolute time ``when``."""
        if when < self.env.now:
            raise ValueError("cannot schedule a failure in the past")
        self.env.process(
            self._kill_later(device, when - self.env.now),
            name=f"fail.{device.name}",
        )

    def _kill_later(self, device: DeviceController, delay: float):
        yield self.env.timeout(delay)
        if not device.failed:
            device.fail()
            self.failures.append(FailureRecord(device.name, self.env.now))

    @property
    def first_failure_time(self) -> float | None:
        """Earliest observed failure (simulated seconds), if any."""
        if not self.failures:
            return None
        return min(f.time for f in self.failures)
