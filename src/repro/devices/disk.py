"""Mechanical disk model.

Crockett's implementation strategies (§4) are all stated in terms of the
classical cost anatomy of a direct-access storage device: *seek* (move the
arm), *rotational latency* (wait for the sector), and *transfer* (move the
bytes). The reliability discussion (§5) additionally assumes a device MTBF
("30,000 hours ... currently achieved by commercially available Winchester
disks"). This module models exactly those knobs and nothing more.

Geometry is simplified to cylinders of equal capacity; a device address is
a *device block* index, and blocks map linearly onto cylinders. Service
time for a request is::

    seek(|current_cyl - target_cyl|) + rotational_latency + nbytes / rate

Seek time follows the standard affine-in-sqrt model used in disk
simulators: ``seek(d) = 0`` for d = 0 else ``seek_min + seek_factor *
sqrt(d)``, calibrated so that seek(max_distance) = full-stroke time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["DiskGeometry", "DiskTiming", "DiskModel", "WREN_1989", "FAST_1989", "RAM_DEVICE"]


@dataclass(frozen=True)
class DiskGeometry:
    """Capacity layout of a disk."""

    block_size: int = 4096          # bytes per device block
    blocks_per_cylinder: int = 64   # device blocks in one cylinder
    cylinders: int = 1024           # number of cylinders

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.blocks_per_cylinder <= 0 or self.cylinders <= 0:
            raise ValueError("geometry fields must be positive")

    @property
    def capacity_blocks(self) -> int:
        return self.blocks_per_cylinder * self.cylinders

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * self.block_size

    def cylinder_of(self, block: int) -> int:
        """Cylinder holding device block ``block``."""
        if not 0 <= block < self.capacity_blocks:
            raise ValueError(
                f"block {block} outside device (capacity {self.capacity_blocks})"
            )
        return block // self.blocks_per_cylinder


@dataclass(frozen=True)
class DiskTiming:
    """Timing parameters, in seconds and bytes/second."""

    seek_min: float = 0.004           # single-track seek
    seek_full: float = 0.050          # full-stroke seek
    rotation_period: float = 1 / 60.0  # 3600 RPM
    transfer_rate: float = 1.0e6      # sustained bytes/second
    mtbf_hours: float = 30_000.0      # per §5 of the paper

    def __post_init__(self) -> None:
        if self.transfer_rate <= 0:
            raise ValueError("transfer_rate must be positive")
        if self.seek_min < 0 or self.seek_full < self.seek_min:
            raise ValueError("require 0 <= seek_min <= seek_full")
        if self.rotation_period < 0:
            raise ValueError("rotation_period must be >= 0")
        if self.mtbf_hours <= 0:
            raise ValueError("mtbf_hours must be positive")


#: A circa-1989 5.25" Winchester drive (CDC Wren class): ~180 MB,
#: 16 ms average seek, 3600 RPM, ~1 MB/s media rate, 30,000 h MTBF.
WREN_1989 = DiskTiming(
    seek_min=0.004,
    seek_full=0.045,
    rotation_period=1 / 60.0,
    transfer_rate=1.0e6,
    mtbf_hours=30_000.0,
)

#: A high-end 1989 drive (parallel-head / striped-unit class).
FAST_1989 = DiskTiming(
    seek_min=0.002,
    seek_full=0.030,
    rotation_period=1 / 90.0,
    transfer_rate=3.0e6,
    mtbf_hours=30_000.0,
)

#: An idealized zero-latency device (isolates software overheads).
RAM_DEVICE = DiskTiming(
    seek_min=0.0,
    seek_full=0.0,
    rotation_period=0.0,
    transfer_rate=100.0e6,
    mtbf_hours=1.0e9,
)


@dataclass
class DiskModel:
    """Stateful timing model of one drive (tracks head position).

    The model is deterministic by default: rotational latency is the
    expected half rotation. Pass a numpy Generator as ``rng`` to sample
    rotational latency uniformly in [0, rotation_period) instead.
    """

    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    timing: DiskTiming = field(default_factory=lambda: WREN_1989)
    rng: object | None = None  # numpy Generator or None

    def __post_init__(self) -> None:
        self._head_cylinder = 0
        self._seek_factor = self._calibrate_seek_factor()
        #: cumulative counters, exposed for experiment reports
        self.total_seeks = 0
        self.total_seek_distance = 0
        self.total_bytes = 0
        self.total_requests = 0

    def _calibrate_seek_factor(self) -> float:
        max_dist = max(self.geometry.cylinders - 1, 1)
        return (self.timing.seek_full - self.timing.seek_min) / math.sqrt(max_dist)

    @property
    def head_cylinder(self) -> int:
        return self._head_cylinder

    def seek_time(self, distance: int) -> float:
        """Arm movement time for a seek of ``distance`` cylinders."""
        if distance < 0:
            raise ValueError("seek distance must be >= 0")
        if distance == 0:
            return 0.0
        return self.timing.seek_min + self._seek_factor * math.sqrt(distance)

    def rotational_latency(self) -> float:
        """Rotational delay: expected half rotation, or sampled if rng set."""
        if self.rng is not None:
            return float(self.rng.uniform(0.0, self.timing.rotation_period))
        return self.timing.rotation_period / 2.0

    def transfer_time(self, nbytes: int) -> float:
        """Media transfer time for ``nbytes`` at the sustained rate."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / self.timing.transfer_rate

    def service(self, block: int, nbytes: int) -> float:
        """Serve one request at device ``block`` for ``nbytes``; move head.

        Returns the total service time (seek + rotation + transfer).
        Sequential requests on the same cylinder pay no seek, which is what
        makes access-pattern locality matter in every experiment.
        """
        target = self.geometry.cylinder_of(block)
        distance = abs(target - self._head_cylinder)
        t = self.transfer_time(nbytes)
        if distance > 0:
            t += self.seek_time(distance) + self.rotational_latency()
            self.total_seeks += 1
            self.total_seek_distance += distance
        # Same-cylinder access: assume read-ahead track buffer absorbs
        # rotational delay for sequential access (common by 1989).
        self._head_cylinder = target
        self.total_bytes += nbytes
        self.total_requests += 1
        return t

    def reset_position(self, cylinder: int = 0) -> None:
        """Park the head (used between experiment phases)."""
        if not 0 <= cylinder < self.geometry.cylinders:
            raise ValueError("cylinder out of range")
        self._head_cylinder = cylinder
