"""Storage device models: disks, arm schedulers, controllers, shadows, faults."""

from .controller import (
    DeviceController,
    DeviceFailedError,
    IORequest,
    ServiceInterval,
    TransientIOError,
)
from .disk import (
    FAST_1989,
    RAM_DEVICE,
    WREN_1989,
    DiskGeometry,
    DiskModel,
    DiskTiming,
)
from .faults import FailureInjector, FailureRecord, TransientFaultInjector
from .scheduling import CSCAN, FCFS, SCAN, SSTF, SchedulingPolicy, make_policy
from .shadow import ShadowPair

__all__ = [
    "DeviceController",
    "DeviceFailedError",
    "TransientIOError",
    "IORequest",
    "ServiceInterval",
    "DiskGeometry",
    "DiskModel",
    "DiskTiming",
    "WREN_1989",
    "FAST_1989",
    "RAM_DEVICE",
    "FailureInjector",
    "FailureRecord",
    "TransientFaultInjector",
    "SchedulingPolicy",
    "FCFS",
    "SSTF",
    "SCAN",
    "CSCAN",
    "make_policy",
    "ShadowPair",
]
