"""Storage device models: disks, arm schedulers, controllers, shadows, faults."""

from .controller import (
    DeviceController,
    DeviceFailedError,
    IORequest,
    ServiceInterval,
)
from .disk import (
    FAST_1989,
    RAM_DEVICE,
    WREN_1989,
    DiskGeometry,
    DiskModel,
    DiskTiming,
)
from .faults import FailureInjector, FailureRecord
from .scheduling import CSCAN, FCFS, SCAN, SSTF, SchedulingPolicy, make_policy
from .shadow import ShadowPair

__all__ = [
    "DeviceController",
    "DeviceFailedError",
    "IORequest",
    "ServiceInterval",
    "DiskGeometry",
    "DiskModel",
    "DiskTiming",
    "WREN_1989",
    "FAST_1989",
    "RAM_DEVICE",
    "FailureInjector",
    "FailureRecord",
    "SchedulingPolicy",
    "FCFS",
    "SSTF",
    "SCAN",
    "CSCAN",
    "make_policy",
    "ShadowPair",
]
