"""Disk shadowing (mirroring).

§5 of the paper: "A technique sometimes used ... is to replicate every disk,
and perform exactly the same I/O operations on each disk and its 'shadow'.
This effectively provides up-to-date backups, so that data can be recovered
quickly when a drive fails. The drawback is that this approach is very
expensive in terms of hardware."

:class:`ShadowPair` wraps a primary and a shadow controller behind the
controller read/write interface: writes go to both and complete when both
complete; reads are served by the surviving/less-loaded member. Experiment
E9 uses it to demonstrate the cost (2x devices) versus coverage (any single
failure, any organization) trade-off.

Degraded-mode semantics (the online-resilience layer builds on these):

* a **read** that loses its member mid-request fails over to the other
  member inside the same request (``failover_reads`` counts these) — the
  client sees a completed read, not an error;
* a **write** completes as long as *at least one* member applied it; a
  member dying between the two mirrored writes degrades the pair instead
  of failing the client (``degraded_writes``);
* while degraded, the byte ranges written only to the survivor are kept
  in a **dirty log** so a hot-spare rebuild can catch up after its bulk
  copy, and ``writes_in_progress``/:meth:`quiesce_event` let the rebuild
  wait out in-flight writes before its final verify-and-swap;
* :meth:`replace_failed` swaps a rebuilt spare in for the dead member.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..sim.engine import Environment, Event
from .controller import DeviceController, DeviceFailedError

__all__ = ["ShadowPair"]


class ShadowPair:
    """Two mirrored device controllers presented as one device."""

    def __init__(self, env: Environment, primary: DeviceController, shadow: DeviceController):
        if primary.capacity_bytes != shadow.capacity_bytes:
            raise ValueError("shadow pair members must have equal capacity")
        self.env = env
        self.primary = primary
        self.shadow = shadow
        self.name = f"{primary.name}+{shadow.name}"
        #: reads that lost their member mid-request and were re-served
        self.failover_reads = 0
        #: writes applied by fewer members than the pair has
        self.degraded_writes = 0
        #: invoked once when the pair first observes itself degraded
        #: (the resilience layer hooks auto-rebuild here)
        self.on_degraded: Callable[[], None] | None = None
        self._degraded_seen = False
        #: byte ranges written while degraded (survivor-only data)
        self._dirty: list[tuple[int, int]] = []
        self._writes_in_progress = 0
        self._quiet: Event | None = None

    # -- controller-compatible surface ------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.primary.capacity_bytes

    @property
    def failed(self) -> bool:
        """The pair fails only when *both* members fail."""
        return self.primary.failed and self.shadow.failed

    @property
    def degraded(self) -> bool:
        """Exactly one member is down (still serving, but unmirrored)."""
        return self.primary.failed != self.shadow.failed

    @property
    def queue_length(self) -> int:
        return self.primary.queue_length + self.shadow.queue_length

    def read(self, offset: int, nbytes: int) -> Event:
        """Read from a surviving member, failing over mid-request if it dies."""
        if self.failed:
            ev = Event(self.env)
            ev.fail(DeviceFailedError(self.name))
            return ev
        return self.env.process(self._do_read(offset, nbytes), name="shadow.read")

    def _do_read(self, offset: int, nbytes: int):
        self._check_degraded()
        # shorter queue first when both live; the other member is the
        # in-request fallback if the first dies under us
        members = sorted(
            (d for d in (self.primary, self.shadow) if not d.failed),
            key=lambda d: d.queue_length,
        )
        last_exc: DeviceFailedError | None = None
        for attempt, member in enumerate(members):
            try:
                data = yield member.read(offset, nbytes)
            except DeviceFailedError as exc:
                last_exc = exc
                continue
            if attempt:
                self.failover_reads += 1
                self._check_degraded()
            return data
        self._check_degraded()
        raise last_exc if last_exc is not None else DeviceFailedError(self.name)

    def write(self, offset: int, data: bytes | np.ndarray) -> Event:
        """Write to every surviving member; completes when >= 1 applied."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        if self.failed:
            ev = Event(self.env)
            ev.fail(DeviceFailedError(self.name))
            return ev
        return self.env.process(self._do_write(offset, arr), name="shadow.write")

    def _do_write(self, offset: int, arr: np.ndarray):
        self._writes_in_progress += 1
        try:
            self._check_degraded()
            members = [d for d in (self.primary, self.shadow) if not d.failed]
            if not members:
                raise DeviceFailedError(self.name)
            if len(members) == 1:
                # degraded at issue: the range is survivor-only data
                self.degraded_writes += 1
                self._dirty.append((offset, len(arr)))
            guards = [
                self.env.process(self._guard(d.write(offset, arr))) for d in members
            ]
            yield self.env.all_of(guards)
            failures = [g.value[1] for g in guards if not g.value[0]]
            if len(failures) == len(guards):
                raise failures[0]
            if failures:
                # a member died between the two mirrored writes: the pair
                # degrades, the client's write still completed
                self.degraded_writes += 1
                self._dirty.append((offset, len(arr)))
                self._check_degraded()
            return len(arr)
        finally:
            self._writes_in_progress -= 1
            if self._writes_in_progress == 0 and self._quiet is not None:
                if not self._quiet.triggered:
                    self._quiet.succeed()
                self._quiet = None

    def _guard(self, ev: Event):
        try:
            value = yield ev
            return True, value
        except DeviceFailedError as exc:
            return False, exc

    def peek(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-time inspection via a surviving member."""
        member = self._read_member()
        if member is None:
            raise DeviceFailedError(self.name)
        return member.peek(offset, nbytes)

    def poke(self, offset: int, data: bytes | np.ndarray) -> None:
        """Zero-time mutation of every surviving member (keeps mirrors equal)."""
        wrote = False
        for d in (self.primary, self.shadow):
            if not d.failed:
                d.poke(offset, data)
                wrote = True
        if wrote and self.degraded:
            n = len(data) if isinstance(data, (bytes, bytearray)) else len(np.asarray(data))
            self._dirty.append((offset, n))
            self._check_degraded()

    # -- degraded-state bookkeeping ----------------------------------------

    @property
    def writes_in_progress(self) -> int:
        """Writes currently inside the pair (issued, not yet completed)."""
        return self._writes_in_progress

    def quiesce_event(self) -> Event:
        """Event that triggers when no write is in progress.

        Already-triggered if the pair is quiet now. The rebuilder waits on
        this before its final catch-up check, so a write racing the bulk
        copy cannot slip between the dirty-log scan and the member swap.
        """
        ev = Event(self.env)
        if self._writes_in_progress == 0:
            ev.succeed()
            return ev
        if self._quiet is None:
            self._quiet = ev
            return ev
        # share one quiet event between waiters
        return self._quiet

    def dirty_ranges(self) -> list[tuple[int, int]]:
        """Snapshot of ``(offset, nbytes)`` ranges written while degraded.

        Append-only until :meth:`replace_failed`; rebuild catch-up keeps a
        consumed-prefix index into this list.
        """
        return list(self._dirty)

    def _check_degraded(self) -> None:
        if self.degraded and not self._degraded_seen:
            self._degraded_seen = True
            if self.on_degraded is not None:
                self.on_degraded()

    # -- recovery ----------------------------------------------------------

    def surviving(self) -> DeviceController | None:
        """The member to recover from after a single failure."""
        return self._read_member()

    def replace_failed(self, spare: DeviceController) -> DeviceController:
        """Swap ``spare`` in for the failed member; returns the dead one.

        The caller (the hot-spare rebuilder) is responsible for having
        copied the survivor's contents onto the spare first. Clears the
        dirty log and re-arms ``on_degraded`` for a future failure.
        """
        if spare.capacity_bytes != self.capacity_bytes:
            raise ValueError("spare capacity must match the pair")
        if spare.failed:
            raise ValueError("cannot swap in a failed spare")
        if not self.degraded:
            raise RuntimeError(f"pair {self.name} has no single failed member")
        if self.primary.failed:
            dead, self.primary = self.primary, spare
        else:
            dead, self.shadow = self.shadow, spare
        self.name = f"{self.primary.name}+{self.shadow.name}"
        self._dirty.clear()
        self._degraded_seen = False
        return dead

    def resilver(self) -> None:
        """Repair the failed member by copying the survivor's contents.

        Zero-time convenience for tests; :meth:`resilver_timed` pays the
        actual copy cost.
        """
        survivor = self._read_member()
        if survivor is None:
            raise DeviceFailedError(self.name)
        for member in (self.primary, self.shadow):
            if member.failed:
                member.repair(contents=survivor.snapshot())
        self._dirty.clear()
        self._degraded_seen = False

    def resilver_timed(self, chunk_bytes: int = 1 << 20):
        """Generator: rebuild the failed member at real device speed.

        Streams the survivor's contents across in ``chunk_bytes`` pieces
        (read survivor, write replacement, pipelined chunk by chunk).
        This is the §5 claim — "data can be recovered quickly when a
        drive fails" — with its actual price tag: one full-device copy.
        Returns the number of bytes copied.
        """
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        survivor = self._read_member()
        if survivor is None:
            raise DeviceFailedError(self.name)
        targets = [m for m in (self.primary, self.shadow) if m.failed]
        if not targets:
            return 0
        (target,) = targets
        target.repair()
        cap = survivor.capacity_bytes
        # Double-buffered copy: survivor and replacement are different
        # drives, so the read of chunk k+1 overlaps the write of chunk k.
        copied = 0
        pending_write = None
        read_pos = 0
        while copied < cap:
            if read_pos < cap:
                take = min(chunk_bytes, cap - read_pos)
                data = yield survivor.read(read_pos, take)
                if pending_write is not None:
                    yield pending_write
                    copied += pending_len
                pending_write = target.write(read_pos, data)
                pending_len = take
                read_pos += take
            else:
                yield pending_write
                copied += pending_len
                pending_write = None
        self._dirty.clear()
        self._degraded_seen = False
        return copied

    def _read_member(self) -> DeviceController | None:
        alive = [d for d in (self.primary, self.shadow) if not d.failed]
        if not alive:
            return None
        return min(alive, key=lambda d: d.queue_length)
