"""Disk shadowing (mirroring).

§5 of the paper: "A technique sometimes used ... is to replicate every disk,
and perform exactly the same I/O operations on each disk and its 'shadow'.
This effectively provides up-to-date backups, so that data can be recovered
quickly when a drive fails. The drawback is that this approach is very
expensive in terms of hardware."

:class:`ShadowPair` wraps a primary and a shadow controller behind the
controller read/write interface: writes go to both and complete when both
complete; reads are served by the surviving/less-loaded member. Experiment
E9 uses it to demonstrate the cost (2x devices) versus coverage (any single
failure, any organization) trade-off.
"""

from __future__ import annotations

import numpy as np

from ..sim.engine import AllOf, Environment, Event
from .controller import DeviceController, DeviceFailedError

__all__ = ["ShadowPair"]


class ShadowPair:
    """Two mirrored device controllers presented as one device."""

    def __init__(self, env: Environment, primary: DeviceController, shadow: DeviceController):
        if primary.capacity_bytes != shadow.capacity_bytes:
            raise ValueError("shadow pair members must have equal capacity")
        self.env = env
        self.primary = primary
        self.shadow = shadow
        self.name = f"{primary.name}+{shadow.name}"

    # -- controller-compatible surface ------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.primary.capacity_bytes

    @property
    def failed(self) -> bool:
        """The pair fails only when *both* members fail."""
        return self.primary.failed and self.shadow.failed

    @property
    def queue_length(self) -> int:
        return self.primary.queue_length + self.shadow.queue_length

    def read(self, offset: int, nbytes: int) -> Event:
        """Read from a surviving member (shorter queue wins when both live)."""
        member = self._read_member()
        if member is None:
            ev = Event(self.env)
            ev.fail(DeviceFailedError(self.name))
            return ev
        return member.read(offset, nbytes)

    def write(self, offset: int, data: bytes | np.ndarray) -> Event:
        """Write to every surviving member; completes when all complete."""
        members = [d for d in (self.primary, self.shadow) if not d.failed]
        if not members:
            ev = Event(self.env)
            ev.fail(DeviceFailedError(self.name))
            return ev
        writes = [d.write(offset, data) for d in members]
        if len(writes) == 1:
            return writes[0]
        joined = AllOf(self.env, writes)
        # Collapse the AllOf dict value to the byte count, matching the
        # single-device write event contract.
        done = Event(self.env)

        def _finish(ev: Event) -> None:
            if done.triggered:
                return
            if ev.ok:
                done.succeed(len(np.frombuffer(data, dtype=np.uint8)) if isinstance(data, (bytes, bytearray)) else len(data))
            else:
                ev.defuse()
                done.fail(ev.value)

        joined.callbacks.append(_finish)
        return done

    def peek(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-time inspection via a surviving member."""
        member = self._read_member()
        if member is None:
            raise DeviceFailedError(self.name)
        return member.peek(offset, nbytes)

    def poke(self, offset: int, data: bytes | np.ndarray) -> None:
        """Zero-time mutation of every surviving member (keeps mirrors equal)."""
        for d in (self.primary, self.shadow):
            if not d.failed:
                d.poke(offset, data)

    # -- recovery ----------------------------------------------------------

    def surviving(self) -> DeviceController | None:
        """The member to recover from after a single failure."""
        return self._read_member()

    def resilver(self) -> None:
        """Repair the failed member by copying the survivor's contents.

        Zero-time convenience for tests; :meth:`resilver_timed` pays the
        actual copy cost.
        """
        survivor = self._read_member()
        if survivor is None:
            raise DeviceFailedError(self.name)
        for member in (self.primary, self.shadow):
            if member.failed:
                member.repair(contents=survivor.snapshot())

    def resilver_timed(self, chunk_bytes: int = 1 << 20):
        """Generator: rebuild the failed member at real device speed.

        Streams the survivor's contents across in ``chunk_bytes`` pieces
        (read survivor, write replacement, pipelined chunk by chunk).
        This is the §5 claim — "data can be recovered quickly when a
        drive fails" — with its actual price tag: one full-device copy.
        Returns the number of bytes copied.
        """
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        survivor = self._read_member()
        if survivor is None:
            raise DeviceFailedError(self.name)
        targets = [m for m in (self.primary, self.shadow) if m.failed]
        if not targets:
            return 0
        (target,) = targets
        target.repair()
        cap = survivor.capacity_bytes
        # Double-buffered copy: survivor and replacement are different
        # drives, so the read of chunk k+1 overlaps the write of chunk k.
        copied = 0
        pending_write = None
        read_pos = 0
        while copied < cap:
            if read_pos < cap:
                take = min(chunk_bytes, cap - read_pos)
                data = yield survivor.read(read_pos, take)
                if pending_write is not None:
                    yield pending_write
                    copied += pending_len
                pending_write = target.write(read_pos, data)
                pending_len = take
                read_pos += take
            else:
                yield pending_write
                copied += pending_len
                pending_write = None
        return copied

    def _read_member(self) -> DeviceController | None:
        alive = [d for d in (self.primary, self.shadow) if not d.failed]
        if not alive:
            return None
        return min(alive, key=lambda d: d.queue_length)
