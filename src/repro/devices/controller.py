"""Simulated device controller: queueing + arm scheduling + data storage.

A :class:`DeviceController` owns one :class:`~repro.devices.disk.DiskModel`
and serves byte-addressed read/write requests one at a time (one arm), in
the order chosen by its scheduling policy. It also owns the device's
*contents* (a byte array), so simulated runs move real data: integration
tests can verify both what the file system returned and how long it took.

Failure semantics (§5 of the paper): once :meth:`fail` is called the device
rejects all current and future requests with :class:`DeviceFailedError`
until :meth:`repair`. Recovery policy — restore from backup, rebuild from
parity, switch to shadow — lives above, in ``repro.fs.recovery``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Literal

import numpy as np

from ..sim.engine import Environment, Event
from ..sim.stats import PercentileTally, Tally, TimeWeighted, UtilizationTracker
from .disk import DiskModel
from .scheduling import FCFS, SchedulingPolicy

__all__ = [
    "DeviceController",
    "DeviceFailedError",
    "TransientIOError",
    "IORequest",
    "ServiceInterval",
]


class DeviceFailedError(Exception):
    """The target device has failed (remains failed until repaired)."""

    def __init__(self, device: str):
        super().__init__(f"device {device!r} has failed")
        self.device = device


class TransientIOError(Exception):
    """One request failed, but the device itself survives.

    The intermittent-error half of the §5 failure model: a request is
    rejected (bus glitch, recoverable read error) without applying any
    data, so a retry of the same request is safe and applies exactly
    once. Injected via :class:`~repro.devices.faults.TransientFaultInjector`.
    """

    def __init__(self, device: str):
        super().__init__(f"transient I/O error on device {device!r}")
        self.device = device


@dataclass
class IORequest:
    """One queued transfer. ``cylinder`` is what arm schedulers look at.

    ``tenant`` is the QoS principal the request is billed to (captured
    from the submitting process's ambient context; ``None`` for untagged
    work) and ``deadline`` its absolute completion target; tenant-aware
    policies additionally stamp a ``qos_tag`` scheduling tag on it (see
    :mod:`repro.qos`).
    """

    kind: Literal["read", "write"]
    offset: int
    nbytes: int
    data: np.ndarray | None
    event: Event
    start_block: int
    cylinder: int
    submit_time: float
    tenant: Any = None
    deadline: float | None = None


@dataclass(frozen=True)
class ServiceInterval:
    """One served request: the arm was busy on it for [start, end)."""

    kind: str
    offset: int
    nbytes: int
    start: float
    end: float


class DeviceController:
    """One drive: request queue, arm scheduler, timing model, contents."""

    def __init__(
        self,
        env: Environment,
        disk: DiskModel,
        name: str = "disk",
        policy: SchedulingPolicy | None = None,
        per_request_overhead: float = 0.0005,
        store_data: bool = True,
        keep_service_log: bool = False,
    ):
        self.env = env
        self.disk = disk
        self.name = name
        self.policy = policy or FCFS()
        #: fixed controller/software overhead charged per request (the
        #: "buffering overheads" knob of §4 lives higher up; this is the
        #: channel + command cost)
        self.per_request_overhead = per_request_overhead
        self._store_data = store_data
        self._contents: np.ndarray | None = None
        self._pending: list[IORequest] = []
        self._wakeup: Event | None = None
        self._failed = False
        #: transient-fault state (set by TransientFaultInjector): the next
        #: ``transient_error_budget`` served requests fail with
        #: :class:`TransientIOError` without touching the contents, and
        #: while ``now < slow_until`` service times are multiplied by
        #: ``slow_factor`` (a "limping" drive).
        self.transient_error_budget = 0
        self.slow_factor = 1.0
        self.slow_until = 0.0
        #: requests failed transiently / served while limping (stats)
        self.transient_errors = 0
        self.limped_requests = 0
        #: successful write applications (exactly-once accounting)
        self.writes_applied = 0
        #: per-request latency (submit -> complete), seconds
        self.latency = Tally()
        #: per-request queue wait (submit -> dispatch), with percentiles
        self.wait_stat = PercentileTally()
        #: arm utilization over the run
        self.utilization = UtilizationTracker(env.now)
        #: optional per-request busy intervals (for Gantt rendering)
        self.service_log: list[ServiceInterval] | None = (
            [] if keep_service_log else None
        )
        #: time-weighted queue length (pending requests, excluding in service)
        self.queue_stat = TimeWeighted(env.now)
        env.process(self._serve(), name=f"{name}.serve")

    # -- public API -----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.disk.geometry.capacity_bytes

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    def read(self, offset: int, nbytes: int) -> Event:
        """Read ``nbytes`` at byte ``offset``; event value is a uint8 array."""
        return self._submit("read", offset, nbytes, None)

    def write(self, offset: int, data: bytes | np.ndarray) -> Event:
        """Write ``data`` at byte ``offset``; event value is bytes written."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        return self._submit("write", offset, len(arr), arr)

    def fail(self) -> None:
        """Hard-fail the device; pending and future requests error out."""
        self._failed = True
        for req in self._pending:
            if not req.event.triggered:
                req.event.defuse()
                req.event.fail(DeviceFailedError(self.name))
        self._pending.clear()
        self.policy.on_clear()

    def repair(self, contents: np.ndarray | None = None) -> None:
        """Bring the device back, optionally with restored ``contents``.

        Without ``contents`` the device comes back *empty* (zeroed) — a
        fresh replacement drive, which is exactly the situation §5's
        recovery discussion starts from.
        """
        self._failed = False
        if self._store_data:
            self._contents = None
            if contents is not None:
                arr = np.asarray(contents, dtype=np.uint8)
                if len(arr) > self.capacity_bytes:
                    raise ValueError("restored contents exceed device capacity")
                self._ensure_contents()
                self._contents[: len(arr)] = arr

    def snapshot(self) -> np.ndarray:
        """Copy of the device contents (used by backup/shadow machinery)."""
        self._ensure_contents()
        return self._contents.copy()

    def peek(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-time inspection of contents (for tests and recovery checks)."""
        self._check_range(offset, nbytes)
        self._ensure_contents()
        return self._contents[offset : offset + nbytes].copy()

    def poke(self, offset: int, data: bytes | np.ndarray) -> None:
        """Zero-time mutation of contents (fault-injection helper)."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        self._check_range(offset, len(arr))
        self._ensure_contents()
        self._contents[offset : offset + len(arr)] = arr

    # -- internals --------------------------------------------------------

    def _ensure_contents(self) -> None:
        if self._contents is None:
            self._contents = np.zeros(self.capacity_bytes, dtype=np.uint8)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.capacity_bytes:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside device "
                f"capacity {self.capacity_bytes}"
            )

    def _submit(self, kind: str, offset: int, nbytes: int, data) -> Event:
        ev = Event(self.env)
        if self._failed:
            ev.fail(DeviceFailedError(self.name))
            return ev
        self._check_range(offset, nbytes)
        geometry = self.disk.geometry
        start_block = min(offset // geometry.block_size, geometry.capacity_blocks - 1)
        tenant = getattr(self.env.active_process, "qos_tenant", None)
        rel_deadline = getattr(tenant, "deadline", None)
        req = IORequest(
            kind=kind,  # type: ignore[arg-type]
            offset=offset,
            nbytes=nbytes,
            data=data,
            event=ev,
            start_block=start_block,
            cylinder=geometry.cylinder_of(start_block),
            submit_time=self.env.now,
            tenant=tenant,
            deadline=(
                self.env.now + rel_deadline if rel_deadline is not None else None
            ),
        )
        self._pending.append(req)
        self.queue_stat.record(self.env.now, len(self._pending))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return ev

    def _serve(self):
        env = self.env
        while True:
            while not self._pending:
                self.utilization.idle(env.now)
                self._wakeup = Event(env)
                yield self._wakeup
                self._wakeup = None
            self.utilization.busy(env.now)
            idx = self.policy.select(self._pending, self.disk.head_cylinder)
            req = self._pending.pop(idx)
            self.policy.on_dispatch(req)
            self.queue_stat.record(env.now, len(self._pending))
            if req.event.triggered:  # failed while queued
                continue
            wait = env.now - req.submit_time
            self.wait_stat.observe(wait)
            if req.tenant is not None and hasattr(req.tenant, "note_queued"):
                req.tenant.note_queued(wait)
            dispatched = env.now
            if self.transient_error_budget > 0:
                # the request is rejected before any media transfer: the
                # contents are untouched, so a caller retry is exactly-once
                self.transient_error_budget -= 1
                self.transient_errors += 1
                yield env.sleep(self.per_request_overhead)
                if not req.event.triggered:
                    req.event.defuse()
                    req.event.fail(TransientIOError(self.name))
                continue
            service = self.disk.service(req.start_block, req.nbytes)
            if env.now < self.slow_until and self.slow_factor > 1.0:
                service *= self.slow_factor
                self.limped_requests += 1
            service_start = env.now
            yield env.sleep(self.per_request_overhead + service)
            if self.service_log is not None:
                self.service_log.append(
                    ServiceInterval(
                        req.kind, req.offset, req.nbytes, service_start, env.now
                    )
                )
            if req.event.triggered:  # device failed mid-service
                continue
            if self._failed:
                req.event.defuse()
                req.event.fail(DeviceFailedError(self.name))
                continue
            self.latency.observe(env.now - req.submit_time)
            if req.tenant is not None and hasattr(req.tenant, "note_service"):
                req.tenant.note_service(env.now - dispatched, req.nbytes)
                if req.deadline is not None and env.now > req.deadline:
                    req.tenant.note_deadline_miss()
            if req.kind == "read":
                if self._store_data:
                    self._ensure_contents()
                    value = self._contents[req.offset : req.offset + req.nbytes].copy()
                else:
                    value = np.zeros(req.nbytes, dtype=np.uint8)
                req.event.succeed(value)
            else:
                if self._store_data:
                    self._ensure_contents()
                    self._contents[req.offset : req.offset + req.nbytes] = req.data
                self.writes_applied += 1
                req.event.succeed(req.nbytes)
