"""Simulated device controller: queueing + arm scheduling + data storage.

A :class:`DeviceController` owns one :class:`~repro.devices.disk.DiskModel`
and serves byte-addressed read/write requests one at a time (one arm), in
the order chosen by its scheduling policy. It also owns the device's
*contents* (a byte array), so simulated runs move real data: integration
tests can verify both what the file system returned and how long it took.

Failure semantics (§5 of the paper): once :meth:`fail` is called the device
rejects all current and future requests with :class:`DeviceFailedError`
until :meth:`repair`. Recovery policy — restore from backup, rebuild from
parity, switch to shadow — lives above, in ``repro.fs.recovery``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Literal

import numpy as np

from ..sim.engine import Environment, Event
from ..sim.stats import PercentileTally, Tally, TimeWeighted, UtilizationTracker
from .disk import DiskModel
from .scheduling import FCFS, SchedulingPolicy

__all__ = [
    "DeviceController",
    "DeviceFailedError",
    "TransientIOError",
    "IORequest",
    "ServiceInterval",
]


class DeviceFailedError(Exception):
    """The target device has failed (remains failed until repaired)."""

    def __init__(self, device: str):
        super().__init__(f"device {device!r} has failed")
        self.device = device


class TransientIOError(Exception):
    """One request failed, but the device itself survives.

    The intermittent-error half of the §5 failure model: a request is
    rejected (bus glitch, recoverable read error) without applying any
    data, so a retry of the same request is safe and applies exactly
    once. Injected via :class:`~repro.devices.faults.TransientFaultInjector`.
    """

    def __init__(self, device: str):
        super().__init__(f"transient I/O error on device {device!r}")
        self.device = device


@dataclass(slots=True)
class IORequest:
    """One queued transfer. ``cylinder`` is what arm schedulers look at.

    ``tenant`` is the QoS principal the request is billed to (captured
    from the submitting process's ambient context; ``None`` for untagged
    work) and ``deadline`` its absolute completion target; tenant-aware
    policies additionally stamp the ``qos_tag`` scheduling tag (see
    :mod:`repro.qos`). Slotted: millions of these are allocated per
    sweep, so any new per-request annotation must be declared here.
    """

    kind: Literal["read", "write"]
    offset: int
    nbytes: int
    data: np.ndarray | None
    event: Event
    start_block: int
    cylinder: int
    submit_time: float
    tenant: Any = None
    deadline: float | None = None
    qos_tag: Any = None


@dataclass(frozen=True, slots=True)
class ServiceInterval:
    """One served request: the arm was busy on it for [start, end)."""

    kind: str
    offset: int
    nbytes: int
    start: float
    end: float


class DeviceController:
    """One drive: request queue, arm scheduler, timing model, contents."""

    def __init__(
        self,
        env: Environment,
        disk: DiskModel,
        name: str = "disk",
        policy: SchedulingPolicy | None = None,
        per_request_overhead: float = 0.0005,
        store_data: bool = True,
        keep_service_log: bool = False,
    ):
        self.env = env
        self.disk = disk
        self.name = name
        self.policy = policy or FCFS()
        #: fixed controller/software overhead charged per request (the
        #: "buffering overheads" knob of §4 lives higher up; this is the
        #: channel + command cost)
        self.per_request_overhead = per_request_overhead
        self._store_data = store_data
        self._contents: np.ndarray | None = None
        self._pending: list[IORequest] = []
        self._wakeup: Event | None = None
        self._failed = False
        #: transient-fault state (set by TransientFaultInjector): the next
        #: ``transient_error_budget`` served requests fail with
        #: :class:`TransientIOError` without touching the contents, and
        #: while ``now < slow_until`` service times are multiplied by
        #: ``slow_factor`` (a "limping" drive).
        self.transient_error_budget = 0
        self.slow_factor = 1.0
        self.slow_until = 0.0
        #: requests failed transiently / served while limping (stats)
        self.transient_errors = 0
        self.limped_requests = 0
        #: successful write applications (exactly-once accounting)
        self.writes_applied = 0
        #: per-request latency (submit -> complete), seconds
        self.latency = Tally()
        #: per-request queue wait (submit -> dispatch), with percentiles
        self.wait_stat = PercentileTally()
        #: arm utilization over the run
        self.utilization = UtilizationTracker(env.now)
        #: optional per-request busy intervals (for Gantt rendering)
        self.service_log: list[ServiceInterval] | None = (
            [] if keep_service_log else None
        )
        #: time-weighted queue length (pending requests, excluding in service)
        self.queue_stat = TimeWeighted(env.now)
        env.process(self._serve(), name=f"{name}.serve")

    # -- public API -----------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.disk.geometry.capacity_bytes

    @property
    def failed(self) -> bool:
        return self._failed

    @property
    def queue_length(self) -> int:
        return len(self._pending)

    def read(self, offset: int, nbytes: int) -> Event:
        """Read ``nbytes`` at byte ``offset``; event value is a uint8 array."""
        return self._submit("read", offset, nbytes, None)

    def write(self, offset: int, data: bytes | np.ndarray) -> Event:
        """Write ``data`` at byte ``offset``; event value is bytes written."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        return self._submit("write", offset, len(arr), arr)

    def fail(self) -> None:
        """Hard-fail the device; pending and future requests error out."""
        self._failed = True
        for req in self._pending:
            if not req.event.triggered:
                req.event.defuse()
                req.event.fail(DeviceFailedError(self.name))
        self._pending.clear()
        self.policy.on_clear()

    def repair(self, contents: np.ndarray | None = None) -> None:
        """Bring the device back, optionally with restored ``contents``.

        Without ``contents`` the device comes back *empty* (zeroed) — a
        fresh replacement drive, which is exactly the situation §5's
        recovery discussion starts from.
        """
        self._failed = False
        if self._store_data:
            self._contents = None
            if contents is not None:
                arr = np.asarray(contents, dtype=np.uint8)
                if len(arr) > self.capacity_bytes:
                    raise ValueError("restored contents exceed device capacity")
                self._ensure_contents()
                self._contents[: len(arr)] = arr

    def snapshot(self) -> np.ndarray:
        """Copy of the device contents (used by backup/shadow machinery)."""
        self._ensure_contents()
        return self._contents.copy()

    def peek(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-time inspection of contents (for tests and recovery checks)."""
        self._check_range(offset, nbytes)
        self._ensure_contents()
        return self._contents[offset : offset + nbytes].copy()

    def poke(self, offset: int, data: bytes | np.ndarray) -> None:
        """Zero-time mutation of contents (fault-injection helper)."""
        arr = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        self._check_range(offset, len(arr))
        self._ensure_contents()
        self._contents[offset : offset + len(arr)] = arr

    # -- internals --------------------------------------------------------

    def _ensure_contents(self) -> None:
        if self._contents is None:
            self._contents = np.zeros(self.capacity_bytes, dtype=np.uint8)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.capacity_bytes:
            raise ValueError(
                f"range [{offset}, {offset + nbytes}) outside device "
                f"capacity {self.capacity_bytes}"
            )

    def _submit(self, kind: str, offset: int, nbytes: int, data) -> Event:
        env = self.env
        ev = Event(env)
        if self._failed:
            ev.fail(DeviceFailedError(self.name))
            return ev
        self._check_range(offset, nbytes)
        geometry = self.disk.geometry
        start_block = min(offset // geometry.block_size, geometry.capacity_blocks - 1)
        tenant = getattr(env._active, "qos_tenant", None)
        rel_deadline = getattr(tenant, "deadline", None)
        now = env._now
        req = IORequest(
            kind=kind,  # type: ignore[arg-type]
            offset=offset,
            nbytes=nbytes,
            data=data,
            event=ev,
            start_block=start_block,
            cylinder=geometry.cylinder_of(start_block),
            submit_time=now,
            tenant=tenant,
            deadline=(now + rel_deadline if rel_deadline is not None else None),
        )
        pending = self._pending
        pending.append(req)
        self.queue_stat.record(now, len(pending))
        wakeup = self._wakeup
        if wakeup is not None and not wakeup.triggered:
            wakeup.succeed()
        return ev

    def _serve(self):
        # The per-request service loop, run once per device for the whole
        # simulation. ``env._now`` replaces the ``now`` property and the
        # stable collaborators are bound once — ``self.policy`` is NOT
        # (attach_qos swaps it in after construction).
        env = self.env
        pending = self._pending
        disk = self.disk
        utilization = self.utilization
        queue_stat = self.queue_stat
        wait_observe = self.wait_stat.observe
        latency_observe = self.latency.observe
        sleep = env.sleep
        while True:
            while not pending:
                utilization.idle(env._now)
                self._wakeup = Event(env)
                yield self._wakeup
                self._wakeup = None
            utilization.busy(env._now)
            policy = self.policy
            idx = policy.select(pending, disk.head_cylinder)
            req = pending.pop(idx)
            policy.on_dispatch(req)
            now = env._now
            queue_stat.record(now, len(pending))
            event = req.event
            if event.triggered:  # failed while queued
                continue
            wait = now - req.submit_time
            wait_observe(wait)
            tenant = req.tenant
            if tenant is not None and hasattr(tenant, "note_queued"):
                tenant.note_queued(wait)
            dispatched = now
            if self.transient_error_budget > 0:
                # the request is rejected before any media transfer: the
                # contents are untouched, so a caller retry is exactly-once
                self.transient_error_budget -= 1
                self.transient_errors += 1
                yield sleep(self.per_request_overhead)
                if not event.triggered:
                    event.defuse()
                    event.fail(TransientIOError(self.name))
                continue
            service = disk.service(req.start_block, req.nbytes)
            if now < self.slow_until and self.slow_factor > 1.0:
                service *= self.slow_factor
                self.limped_requests += 1
            yield sleep(self.per_request_overhead + service)
            now = env._now
            if self.service_log is not None:
                self.service_log.append(
                    ServiceInterval(
                        req.kind, req.offset, req.nbytes, dispatched, now
                    )
                )
            if event.triggered:  # device failed mid-service
                continue
            if self._failed:
                event.defuse()
                event.fail(DeviceFailedError(self.name))
                continue
            latency_observe(now - req.submit_time)
            if tenant is not None and hasattr(tenant, "note_service"):
                tenant.note_service(now - dispatched, req.nbytes)
                if req.deadline is not None and now > req.deadline:
                    tenant.note_deadline_miss()
            if req.kind == "read":
                if self._store_data:
                    contents = self._contents
                    if contents is None:
                        self._ensure_contents()
                        contents = self._contents
                    value = contents[req.offset : req.offset + req.nbytes].copy()
                else:
                    value = np.zeros(req.nbytes, dtype=np.uint8)
                event.succeed(value)
            else:
                if self._store_data:
                    contents = self._contents
                    if contents is None:
                        self._ensure_contents()
                        contents = self._contents
                    contents[req.offset : req.offset + req.nbytes] = req.data
                self.writes_applied += 1
                event.succeed(req.nbytes)
