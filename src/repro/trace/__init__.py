"""Tracing, reporting, and figure rendering."""

from .events import AccessEvent, NullTraceRecorder, TraceRecorder
from .gantt import render_device_gantt, render_gantt
from .figures import render_block_map, render_figure1_panel, render_timeline
from .report import (
    RunReport,
    conflict_report,
    device_report,
    device_table,
    invariant_report,
    ionode_report,
    qos_report,
    resilience_report,
    throughput_mb_s,
)

__all__ = [
    "AccessEvent",
    "TraceRecorder",
    "NullTraceRecorder",
    "render_device_gantt",
    "render_gantt",
    "render_block_map",
    "render_figure1_panel",
    "render_timeline",
    "RunReport",
    "conflict_report",
    "device_report",
    "device_table",
    "invariant_report",
    "ionode_report",
    "qos_report",
    "resilience_report",
    "throughput_mb_s",
]
