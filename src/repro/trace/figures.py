"""ASCII rendering of file access patterns — regenerates the paper's Figure 1.

Figure 1 of the paper shows, for each sequential organization, which of a
file's blocks each of three processes accesses. :func:`render_block_map`
reproduces that as a labelled strip of blocks, e.g. for IS with three
processes::

    +----+----+----+----+----+----+
    | P1 | P2 | P3 | P1 | P2 | P3 |
    +----+----+----+----+----+----+

and :func:`render_figure1` assembles the four panels (a)-(d) from actual
traces of the implementation, so the figure is *measured*, not drawn.
"""

from __future__ import annotations

__all__ = ["render_block_map", "render_timeline", "render_figure1_panel"]


def render_block_map(owners: list[int | None], width: int = 4) -> str:
    """A strip of blocks labelled by owning process (1-based, as the paper).

    ``owners[b]`` is the process that accessed block ``b`` (or None for an
    unaccessed block).
    """
    cells = [
        (f"P{o + 1}" if o is not None else "--").center(width) for o in owners
    ]
    sep = "+" + "+".join("-" * width for _ in cells) + "+"
    row = "|" + "|".join(cells) + "|"
    return f"{sep}\n{row}\n{sep}"


def render_timeline(order: list[tuple[int, int]], width: int = 4) -> str:
    """Blocks in the order they were accessed, labelled by process.

    ``order`` is ``[(block, process), ...]`` in completion order — used for
    the self-scheduled panel, where the *temporal* order is the semantics.
    """
    header = "access order: " + " ".join(
        f"b{b}:P{p + 1}" for b, p in order
    )
    return header


def render_figure1_panel(
    label: str,
    description: str,
    blocks_by_process: dict[int, list[int]],
    n_blocks: int,
    width: int = 4,
) -> str:
    """One panel of Figure 1 from a measured trace."""
    owners: list[int | None] = [None] * n_blocks
    for p, blist in blocks_by_process.items():
        for b in blist:
            owners[b] = p
    body = render_block_map(owners, width)
    return f"({label}) {description}\n{body}"
