"""ASCII Gantt charts of device activity.

Renders each device's service intervals on a shared time axis, which is
the most direct way to *see* the paper's parallelism claims: striped
transfers light all lanes at once (E1), a PS global-view read lights one
lane at a time (E6), and read-ahead overlaps the I/O lane with the
compute lane (E5).
"""

from __future__ import annotations

from ..devices.controller import DeviceController, ServiceInterval

__all__ = ["render_gantt", "render_device_gantt"]


def render_gantt(
    lanes: dict[str, list[tuple[float, float]]],
    t0: float | None = None,
    t1: float | None = None,
    width: int = 72,
    busy_char: str = "#",
    idle_char: str = ".",
) -> str:
    """Render busy intervals per lane on a shared axis.

    ``lanes`` maps a lane label to ``[(start, end), ...]`` busy spans.
    """
    spans = [s for intervals in lanes.values() for s in intervals]
    if not spans:
        return "(no activity)"
    lo = min(s[0] for s in spans) if t0 is None else t0
    hi = max(s[1] for s in spans) if t1 is None else t1
    if hi <= lo:
        hi = lo + 1e-12
    scale = width / (hi - lo)
    label_w = max(len(name) for name in lanes)
    lines = []
    for name, intervals in lanes.items():
        cells = [idle_char] * width
        for start, end in intervals:
            a = max(0, min(width - 1, int((start - lo) * scale)))
            b = max(a + 1, min(width, int(round((end - lo) * scale))))
            for i in range(a, b):
                cells[i] = busy_char
        lines.append(f"{name:<{label_w}s} |{''.join(cells)}|")
    axis = (
        f"{'':<{label_w}s} "
        f"{lo * 1e3:>8.1f} ms{'':{max(width - 22, 1)}}{hi * 1e3:>8.1f} ms"
    )
    return "\n".join(lines + [axis])


def render_device_gantt(
    devices: list[DeviceController],
    width: int = 72,
) -> str:
    """Gantt of device service logs (devices need ``keep_service_log=True``)."""
    lanes: dict[str, list[tuple[float, float]]] = {}
    for d in devices:
        if d.service_log is None:
            raise ValueError(
                f"device {d.name!r} was not created with keep_service_log=True"
            )
        lanes[d.name] = [(iv.start, iv.end) for iv in d.service_log]
    return render_gantt(lanes, width=width)
