"""I/O trace events and the recorder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

__all__ = ["AccessEvent", "TraceRecorder", "NullTraceRecorder"]


@dataclass(frozen=True)
class AccessEvent:
    """One record/block access by one process."""

    time: float
    process: int
    op: Literal["read", "write"]
    file: str
    block: int
    records: int
    nbytes: int


@dataclass
class TraceRecorder:
    """Accumulates :class:`AccessEvent` rows during a run."""

    #: False for a recorder that actually stores events; the fs layer
    #: skips per-block trace work entirely when the recorder ``is_noop``
    is_noop = False

    events: list[AccessEvent] = field(default_factory=list)

    def record(
        self,
        time: float,
        process: int,
        op: str,
        file: str,
        block: int,
        records: int,
        nbytes: int,
    ) -> None:
        """Append one access event."""
        self.events.append(
            AccessEvent(time, process, op, file, block, records, nbytes)  # type: ignore[arg-type]
        )

    def __len__(self) -> int:
        return len(self.events)

    def for_file(self, name: str) -> list[AccessEvent]:
        """Events touching the named file."""
        return [e for e in self.events if e.file == name]

    def blocks_by_process(self, name: str | None = None) -> dict[int, list[int]]:
        """``{process: [blocks in access order]}`` — the Figure 1 shape."""
        out: dict[int, list[int]] = {}
        for e in self.events:
            if name is not None and e.file != name:
                continue
            out.setdefault(e.process, []).append(e.block)
        return out

    def total_bytes(self, op: str | None = None) -> int:
        """Bytes moved, optionally filtered by op ("read"/"write")."""
        return sum(e.nbytes for e in self.events if op is None or e.op == op)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()


@dataclass
class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything — zero allocations per access.

    For benchmarks and CI, where nothing consumes the trace: it satisfies
    the :class:`TraceRecorder` interface, but ``record`` is a no-op and the
    fs layer's ``is_noop`` check short-circuits the per-block trace loops
    before they even compute block spans. Collecting tracing is the
    explicit opt-in (pass a real ``TraceRecorder``).
    """

    is_noop = True

    def record(
        self,
        time: float,
        process: int,
        op: str,
        file: str,
        block: int,
        records: int,
        nbytes: int,
    ) -> None:
        """Drop the event."""
