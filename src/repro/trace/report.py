"""Throughput, utilization, and sanitizer reporting for experiment runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..devices.controller import DeviceController
from ..sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover
    from ..sanitize.access import AccessConflictDetector
    from ..sanitize.engine_hooks import EngineSanitizer

__all__ = [
    "RunReport",
    "throughput_mb_s",
    "device_report",
    "conflict_report",
    "invariant_report",
]


def throughput_mb_s(nbytes: int, elapsed: float) -> float:
    """Megabytes per second (10^6), the unit 1989 drives are quoted in."""
    if elapsed <= 0:
        return float("inf") if nbytes else 0.0
    return nbytes / elapsed / 1e6


@dataclass
class RunReport:
    """Summary of one measured run."""

    label: str
    elapsed: float
    nbytes: int

    @property
    def throughput(self) -> float:
        return throughput_mb_s(self.nbytes, self.elapsed)

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.label:<40s} {self.elapsed * 1e3:>10.2f} ms "
            f"{self.throughput:>8.2f} MB/s"
        )


def conflict_report(detector: "AccessConflictDetector") -> list[str]:
    """Render an access-conflict detector's findings, one row per finding.

    A clean run renders a single "no conflicts" row so reports always show
    the sanitizer actually ran (``records`` counts the accesses indexed).
    """
    header = (
        f"access sanitizer: {len(detector.records)} accesses, "
        f"{detector.epoch + 1} epoch(s), {len(detector.findings)} finding(s)"
    )
    if not detector.findings:
        return [header, "  no conflicts detected"]
    return [header] + [f"  {f.row()}" for f in detector.findings]


def invariant_report(sanitizer: "EngineSanitizer") -> list[str]:
    """Render an engine sanitizer's violations, one row per violation."""
    header = (
        f"engine sanitizer: {sanitizer.checks} checks, "
        f"{len(sanitizer.violations)} violation(s)"
    )
    if not sanitizer.violations:
        return [header, "  no invariant violations"]
    return [header] + [f"  {v.row()}" for v in sanitizer.violations]


def device_report(env: Environment, devices: list[DeviceController]) -> list[str]:
    """Per-device utilization / seek / latency rows."""
    rows = []
    for d in devices:
        util = d.utilization.utilization(env.now)
        rows.append(
            f"{d.name:<10s} util={util:6.1%} "
            f"seeks={d.disk.total_seeks:>6d} "
            f"seek_cyls={d.disk.total_seek_distance:>8d} "
            f"reqs={d.disk.total_requests:>6d} "
            f"lat_mean={d.latency.mean * 1e3 if d.latency.count else 0:8.2f} ms"
        )
    return rows
