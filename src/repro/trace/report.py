"""Throughput, utilization, and sanitizer reporting for experiment runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..devices.controller import DeviceController
from ..sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover
    from ..ionode.routing import IONodeCluster
    from ..resilience.volume import ResilientVolume
    from ..sanitize.access import AccessConflictDetector
    from ..sanitize.engine_hooks import EngineSanitizer

__all__ = [
    "RunReport",
    "throughput_mb_s",
    "device_report",
    "device_table",
    "ionode_report",
    "conflict_report",
    "invariant_report",
    "resilience_report",
]


def throughput_mb_s(nbytes: int, elapsed: float) -> float:
    """Megabytes per second (10^6), the unit 1989 drives are quoted in."""
    if elapsed <= 0:
        return float("inf") if nbytes else 0.0
    return nbytes / elapsed / 1e6


@dataclass
class RunReport:
    """Summary of one measured run."""

    label: str
    elapsed: float
    nbytes: int

    @property
    def throughput(self) -> float:
        return throughput_mb_s(self.nbytes, self.elapsed)

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.label:<40s} {self.elapsed * 1e3:>10.2f} ms "
            f"{self.throughput:>8.2f} MB/s"
        )


def conflict_report(detector: "AccessConflictDetector") -> list[str]:
    """Render an access-conflict detector's findings, one row per finding.

    A clean run renders a single "no conflicts" row so reports always show
    the sanitizer actually ran (``records`` counts the accesses indexed).
    """
    header = (
        f"access sanitizer: {len(detector.records)} accesses, "
        f"{detector.epoch + 1} epoch(s), {len(detector.findings)} finding(s)"
    )
    if not detector.findings:
        return [header, "  no conflicts detected"]
    return [header] + [f"  {f.row()}" for f in detector.findings]


def invariant_report(sanitizer: "EngineSanitizer") -> list[str]:
    """Render an engine sanitizer's violations, one row per violation."""
    header = (
        f"engine sanitizer: {sanitizer.checks} checks, "
        f"{len(sanitizer.violations)} violation(s)"
    )
    if not sanitizer.violations:
        return [header, "  no invariant violations"]
    return [header] + [f"  {v.row()}" for v in sanitizer.violations]


def device_report(env: Environment, devices: list[DeviceController]) -> list[str]:
    """Per-device utilization / seek / latency rows."""
    rows = []
    for d in devices:
        util = d.utilization.utilization(env.now)
        rows.append(
            f"{d.name:<10s} util={util:6.1%} "
            f"seeks={d.disk.total_seeks:>6d} "
            f"seek_cyls={d.disk.total_seek_distance:>8d} "
            f"reqs={d.disk.total_requests:>6d} "
            f"lat_mean={d.latency.mean * 1e3 if d.latency.count else 0:8.2f} ms"
        )
    return rows


def device_table(env: Environment, devices: list[DeviceController]) -> list[str]:
    """The full per-device statistics table (header + one row per device).

    Surfaces everything a :class:`~repro.devices.controller.
    DeviceController` tallies during a run: the request-latency
    distribution (mean / max over submit-to-complete times), busy-fraction
    utilization, and the time-weighted queue length with its peak.
    """
    header = (
        f"{'device':<10s} {'reqs':>6s} {'util':>7s} "
        f"{'lat_mean':>10s} {'lat_max':>10s} {'q_mean':>7s} {'q_max':>5s}"
    )
    rows = [header]
    for d in devices:
        util = d.utilization.utilization(env.now)
        lat_mean = d.latency.mean * 1e3 if d.latency.count else 0.0
        lat_max = d.latency.max * 1e3 if d.latency.count else 0.0
        q_mean = d.queue_stat.mean(env.now)
        q_mean = 0.0 if math.isnan(q_mean) else q_mean
        rows.append(
            f"{d.name:<10s} {d.disk.total_requests:>6d} {util:>7.1%} "
            f"{lat_mean:>8.2f}ms {lat_max:>8.2f}ms "
            f"{q_mean:>7.2f} {d.queue_stat.max:>5.0f}"
        )
    return rows


def ionode_report(env: Environment, cluster: "IONodeCluster") -> list[str]:
    """The per-I/O-node statistics table (header + one row per node).

    One row per :class:`~repro.ionode.IONode`: requests serviced, busy
    utilization, time-weighted queue depth (mean and peak), the
    coalescing ratio (client byte-range items per device request — above
    1 means aggregation or caching removed device traffic), sieved
    batches, and the server-cache hit rate where a cache is configured.
    """
    header = (
        f"{'node':<8s} {'devs':>4s} {'reqs':>6s} {'util':>7s} "
        f"{'q_mean':>7s} {'q_max':>5s} {'coalesce':>8s} {'sieved':>6s} "
        f"{'cache_hit':>9s}"
    )
    rows = [header]
    for node in cluster.nodes:
        q_mean = node.queue_stat.mean(env.now)
        q_mean = 0.0 if math.isnan(q_mean) else q_mean
        ratio = node.coalescing_ratio
        coalesce = f"{ratio:>8.2f}" if not math.isnan(ratio) else f"{'-':>8s}"
        hit = (
            f"{node.cache.hit_rate:>9.1%}" if node.cache is not None else f"{'-':>9s}"
        )
        rows.append(
            f"{node.name:<8s} {len(node.devices):>4d} {node.completed:>6d} "
            f"{node.utilization.utilization(env.now):>7.1%} "
            f"{q_mean:>7.2f} {node.queue_stat.max:>5.0f} {coalesce} "
            f"{node.sieved_batches:>6d} {hit}"
        )
    return rows


def resilience_report(resilience: "ResilientVolume") -> list[str]:
    """Render one resilience layer's activity, one row per figure.

    Shows what the layer absorbed during the run: degraded reads served
    by reconstruction (with their latency), journaled degraded writes,
    retry traffic, node failovers and migrated requests, and completed
    rebuilds with the resulting MTTR sample.
    """
    s = resilience.stats
    rows = [
        f"{'degraded reads':<28s} {s.degraded_reads:>8d}",
        f"{'  reconstructed bytes':<28s} {s.reconstructed_bytes:>8d}",
        f"{'degraded writes':<28s} {s.degraded_writes:>8d}",
        f"{'  journaled / replayed':<28s} {s.journaled_writes:>4d} / {s.replayed_writes:<4d}",
        f"{'retried ops':<28s} {s.retried_ops:>8d}",
        f"{'  extra attempts':<28s} {s.retry_attempts:>8d}",
        f"{'  exhausted':<28s} {s.retries_exhausted:>8d}",
        f"{'node failovers':<28s} {s.failovers:>8d}",
        f"{'  migrated requests':<28s} {s.migrated_requests:>8d}",
        f"{'  quarantined nodes':<28s} {s.quarantined_nodes:>8d}",
        f"{'rebuilds':<28s} {s.rebuilds_completed:>4d} / {s.rebuilds_started:<4d}",
        f"{'  rebuilt bytes':<28s} {s.rebuild_bytes:>8d}",
    ]
    lat = s.degraded_read_latency
    if lat.count:
        rows.append(
            f"{'degraded read latency':<28s} {lat.mean * 1e3:>8.2f} ms mean "
            f"(max {lat.max * 1e3:.2f} ms, n={lat.count})"
        )
    if s.rebuild_times:
        rows.append(
            f"{'MTTR':<28s} {s.mttr_seconds:>8.2f} s over "
            f"{len(s.rebuild_times)} rebuild(s)"
        )
    return rows
