"""Throughput, utilization, and sanitizer reporting for experiment runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..devices.controller import DeviceController
from ..sim.engine import Environment

if TYPE_CHECKING:  # pragma: no cover
    from ..container.verify import ContainerReport
    from ..ionode.routing import IONodeCluster
    from ..metastore.service import MetadataService
    from ..qos.manager import QoSManager
    from ..resilience.volume import ResilientVolume
    from ..sanitize.access import AccessConflictDetector
    from ..sanitize.engine_hooks import EngineSanitizer

__all__ = [
    "RunReport",
    "throughput_mb_s",
    "device_report",
    "device_table",
    "ionode_report",
    "qos_report",
    "conflict_report",
    "invariant_report",
    "resilience_report",
    "container_report",
    "metastore_report",
    "dataset_server_report",
]


def _wait_cells(stat) -> str:
    """p50/p95/max cells (ms) for one queue-wait PercentileTally."""
    if not stat.count:
        return f"{'-':>7s} {'-':>7s} {'-':>7s}"
    return (
        f"{stat.percentile(50) * 1e3:>7.2f} "
        f"{stat.percentile(95) * 1e3:>7.2f} "
        f"{stat.max * 1e3:>7.2f}"
    )


def throughput_mb_s(nbytes: int, elapsed: float) -> float:
    """Megabytes per second (10^6), the unit 1989 drives are quoted in."""
    if elapsed <= 0:
        return float("inf") if nbytes else 0.0
    return nbytes / elapsed / 1e6


@dataclass
class RunReport:
    """Summary of one measured run."""

    label: str
    elapsed: float
    nbytes: int

    @property
    def throughput(self) -> float:
        return throughput_mb_s(self.nbytes, self.elapsed)

    def row(self) -> str:
        """One formatted report line."""
        return (
            f"{self.label:<40s} {self.elapsed * 1e3:>10.2f} ms "
            f"{self.throughput:>8.2f} MB/s"
        )


def conflict_report(detector: "AccessConflictDetector") -> list[str]:
    """Render an access-conflict detector's findings, one row per finding.

    A clean run renders a single "no conflicts" row so reports always show
    the sanitizer actually ran (``records`` counts the accesses indexed).
    """
    header = (
        f"access sanitizer: {len(detector.records)} accesses, "
        f"{detector.epoch + 1} epoch(s), {len(detector.findings)} finding(s)"
    )
    if not detector.findings:
        return [header, "  no conflicts detected"]
    return [header] + [f"  {f.row()}" for f in detector.findings]


def invariant_report(sanitizer: "EngineSanitizer") -> list[str]:
    """Render an engine sanitizer's violations, one row per violation."""
    header = (
        f"engine sanitizer: {sanitizer.checks} checks, "
        f"{len(sanitizer.violations)} violation(s)"
    )
    if not sanitizer.violations:
        return [header, "  no invariant violations"]
    return [header] + [f"  {v.row()}" for v in sanitizer.violations]


def device_report(env: Environment, devices: list[DeviceController]) -> list[str]:
    """Per-device utilization / seek / latency rows."""
    rows = []
    for d in devices:
        util = d.utilization.utilization(env.now)
        rows.append(
            f"{d.name:<10s} util={util:6.1%} "
            f"seeks={d.disk.total_seeks:>6d} "
            f"seek_cyls={d.disk.total_seek_distance:>8d} "
            f"reqs={d.disk.total_requests:>6d} "
            f"lat_mean={d.latency.mean * 1e3 if d.latency.count else 0:8.2f} ms"
        )
    return rows


def device_table(env: Environment, devices: list[DeviceController]) -> list[str]:
    """The full per-device statistics table (header + one row per device).

    Surfaces everything a :class:`~repro.devices.controller.
    DeviceController` tallies during a run: the request-latency
    distribution (mean / max over submit-to-complete times), busy-fraction
    utilization, the time-weighted queue length with its peak, and the
    queue-wait (submit-to-dispatch) percentiles in milliseconds.
    """
    header = (
        f"{'device':<10s} {'reqs':>6s} {'util':>7s} "
        f"{'lat_mean':>10s} {'lat_max':>10s} {'q_mean':>7s} {'q_max':>5s} "
        f"{'w_p50':>7s} {'w_p95':>7s} {'w_max':>7s}"
    )
    rows = [header]
    for d in devices:
        util = d.utilization.utilization(env.now)
        lat_mean = d.latency.mean * 1e3 if d.latency.count else 0.0
        lat_max = d.latency.max * 1e3 if d.latency.count else 0.0
        q_mean = d.queue_stat.mean(env.now)
        q_mean = 0.0 if math.isnan(q_mean) else q_mean
        rows.append(
            f"{d.name:<10s} {d.disk.total_requests:>6d} {util:>7.1%} "
            f"{lat_mean:>8.2f}ms {lat_max:>8.2f}ms "
            f"{q_mean:>7.2f} {d.queue_stat.max:>5.0f} "
            f"{_wait_cells(d.wait_stat)}"
        )
    return rows


def ionode_report(env: Environment, cluster: "IONodeCluster") -> list[str]:
    """The per-I/O-node statistics table (header + one row per node).

    One row per :class:`~repro.ionode.IONode`: requests serviced, busy
    utilization, time-weighted queue depth (mean and peak), the
    coalescing ratio (client byte-range items per device request — above
    1 means aggregation or caching removed device traffic), sieved
    batches, the server-cache hit rate where a cache is configured, and
    the inbox-wait (admit-to-drain) percentiles in milliseconds.
    """
    header = (
        f"{'node':<8s} {'devs':>4s} {'reqs':>6s} {'util':>7s} "
        f"{'q_mean':>7s} {'q_max':>5s} {'coalesce':>8s} {'sieved':>6s} "
        f"{'cache_hit':>9s} {'w_p50':>7s} {'w_p95':>7s} {'w_max':>7s}"
    )
    rows = [header]
    for node in cluster.nodes:
        q_mean = node.queue_stat.mean(env.now)
        q_mean = 0.0 if math.isnan(q_mean) else q_mean
        ratio = node.coalescing_ratio
        coalesce = f"{ratio:>8.2f}" if not math.isnan(ratio) else f"{'-':>8s}"
        hit = (
            f"{node.cache.hit_rate:>9.1%}" if node.cache is not None else f"{'-':>9s}"
        )
        rows.append(
            f"{node.name:<8s} {len(node.devices):>4d} {node.completed:>6d} "
            f"{node.utilization.utilization(env.now):>7.1%} "
            f"{q_mean:>7.2f} {node.queue_stat.max:>5.0f} {coalesce} "
            f"{node.sieved_batches:>6d} {hit} {_wait_cells(node.wait_stat)}"
        )
    return rows


def qos_report(manager: "QoSManager") -> list[str]:
    """The per-tenant QoS table (header + one row per tenant).

    One row per :class:`~repro.qos.Tenant`: weight, completed ops, bytes
    serviced and the resulting share of all serviced bytes, where its
    wall time went (mean admission-blocked / queued / in-service, ms),
    deadline misses, and token-bucket throttling (grants that had to
    wait). A footer row summarizes detection counters so a clean run
    still shows the detectors ran.
    """
    header = (
        f"{'tenant':<10s} {'weight':>6s} {'ops':>6s} {'MB':>8s} "
        f"{'share':>6s} {'blocked':>8s} {'queued':>8s} {'service':>8s} "
        f"{'miss':>4s} {'throttled':>9s}"
    )
    rows = [header]
    total_bytes = sum(t.serviced_bytes for t in manager.tenants.values())
    for name in sorted(manager.tenants):
        t = manager.tenants[name]
        share = t.serviced_bytes / total_bytes if total_bytes else 0.0
        blocked = t.blocked.mean * 1e3 if t.blocked.count else 0.0
        queued = t.queued.mean * 1e3 if t.queued.count else 0.0
        service = t.service.mean * 1e3 if t.service.count else 0.0
        throttled = (
            f"{t.bucket.throttled_grants:>4d}/{t.bucket.grants:<4d}"
            if t.bucket is not None
            else f"{'-':>9s}"
        )
        rows.append(
            f"{t.name:<10s} {t.weight:>6.1f} {t.ops:>6d} "
            f"{t.serviced_bytes / 1e6:>8.3f} {share:>6.1%} "
            f"{blocked:>6.2f}ms {queued:>6.2f}ms {service:>6.2f}ms "
            f"{t.deadline_misses:>4d} {throttled}"
        )
    rows.append(
        f"scheduler={manager.config.scheduler} "
        f"queues={len(manager.schedulers)} "
        f"starvations={manager.starvations} "
        f"deadline_misses={manager.deadline_misses}"
    )
    return rows


def resilience_report(resilience: "ResilientVolume") -> list[str]:
    """Render one resilience layer's activity, one row per figure.

    Shows what the layer absorbed during the run: degraded reads served
    by reconstruction (with their latency), journaled degraded writes,
    retry traffic, node failovers and migrated requests, and completed
    rebuilds with the resulting MTTR sample.
    """
    s = resilience.stats
    rows = [
        f"{'degraded reads':<28s} {s.degraded_reads:>8d}",
        f"{'  reconstructed bytes':<28s} {s.reconstructed_bytes:>8d}",
        f"{'degraded writes':<28s} {s.degraded_writes:>8d}",
        f"{'  journaled / replayed':<28s} {s.journaled_writes:>4d} / {s.replayed_writes:<4d}",
        f"{'retried ops':<28s} {s.retried_ops:>8d}",
        f"{'  extra attempts':<28s} {s.retry_attempts:>8d}",
        f"{'  exhausted':<28s} {s.retries_exhausted:>8d}",
        f"{'node failovers':<28s} {s.failovers:>8d}",
        f"{'  migrated requests':<28s} {s.migrated_requests:>8d}",
        f"{'  quarantined nodes':<28s} {s.quarantined_nodes:>8d}",
        f"{'rebuilds':<28s} {s.rebuilds_completed:>4d} / {s.rebuilds_started:<4d}",
        f"{'  rebuilt bytes':<28s} {s.rebuild_bytes:>8d}",
    ]
    lat = s.degraded_read_latency
    if lat.count:
        rows.append(
            f"{'degraded read latency':<28s} {lat.mean * 1e3:>8.2f} ms mean "
            f"(max {lat.max * 1e3:.2f} ms, n={lat.count})"
        )
    if s.rebuild_times:
        rows.append(
            f"{'MTTR':<28s} {s.mttr_seconds:>8.2f} s over "
            f"{len(s.rebuild_times)} rebuild(s)"
        )
    return rows


def container_report(report: "ContainerReport") -> str:
    """Render one container scan: verdict line, per-defect rows, and —
    for :func:`repro.container.verify.fsck` runs over a resilience
    layer — the counter deltas the scan itself caused."""
    rows = [
        f"container {report.name}: "
        + (
            f"CLEAN ({len(report.verified)}/{len(report.sections)} "
            f"sections verified, {report.total_bytes} bytes)"
            if report.clean
            else f"{len(report.findings)} finding(s) in {report.total_bytes} bytes"
        )
    ]
    rows.extend("  " + f.row() for f in report.findings)
    if report.resilience:
        deltas = ", ".join(
            f"{k}={v}" for k, v in sorted(report.resilience.items())
        )
        rows.append(f"  scan resilience activity: {deltas}")
    return "\n".join(rows)


def metastore_report(service: "MetadataService") -> list[str]:
    """Render the sharded metadata service: per-shard directory/journal
    occupancy, lease epochs, failover counts, then the lifetime
    operation counters and any live invariant findings."""
    d = service.to_dict()
    rows = [
        f"{'shard':>5s} {'entries':>8s} {'extents':>8s} {'journal':>8s} "
        f"{'epoch':>6s} {'home':>5s} {'failovers':>9s}"
    ]
    for s in d["shards"]:
        home = "-" if s["home_node"] is None else str(s["home_node"])
        rows.append(
            f"{s['index']:>5d} {s['entries']:>8d} {s['extents']:>8d} "
            f"{s['journal']:>8d} {s['epoch']:>6d} {home:>5s} "
            f"{s['failovers']:>9d}"
        )
    c = d["counters"]
    rows.append(
        f"ops: {c['creates']} created, {c['deletes']} deleted, "
        f"{c['renames']} renamed, {c['extends']} extended, "
        f"{c['lookups']} lookups"
    )
    rows.append(
        f"repair: {c['recoveries']} transaction(s) replayed, "
        f"{c['shard_failovers']} shard failover(s)"
    )
    findings = service.check_invariants()
    if findings:
        rows.append(f"{len(findings)} namespace invariant finding(s):")
        rows.extend("  " + f.row() for f in findings)
    else:
        rows.append("namespace invariants: clean")
    return rows


def dataset_server_report(stats: dict) -> list[str]:
    """Render a :meth:`~repro.live.server.DatasetServer.stats` dict:
    the server totals, then one row per tenant with its admission state
    (rate/burst, throttle count, total admission wait)."""
    rows = [
        f"uptime {stats['uptime_s']:.3f}s  "
        f"{stats['connections_total']} connection(s), "
        f"{stats['requests_total']} request(s), "
        f"{stats['errors_total']} error(s), "
        f"{stats['protocol_errors']} protocol error(s)"
    ]
    if stats.get("datasets_open"):
        rows.append("open datasets: " + ", ".join(stats["datasets_open"]))
    rows.append(
        f"{'tenant':<12s} {'reqs':>6s} {'errs':>5s} {'read MB':>9s} "
        f"{'write MB':>9s} {'rate MB/s':>10s} {'throttled':>9s} "
        f"{'wait s':>8s}"
    )
    for name, t in stats.get("tenants", {}).items():
        rate = (
            f"{t['rate'] / 1e6:.2f}" if "rate" in t else "-"
        )
        throttled = str(t.get("throttled_grants", "-"))
        rows.append(
            f"{name:<12s} {t['requests']:>6d} {t['errors']:>5d} "
            f"{t['bytes_read'] / 1e6:>9.3f} {t['bytes_written'] / 1e6:>9.3f} "
            f"{rate:>10s} {throttled:>9s} {t['admission_wait_s']:>8.3f}"
        )
    return rows
