"""File attributes: the catalog's description of a parallel file.

§2 requires that standard parallel files "appear conventional to the
system, or at least have transparent mechanisms to transform them into a
conventional appearance". The attribute record is that mechanism's data:
it captures everything (organization, record/block shape, layout family
and parameters) needed to present either view of the file, and round-trips
through a plain dict so a real system could persist it in a directory
entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.blocks import BlockSpec
from ..core.organizations import FileCategory, FileOrganization
from ..core.records import RecordSpec

__all__ = ["FileAttributes"]


def _plain(value: Any) -> Any:
    """JSON-safe deep copy: numpy scalars to Python scalars, arrays and
    tuples to lists, dict keys to str.

    Layout and organization parameters arrive from callers that computed
    them with numpy (``stripe_unit=arr.shape[0]`` gives ``np.int64``),
    and ``json.dumps`` refuses numpy scalars — so persistence must
    canonicalize, not just copy. Tuples become lists *here*, on the way
    out, so ``to_dict -> json -> from_dict`` is a true fixed point
    rather than changing types on the first round trip.
    """
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "tolist"):  # numpy scalar or array
        return _plain(value.tolist())
    return value


@dataclass
class FileAttributes:
    """Everything the file system remembers about one parallel file."""

    name: str
    organization: FileOrganization
    category: FileCategory
    record_size: int
    records_per_block: int
    n_records: int
    n_processes: int
    layout: str                      # 'striped' | 'interleaved' | 'clustered'
    layout_params: dict[str, Any] = field(default_factory=dict)
    org_params: dict[str, Any] = field(default_factory=dict)
    dtype: str = "uint8"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("file name must be non-empty")
        if self.n_records < 0:
            raise ValueError("n_records must be >= 0")
        if self.n_processes < 1:
            raise ValueError("n_processes must be >= 1")

    @property
    def record_spec(self) -> RecordSpec:
        return RecordSpec(self.record_size, self.dtype)

    @property
    def block_spec(self) -> BlockSpec:
        return BlockSpec(self.record_spec, self.records_per_block)

    @property
    def file_bytes(self) -> int:
        return self.n_records * self.record_size

    @property
    def n_blocks(self) -> int:
        return self.block_spec.n_blocks(self.n_records)

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-serializable) for catalog persistence."""
        return {
            "name": str(self.name),
            "organization": self.organization.value,
            "category": self.category.value,
            "record_size": _plain(self.record_size),
            "records_per_block": _plain(self.records_per_block),
            "n_records": _plain(self.n_records),
            "n_processes": _plain(self.n_processes),
            "layout": str(self.layout),
            "layout_params": _plain(self.layout_params),
            "org_params": _plain(self.org_params),
            "dtype": str(self.dtype),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FileAttributes":
        d = dict(d)
        d["organization"] = FileOrganization(d["organization"])
        d["category"] = FileCategory(d["category"])
        return cls(**d)
