"""Failure-recovery strategies and their cost/coverage trade-offs (§5).

The paper weighs three protections for a multi-device file system:

* **backups + rollback** — cheap in hardware, but a single-device failure
  forces rolling *all* devices back to the backup point (post-backup
  writes lost);
* **parity striping** (Kim) — one extra check device per group; covers
  single-drive failure for synchronized (striped) access but not
  independent (PS/IS) access — see `repro.storage.parity`;
* **shadowing** — every drive duplicated; covers any single failure under
  any organization, "very expensive in terms of hardware" — see
  `repro.devices.shadow`.

:func:`protection_overview` tabulates device cost vs coverage (the E9
summary rows); :func:`verify_file` checks a file's global view against
expected contents, which is how experiments decide whether recovery
actually recovered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .pfs import ParallelFile

__all__ = [
    "ProtectionScheme",
    "protection_overview",
    "verify_file",
    "DamageReport",
    "assess_damage",
]


@dataclass(frozen=True)
class ProtectionScheme:
    """Cost and coverage of one protection strategy for N data devices."""

    name: str
    extra_devices: int            # hardware cost beyond the N data devices
    covers_striped: bool          # single-failure recovery for S/SS/GDA striping
    covers_independent: bool      # single-failure recovery for PS/IS access
    loses_recent_writes: bool     # recovery rolls back past the failure point

    def device_overhead(self, n_data: int) -> float:
        """Extra hardware as a fraction of the data devices."""
        if n_data < 1:
            raise ValueError("n_data must be >= 1")
        return self.extra_devices / n_data


def protection_overview(n_data: int, parity_group_size: int | None = None) -> list[ProtectionScheme]:
    """The §5 strategy table for ``n_data`` data devices.

    ``parity_group_size`` is the number of data devices sharing one check
    device (defaults to all of them, one group).
    """
    if n_data < 1:
        raise ValueError("n_data must be >= 1")
    group = parity_group_size or n_data
    if group < 2:
        raise ValueError("parity groups need at least 2 data devices")
    n_groups = -(-n_data // group)
    return [
        ProtectionScheme(
            name="none+backup",
            extra_devices=0,
            covers_striped=True,     # recoverable, but only to backup point
            covers_independent=True,
            loses_recent_writes=True,
        ),
        ProtectionScheme(
            name="parity",
            extra_devices=n_groups,
            covers_striped=True,
            covers_independent=False,  # §5: "does not appear to be applicable"
            loses_recent_writes=False,
        ),
        ProtectionScheme(
            name="shadow",
            extra_devices=n_data,      # "very expensive in terms of hardware"
            covers_striped=True,
            covers_independent=True,
            loses_recent_writes=False,
        ),
    ]


@dataclass(frozen=True)
class DamageReport:
    """What one device's failure costs one file.

    §5's premise quantified: "each drive contains a slice of every file"
    is true for striped layouts (every file 100% affected) but *not* for
    clustered PS layouts, where only the partitions resident on the failed
    device are lost — which is why the organizations differ in their
    recovery options.
    """

    file: str
    affected_bytes: int
    total_bytes: int
    affected_records: list[tuple[int, int]]  # half-open global record runs

    @property
    def fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.affected_bytes / self.total_bytes

    @property
    def intact(self) -> bool:
        return self.affected_bytes == 0


def assess_damage(pfs, device_index: int) -> list[DamageReport]:
    """Per-file damage if device ``device_index`` were lost.

    Walks every catalog entry's layout to find which file byte ranges map
    to the device, and converts them to global record runs.
    """
    if not 0 <= device_index < pfs.volume.n_devices:
        raise ValueError(f"device {device_index} outside volume")
    reports = []
    for name in pfs.catalog.names():
        entry = pfs.catalog.get(name)
        attrs = entry.attrs
        total = attrs.file_bytes
        affected = 0
        runs: list[tuple[int, int]] = []
        if total:
            rs = attrs.record_size
            for seg_start, seg_len in _device_ranges(
                entry.layout, total, device_index
            ):
                affected += seg_len
                lo = seg_start // rs
                hi = -(-(seg_start + seg_len) // rs)
                if runs and runs[-1][1] >= lo:
                    runs[-1] = (runs[-1][0], max(runs[-1][1], hi))
                else:
                    runs.append((lo, hi))
        reports.append(
            DamageReport(
                file=name,
                affected_bytes=affected,
                total_bytes=total,
                affected_records=runs,
            )
        )
    return reports


def _device_ranges(layout, file_bytes: int, device: int):
    """Yield (file_offset, length) ranges of the file living on ``device``."""
    pos = 0
    for seg in layout.map_range(0, file_bytes):
        if seg.device == device:
            yield pos, seg.length
        pos += seg.length


def verify_file(file: "ParallelFile", expected: np.ndarray) -> bool:
    """Zero-time check: does the file's global view equal ``expected``?

    Uses the volume's peek path so verification does not perturb the
    simulated clock or device statistics.
    """
    spec = file.attrs.record_spec
    raw = file.volume.peek(
        file.entry.extent, file.layout, 0, file.attrs.file_bytes
    )
    actual = spec.decode(raw)
    expected_arr = np.asarray(expected)
    if expected_arr.ndim == 1:
        expected_arr = expected_arr.reshape(len(expected_arr), -1)
    return actual.shape == expected_arr.shape and bool(
        np.array_equal(actual, np.ascontiguousarray(expected_arr, dtype=spec.dtype))
    )
