"""Internal views: per-process, organization-specific file handles (§3).

Each organization gets the access method its section of the paper
describes:

* S — :class:`SequentialHandle`: the designated process scans the whole
  file in order.
* PS / IS — :class:`PartitionHandle`: a per-process cursor over the
  process's own blocks ("each process performs its own I/O operations
  within its assigned block[s]").
* SS — :class:`SSSession` + :class:`SSHandle`: a shared ticket counter
  guarantees "each request accesses a different record and no record gets
  skipped"; the session's ``early_advance`` flag implements §4's
  optimization ("file pointers can be adjusted and buffer areas reserved
  early in an I/O call, thereby allowing the next call from another
  process to proceed before the actual data transfer from the first call
  has completed").
* GDA — :class:`DirectHandle`: any record, any order, optional block
  cache.
* PDA — :class:`OwnedDirectHandle`: the same, restricted to owned blocks,
  where the block cache is §4's "buffer caching ... when there is some
  locality of reference, as in the PDA organization".

All I/O methods are generators, driven with ``yield from`` inside
simulated processes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..buffering.cache import BufferCache
from ..core.convert import contiguous_runs
from ..core.errors import ExhaustedError, OrganizationError, OwnershipError
from ..core.mapping import (
    GlobalDirectMap,
    PartitionedDirectMap,
    SelfScheduledMap,
    SequentialMap,
)
from ..core.organizations import FileOrganization
from ..sim.sync import SimLock

if TYPE_CHECKING:  # pragma: no cover
    from .pfs import ParallelFile

__all__ = [
    "SequentialHandle",
    "PartitionHandle",
    "SSSession",
    "SSHandle",
    "DirectHandle",
    "OwnedDirectHandle",
    "make_internal_handle",
]


class _HandleBase:
    def __init__(
        self, file: "ParallelFile", process: int, n_processes: int | None = None
    ):
        bound = n_processes if n_processes is not None else file.map.n_processes
        if not 0 <= process < bound:
            raise OrganizationError(
                f"process {process} outside 0..{bound - 1}"
            )
        self.file = file
        self.process = process

    @property
    def env(self):
        return self.file.env

    def _trace_span(self, op: str, start_record: int, count: int) -> None:
        if not self.file.pfs._tracing:
            return
        bs = self.file.attrs.block_spec
        if count <= 0:
            return
        first = bs.block_of(start_record)
        last = bs.block_of(start_record + count - 1)
        for b in range(first, last + 1):
            lo = max(start_record, bs.first_record(b))
            hi = min(
                start_record + count,
                bs.first_record(b) + bs.records_per_block,
            )
            self.file.trace(self.process, op, b, hi - lo, start=lo)


class SequentialHandle(_HandleBase):
    """Type S: the designated reader scans the file in global order."""

    def __init__(self, file: "ParallelFile", process: int):
        super().__init__(file, process)
        m = file.map
        if not isinstance(m, SequentialMap):
            raise OrganizationError("SequentialHandle requires an S file")
        if process != m.reader:
            raise OrganizationError(
                f"S file {file.name!r} is accessed by process {m.reader}, "
                f"not {process}"
            )
        self._cursor = 0

    @property
    def eof(self) -> bool:
        return self._cursor >= self.file.n_records

    @property
    def position(self) -> int:
        return self._cursor

    def read_next(self, count: int = 1):
        """Generator: the next ``count`` records (clipped at EOF)."""
        count = min(count, self.file.n_records - self._cursor)
        if count <= 0:
            return self.file.attrs.record_spec.decode(b"")
        start = self._cursor
        data = yield self.file.read_records(start, count)
        self._cursor += count
        self._trace_span("read", start, count)
        return data

    def write_next(self, values: np.ndarray):
        """Generator: write records at the cursor."""
        raw = self.file.attrs.record_spec.encode(values)
        count = raw.size // self.file.attrs.record_size
        start = self._cursor
        yield self.file.write_records(start, values)
        self._cursor += count
        self._trace_span("write", start, count)
        return count


class PartitionHandle(_HandleBase):
    """Types PS and IS: a cursor over the process's own record sequence.

    ``org_map`` defaults to the file's own map; passing a different map
    yields an *alternate-view* handle (the §5 degraded software interface)
    — the desired sequence is honoured but executed against the file's
    actual physical layout, fragmenting into extra transfers.
    """

    def __init__(self, file: "ParallelFile", process: int, org_map=None):
        m = org_map if org_map is not None else file.map
        super().__init__(file, process, n_processes=m.n_processes)
        if not m.is_static:
            raise OrganizationError(
                "PartitionHandle requires a statically partitioned file"
            )
        if m.n_records != file.n_records:
            raise OrganizationError(
                "alternate-view map does not match the file's record count"
            )
        sanitizer = file.pfs.sanitizer
        if sanitizer is not None:
            sanitizer.note_view(file, process, m.org)
        self.view_map = m
        self._records = m.records_of(process)
        self._cursor = 0
        self._block_cursor = 0
        self._blocks = m.blocks_of(process)

    @property
    def n_local_records(self) -> int:
        return len(self._records)

    @property
    def remaining(self) -> int:
        return len(self._records) - self._cursor

    @property
    def eof(self) -> bool:
        return self._cursor >= len(self._records)

    # -- record-level cursor --------------------------------------------------

    def read_next(self, count: int = 1):
        """Generator: the next ``count`` of this process's records.

        Contiguous global runs are fetched as single transfers; an IS
        partition therefore pays one transfer per touched block while a
        PS partition pays one per call.
        """
        count = min(count, self.remaining)
        if count <= 0:
            return self.file.attrs.record_spec.decode(b"")
        wanted = self._records[self._cursor : self._cursor + count]
        runs = list(contiguous_runs(wanted))
        if len(runs) > 1 and self.file.pfs.batch_io:
            # list I/O: all runs down the data plane as one submission
            data = yield self.file.read_gather(
                [(run.start, run.count) for run in runs]
            )
            for run in runs:
                self._trace_span("read", run.start, run.count)
            self._cursor += count
            return data
        pieces = []
        for run in runs:
            data = yield self.file.read_records(run.start, run.count)
            self._trace_span("read", run.start, run.count)
            pieces.append(data)
        self._cursor += count
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    def write_next(self, values: np.ndarray):
        """Generator: write the next records of this process's sequence."""
        raw = self.file.attrs.record_spec.encode(values)
        count = raw.size // self.file.attrs.record_size
        if count > self.remaining:
            raise ExhaustedError(
                f"process {self.process} has {self.remaining} records left, "
                f"got {count}"
            )
        decoded = self.file.attrs.record_spec.decode(raw)
        wanted = self._records[self._cursor : self._cursor + count]
        runs = list(contiguous_runs(wanted))
        if len(runs) > 1 and self.file.pfs.batch_io:
            yield self.file.write_gather(
                [(run.start, run.count) for run in runs], decoded
            )
            for run in runs:
                self._trace_span("write", run.start, run.count)
            self._cursor += count
            return count
        pos = 0
        for run in runs:
            chunk = decoded[pos : pos + run.count]
            yield self.file.write_records(run.start, chunk)
            self._trace_span("write", run.start, run.count)
            pos += run.count
        self._cursor += count
        return count

    # -- buffered scanning --------------------------------------------------

    def stream(self, pool, depth: int = 1):
        """A read-ahead :class:`~repro.buffering.readahead.ReadStream` over
        this process's own blocks, in its access order.

        §4's "the order of accesses is predictable" applies to internal
        views too: a PS or IS process knows its whole block sequence up
        front, so read-ahead overlaps its I/O with its computation.
        """
        from ..buffering.readahead import ReadStream

        file = self.file
        return ReadStream(
            file.env,
            lambda b: file.read_block(b),
            [int(b) for b in self._blocks],
            pool,
            depth=depth,
        )

    # -- block-level cursor ------------------------------------------------------

    @property
    def blocks_remaining(self) -> int:
        return len(self._blocks) - self._block_cursor

    def read_next_block(self):
        """Generator: ``(block, records)`` for the next owned block."""
        if self._block_cursor >= len(self._blocks):
            return None
        block = int(self._blocks[self._block_cursor])
        self._block_cursor += 1
        data = yield self.file.read_block(block)
        self.file.trace(self.process, "read", block, len(data))
        return block, data

    def write_next_block(self, values: np.ndarray):
        """Generator: write the next owned block; returns its index."""
        if self._block_cursor >= len(self._blocks):
            raise ExhaustedError(f"process {self.process} owns no more blocks")
        block = int(self._blocks[self._block_cursor])
        self._block_cursor += 1
        yield self.file.write_block(block, values)
        self.file.trace(self.process, "write", block, len(np.atleast_2d(values)))
        return block


class SSSession:
    """Shared state of one self-scheduled pass over an SS file.

    All participating processes obtain handles from the *same* session so
    they share the file pointer. ``pointer_cost`` is the simulated time to
    adjust the shared pointer inside the critical section; with
    ``early_advance=False`` the whole transfer also happens inside it
    (the naive implementation §4 warns "unduly serializ[es] access").
    """

    def __init__(
        self,
        file: "ParallelFile",
        early_advance: bool = True,
        pointer_cost: float = 1e-5,
    ):
        if not isinstance(file.map, SelfScheduledMap):
            raise OrganizationError("SSSession requires an SS file")
        self.file = file
        self.early_advance = early_advance
        self.pointer_cost = pointer_cost
        self._lock = SimLock(file.env)
        self._next_block = 0
        #: blocks handed to each process, in hand-out order
        self.schedule: dict[int, list[int]] = {}

    @property
    def blocks_issued(self) -> int:
        return self._next_block

    @property
    def exhausted(self) -> bool:
        return self._next_block >= self.file.n_blocks

    def handle(self, process: int) -> "SSHandle":
        """A handle for ``process`` sharing this session's file pointer."""
        return SSHandle(self.file, process, self)

    def validate(self) -> None:
        """Assert the completed run covered every block exactly once."""
        self.file.map.validate_schedule(self.schedule)

    def _draw(self, process: int) -> int | None:
        if self._next_block >= self.file.n_blocks:
            return None
        block = self._next_block
        self._next_block += 1
        self.schedule.setdefault(process, []).append(block)
        return block


class SSHandle(_HandleBase):
    """Type SS: each request gets the next block, whoever asks."""

    def __init__(self, file: "ParallelFile", process: int, session: SSSession):
        super().__init__(file, process)
        if session.file is not file:
            raise OrganizationError("session belongs to a different file")
        self.session = session

    def read_next(self):
        """Generator: ``(block, records)`` or ``None`` when exhausted."""
        return (yield from self._next("read", None))

    def write_next(self, values: np.ndarray):
        """Generator: write the next block; returns its index or ``None``."""
        result = yield from self._next("write", values)
        if result is None:
            return None
        return result[0]

    def _next(self, op: str, values):
        sess = self.session
        yield sess._lock.acquire()
        block = None
        try:
            if sess.pointer_cost > 0:
                yield self.env.sleep(sess.pointer_cost)
            block = sess._draw(self.process)
            if block is not None and not sess.early_advance:
                # naive implementation: the transfer completes inside the
                # critical section, serializing all SS access (§4's warning)
                return (yield from self._transfer(op, block, values))
        finally:
            sess._lock.release()
        if block is None:
            return None
        # §4 optimization: the pointer was advanced (and the buffer
        # reserved) early, so this transfer overlaps the next process's call
        return (yield from self._transfer(op, block, values))

    def _transfer(self, op: str, block: int, values):
        if op == "read":
            data = yield self.file.read_block(block)
            self.file.trace(self.process, "read", block, len(data))
            return block, data
        expect = self.file.attrs.block_spec.block_records(
            block, self.file.n_records
        )
        arr = np.atleast_2d(np.asarray(values))
        if len(arr) != expect:
            raise ValueError(
                f"block {block} holds {expect} records, got {len(arr)}"
            )
        yield self.file.write_block(block, values)
        self.file.trace(self.process, "write", block, expect)
        return block, None


class DirectHandle(_HandleBase):
    """Type GDA: positioned access to any record, optionally block-cached."""

    def __init__(
        self,
        file: "ParallelFile",
        process: int,
        cache_blocks: int = 0,
    ):
        super().__init__(file, process)
        self._cache: BufferCache | None = None
        if cache_blocks > 0:
            self._cache = BufferCache(
                file.env,
                fetch=file.read_block,
                writeback=file.write_block,
                capacity_blocks=cache_blocks,
            )

    @property
    def cache(self) -> BufferCache | None:
        return self._cache

    def _check(self, record: int, count: int) -> None:
        if record < 0 or count < 1 or record + count > self.file.n_records:
            raise ValueError(
                f"records [{record}, {record + count}) outside file"
            )

    def read_record(self, record: int, count: int = 1):
        """Generator: ``count`` records starting at ``record``."""
        self._check(record, count)
        if self._cache is None:
            data = yield self.file.read_records(record, count)
            self._trace_span("read", record, count)
            return data
        return (yield from self._cached_read(record, count))

    def write_record(self, record: int, values: np.ndarray):
        """Generator: write records starting at ``record``."""
        raw = self.file.attrs.record_spec.encode(values)
        count = raw.size // self.file.attrs.record_size
        self._check(record, count)
        if self._cache is None:
            yield self.file.write_records(record, values)
            self._trace_span("write", record, count)
            return count
        return (yield from self._cached_write(record, raw, count))

    def flush(self):
        """Generator: write back any cached dirty blocks.

        With extent batching on (``pfs.batch_io``), the whole dirty set
        goes down as one :meth:`~repro.fs.pfs.ParallelFile.write_gather`
        submission instead of one write per block.
        """
        if self._cache is not None:
            self._cache.writeback_many = (
                self._writeback_gather if self.file.pfs.batch_io else None
            )
            yield from self._cache.flush()

    def _writeback_gather(self, blocks: list, datas: list):
        """Batched dirty write-back: one gather for all dirty blocks."""
        bs = self.file.attrs.block_spec
        runs = [
            (bs.first_record(b), len(data)) for b, data in zip(blocks, datas)
        ]
        values = np.concatenate(datas) if len(datas) > 1 else datas[0]
        return self.file.write_gather(runs, values)

    # -- cached paths --------------------------------------------------------

    def _cached_read(self, record: int, count: int):
        bs = self.file.attrs.block_spec
        pieces = []
        r = record
        end = record + count
        while r < end:
            b = bs.block_of(r)
            data = yield from self._cache.read(b)
            lo = r - bs.first_record(b)
            hi = min(end - bs.first_record(b), len(data))
            pieces.append(data[lo:hi])
            self.file.trace(self.process, "read", b, hi - lo)
            r = bs.first_record(b) + hi
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]

    def _cached_write(self, record: int, raw: np.ndarray, count: int):
        bs = self.file.attrs.block_spec
        decoded = self.file.attrs.record_spec.decode(raw)
        r = record
        end = record + count
        pos = 0
        while r < end:
            b = bs.block_of(r)
            data = yield from self._cache.read(b)
            data = data.copy()
            lo = r - bs.first_record(b)
            hi = min(end - bs.first_record(b), len(data))
            data[lo:hi] = decoded[pos : pos + (hi - lo)]
            yield from self._cache.write(b, data)
            self.file.trace(self.process, "write", b, hi - lo)
            pos += hi - lo
            r = bs.first_record(b) + hi
        return count


class OwnedDirectHandle(DirectHandle):
    """Type PDA: direct access restricted to the process's own blocks.

    ``sequential_within_block=True`` selects §3.2's restricted variant
    ("an equivalent organization which always accesses records
    sequentially within blocks"): blocks in any order, records within a
    block strictly ascending. Violations raise eagerly.
    """

    def __init__(
        self,
        file: "ParallelFile",
        process: int,
        cache_blocks: int = 0,
        sequential_within_block: bool = False,
    ):
        super().__init__(file, process, cache_blocks)
        if not isinstance(file.map, PartitionedDirectMap):
            raise OrganizationError("OwnedDirectHandle requires a PDA file")
        self._cursor = None
        if sequential_within_block:
            from ..core.access import SequentialWithinBlockCursor

            self._cursor = SequentialWithinBlockCursor(file.map, process)

    def _check(self, record: int, count: int) -> None:
        super()._check(record, count)
        m: PartitionedDirectMap = self.file.map  # type: ignore[assignment]
        for r in (record, record + count - 1):
            if not m.may_access(self.process, r):
                raise OwnershipError(
                    f"process {self.process} may not access record {r} "
                    f"(owner: {m.owner_of_record(r)})"
                )
        if self._cursor is not None:
            for r in range(record, record + count):
                self._cursor.admit(r)

    def reset_block(self, block: int) -> None:
        """Begin a fresh sequential pass over ``block`` (multi-pass PDA)."""
        if self._cursor is not None:
            self._cursor.reset_block(block)

    @property
    def owned_blocks(self) -> np.ndarray:
        return self.file.map.blocks_of(self.process)


def make_internal_handle(
    file: "ParallelFile",
    process: int,
    *,
    session: SSSession | None = None,
    cache_blocks: int = 0,
    sequential_within_block: bool = False,
):
    """Dispatch to the organization's handle type."""
    org = file.map.org
    if org is FileOrganization.S:
        return SequentialHandle(file, process)
    if org in (FileOrganization.PS, FileOrganization.IS):
        return PartitionHandle(file, process)
    if org is FileOrganization.SS:
        if session is None:
            raise OrganizationError(
                "SS files need a shared SSSession: create one with "
                "SSSession(file) and pass session=..."
            )
        return SSHandle(file, process, session)
    if org is FileOrganization.GDA:
        return DirectHandle(file, process, cache_blocks)
    if org is FileOrganization.PDA:
        return OwnedDirectHandle(
            file, process, cache_blocks,
            sequential_within_block=sequential_within_block,
        )
    raise OrganizationError(f"no handle for organization {org}")  # pragma: no cover
