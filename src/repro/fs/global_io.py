"""The global view: a parallel file as a conventional file.

§2: "The global view is the logical structure of the file perceived as a
unit. The global view would typically be held by operating system
utilities and other sequential programs."

For every sequential organization the global view is the records in
global index order; for the direct-access organizations it is a
traditional direct-access file. Both are served here by one handle with a
sequential cursor plus positioned reads/writes.

§4's caveat is preserved by construction: a global read of a *clustered*
(PS) file touches the devices one partition at a time — "all of the data
would have to be read from the first disk, followed by all of the data
from the second disk, etc., with no potential for parallelism" — because
that is literally how the layout maps consecutive byte ranges. Benchmark
E6 measures it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..buffering.pool import BufferPool
from ..buffering.readahead import ReadStream

if TYPE_CHECKING:  # pragma: no cover
    from .pfs import ParallelFile

__all__ = ["GlobalViewHandle"]

#: the process id recorded in traces for global-view (sequential utility) access
GLOBAL_PROCESS = -1


class GlobalViewHandle:
    """Sequential + direct access to the file's global record sequence."""

    def __init__(self, file: "ParallelFile"):
        self.file = file
        self._cursor = 0

    @property
    def position(self) -> int:
        return self._cursor

    @property
    def eof(self) -> bool:
        return self._cursor >= self.file.n_records

    def seek(self, record: int) -> None:
        """Move the sequential cursor to ``record`` (EOF position legal)."""
        if not 0 <= record <= self.file.n_records:
            raise ValueError(f"seek to {record} outside file")
        self._cursor = record

    # -- sequential -------------------------------------------------------

    def read(self, count: int | None = None):
        """Generator: read ``count`` records (default: to EOF) at the cursor."""
        if count is None:
            count = self.file.n_records - self._cursor
        count = min(count, self.file.n_records - self._cursor)
        if count <= 0:
            return self.file.attrs.record_spec.decode(b"")
        start = self._cursor
        data = yield self.file.read_records(start, count)
        self._cursor += count
        self._trace("read", start, count)
        return data

    def write(self, values: np.ndarray):
        """Generator: write records at the cursor, advancing it."""
        raw = self.file.attrs.record_spec.encode(values)
        count = raw.size // self.file.attrs.record_size
        start = self._cursor
        yield self.file.write_records(start, values)
        self._cursor += count
        self._trace("write", start, count)
        return count

    # -- direct (GDA-style global access) -----------------------------------

    def read_at(self, record: int, count: int = 1):
        """Generator: positioned read without moving the cursor."""
        data = yield self.file.read_records(record, count)
        self._trace("read", record, count)
        return data

    def write_at(self, record: int, values: np.ndarray):
        """Generator: positioned write without moving the cursor."""
        raw = self.file.attrs.record_spec.encode(values)
        count = raw.size // self.file.attrs.record_size
        yield self.file.write_records(record, values)
        self._trace("write", record, count)
        return count

    # -- buffered scanning ----------------------------------------------------

    def stream(self, pool: BufferPool, depth: int = 1) -> ReadStream:
        """A block-granular :class:`ReadStream` over the whole file.

        This is the §4 buffered global scan: read-ahead works because the
        global order is predictable.
        """
        file = self.file

        def fetch(block: int):
            return file.read_block(block)

        return ReadStream(
            file.env, fetch, list(range(file.n_blocks)), pool, depth=depth
        )

    # -- internals ----------------------------------------------------------------

    def _trace(self, op: str, start_record: int, count: int) -> None:
        if not self.file.pfs._tracing:
            return
        bs = self.file.attrs.block_spec
        if count <= 0:
            return
        first = bs.block_of(start_record)
        last = bs.block_of(start_record + count - 1)
        for b in range(first, last + 1):
            lo = max(start_record, bs.first_record(b))
            hi = min(start_record + count, bs.first_record(b) + bs.records_per_block)
            self.file.trace(GLOBAL_PROCESS, op, b, hi - lo, start=lo)
