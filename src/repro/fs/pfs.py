"""The parallel file system: create/open/delete and the file object.

This is the operating-system layer §2 calls for: parallel files that
support "concurrent access by multiple processes" through *internal views*
while remaining usable "conventionally by sequential programs" through the
*global view*.

A :class:`ParallelFile` binds together:

* the catalog attributes (organization, record/block shape),
* the organization map (`repro.core.mapping`) — who accesses what,
* the data layout (`repro.storage.layout`) — where bytes live, and
* the volume (`repro.storage.volume`) — the devices themselves.

Handles are obtained with :meth:`ParallelFile.global_view` and
:meth:`ParallelFile.internal_view`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.errors import OrganizationError
from ..core.mapping import OrganizationMap, make_map
from ..core.organizations import FileCategory, FileOrganization
from ..sim.engine import Environment, Process
from ..storage.layout import (
    ClusteredLayout,
    DataLayout,
    InterleavedLayout,
    StripedLayout,
)
from ..storage.volume import Volume
from ..trace.events import TraceRecorder
from .catalog import Catalog, CatalogEntry
from .global_io import GlobalViewHandle
from .internal_io import make_internal_handle
from .metadata import FileAttributes

if TYPE_CHECKING:  # pragma: no cover
    from ..datatype.views import FileView
    from ..ionode.routing import IONodeCluster, MediatedVolume
    from ..qos import QoSConfig, QoSManager
    from ..sanitize.access import AccessConflictDetector

__all__ = ["ParallelFileSystem", "ParallelFile"]

DEFAULT_STRIPE_UNIT = 4096


class ParallelFile:
    """An open parallel file."""

    def __init__(
        self,
        pfs: "ParallelFileSystem",
        entry: CatalogEntry,
        org_map: OrganizationMap,
    ):
        self.pfs = pfs
        self.entry = entry
        self.map = org_map
        #: per-file data-plane override (None: follow the file system)
        self._data_plane: "Volume | MediatedVolume | None" = None
        #: default noncontiguous view for read_view/write_view (see set_view)
        self._view: "FileView | None" = None

    # -- convenient aliases -------------------------------------------------

    @property
    def env(self) -> Environment:
        return self.pfs.env

    @property
    def volume(self) -> Volume:
        return self.pfs.volume

    @property
    def data_plane(self) -> "Volume | MediatedVolume":
        """Where this file's data traffic goes: the raw volume, or the
        server-mediated facade when the ``io_nodes=`` path is active."""
        return self._data_plane if self._data_plane is not None else self.pfs.data_plane

    def route_through(self, io_nodes: "IONodeCluster | int", **cluster_kwargs: Any) -> "IONodeCluster":
        """Opt this file into server-mediated I/O (overrides the pfs default).

        ``io_nodes`` is an existing :class:`~repro.ionode.IONodeCluster`
        or a node count to build one over the volume's devices;
        ``cluster_kwargs`` are forwarded to the builder in that case.
        Returns the cluster in use.
        """
        from ..ionode.routing import IONodeCluster, MediatedVolume

        cluster = (
            IONodeCluster.build(self.env, self.volume.devices, io_nodes, **cluster_kwargs)
            if isinstance(io_nodes, int)
            else io_nodes
        )
        self._data_plane = MediatedVolume(self.volume, cluster)
        return cluster

    def route_direct(self) -> None:
        """Opt this file back into direct-attached device access."""
        self._data_plane = self.volume

    @property
    def attrs(self) -> FileAttributes:
        return self.entry.attrs

    @property
    def layout(self) -> DataLayout:
        return self.entry.layout

    @property
    def name(self) -> str:
        return self.attrs.name

    @property
    def n_records(self) -> int:
        return self.attrs.n_records

    @property
    def n_blocks(self) -> int:
        return self.attrs.n_blocks

    # -- views ---------------------------------------------------------------

    def global_view(self) -> GlobalViewHandle:
        """The file as a conventional (sequential/direct) file (§2)."""
        return GlobalViewHandle(self)

    def internal_view(self, process: int, **kwargs):
        """The organization-specific handle for one process (§3)."""
        return make_internal_handle(self, process, **kwargs)

    # -- record-level byte I/O (the layer every handle sits on) ---------------

    def read_records(self, start: int, count: int) -> Process:
        """Read ``count`` records from global index ``start`` (decoded array)."""
        spec = self.attrs.record_spec
        self._check_span(start, count)
        offset, nbytes = spec.span(start, count)
        if self.pfs.qos is not None:
            return self.env.process(
                self._admit_then("read", offset, nbytes, None, decode=True),
                name=f"{self.name}.read",
            )
        return self.env.process(
            self._decode_after(self.data_plane.read(self.entry.extent, self.layout, offset, nbytes)),
            name=f"{self.name}.read",
        )

    def write_records(self, start: int, values: np.ndarray) -> Process:
        """Write decoded record ``values`` at global index ``start``."""
        spec = self.attrs.record_spec
        raw = spec.encode(values)
        count = raw.size // spec.record_size
        self._check_span(start, count)
        offset = start * spec.record_size
        if self.pfs.qos is not None:
            return self.env.process(
                self._admit_then("write", offset, raw.size, raw, decode=False),
                name=f"{self.name}.write",
            )
        return self.data_plane.write(self.entry.extent, self.layout, offset, raw)

    def read_block(self, block: int) -> Process:
        """Read one logical block (decoded records)."""
        bs = self.attrs.block_spec
        offset, nbytes = bs.block_byte_range(block, self.n_records)
        if self.pfs.qos is not None:
            return self.env.process(
                self._admit_then("read", offset, nbytes, None, decode=True),
                name=f"{self.name}.readblk",
            )
        return self.env.process(
            self._decode_after(self.data_plane.read(self.entry.extent, self.layout, offset, nbytes)),
            name=f"{self.name}.readblk",
        )

    def write_block(self, block: int, values: np.ndarray) -> Process:
        """Write one logical block from decoded records."""
        bs = self.attrs.block_spec
        expect = bs.block_records(block, self.n_records)
        raw = self.attrs.record_spec.encode(values)
        if raw.size != expect * self.attrs.record_size:
            raise ValueError(
                f"block {block} holds {expect} records, got "
                f"{raw.size // self.attrs.record_size}"
            )
        offset, _ = bs.block_byte_range(block, self.n_records)
        if self.pfs.qos is not None:
            return self.env.process(
                self._admit_then("write", offset, raw.size, raw, decode=False),
                name=f"{self.name}.writeblk",
            )
        return self.data_plane.write(self.entry.extent, self.layout, offset, raw)

    def _admit_then(self, kind: str, offset: int, nbytes: int, raw, decode: bool):
        """QoS path: token-bucket admission, then the data-plane op.

        The device/node operation is only *created* after the submitting
        tenant's bucket covers ``nbytes`` — a throttled tenant's traffic
        never occupies queue slots while it waits. The admission wait is
        billed to the tenant as blocked time.
        """
        yield from self.pfs.qos.admit_active(nbytes)
        if kind == "read":
            result = yield self.data_plane.read(
                self.entry.extent, self.layout, offset, nbytes
            )
        else:
            result = yield self.data_plane.write(
                self.entry.extent, self.layout, offset, raw
            )
        return self.attrs.record_spec.decode(result) if decode else result

    def _decode_after(self, read_proc: Process):
        raw = yield read_proc
        return self.attrs.record_spec.decode(raw)

    # -- list I/O (extent-batched submission) -----------------------------------

    def read_gather(self, runs: list[tuple[int, int]]) -> Process:
        """Read several ``(start, count)`` record runs as one submission.

        The per-run byte ranges go down the data plane together
        (``read_many``): one submission process, one join, one QoS
        admission for the batch's total bytes, and — when batching is on —
        device-contiguous segments merged across run boundaries. The value
        is the decoded records of all runs concatenated in list order,
        exactly what per-run reads would have concatenated to.
        """
        spec = self.attrs.record_spec
        ranges = []
        total = 0
        for start, count in runs:
            self._check_span(start, count)
            ranges.append(spec.span(start, count))
            total += ranges[-1][1]
        if self.pfs.qos is not None:
            return self.env.process(
                self._admit_then_many("read", ranges, total, None),
                name=f"{self.name}.gather",
            )
        return self.env.process(
            self._decode_after(
                self.data_plane.read_many(self.entry.extent, self.layout, ranges)
            ),
            name=f"{self.name}.gather",
        )

    def write_gather(self, runs: list[tuple[int, int]], values: np.ndarray) -> Process:
        """Write several record runs as one submission (see :meth:`read_gather`).

        ``values`` holds the records of all runs concatenated in list
        order.
        """
        spec = self.attrs.record_spec
        raw = spec.encode(values)
        ranges = []
        total = 0
        for start, count in runs:
            self._check_span(start, count)
            ranges.append(spec.span(start, count))
            total += ranges[-1][1]
        if raw.size != total:
            raise ValueError(
                f"runs cover {total} bytes, values encode to {raw.size}"
            )
        if self.pfs.qos is not None:
            return self.env.process(
                self._admit_then_many("write", ranges, total, raw),
                name=f"{self.name}.scatter",
            )
        return self.data_plane.write_many(self.entry.extent, self.layout, ranges, raw)

    def _admit_then_many(self, kind: str, ranges, total: int, raw):
        """QoS path for list I/O: one admission covering the whole batch.

        The batch is billed to the submitting tenant as a single
        ``total``-byte operation; the resulting device/node requests carry
        the ambient tenant tag exactly as per-run submissions would.
        """
        yield from self.pfs.qos.admit_active(total)
        if kind == "read":
            result = yield self.data_plane.read_many(
                self.entry.extent, self.layout, ranges
            )
            return self.attrs.record_spec.decode(result)
        result = yield self.data_plane.write_many(
            self.entry.extent, self.layout, ranges, raw
        )
        return result

    # -- file views and data sieving --------------------------------------------

    def set_view(self, view: "FileView | None") -> "FileView | None":
        """Install ``view`` as this file's default noncontiguous view.

        Subsequent :meth:`read_view` / :meth:`write_view` calls without an
        explicit view use it. Pass ``None`` to clear. Returns the view
        that was previously installed.
        """
        if view is not None:
            lo, hi = view.extent
            if hi > self.n_records:
                raise ValueError(
                    f"view extent [{lo}, {hi}) outside file of {self.n_records} "
                    "records"
                )
        prev, self._view = self._view, view
        return prev

    @property
    def view(self) -> "FileView | None":
        """The default view installed by :meth:`set_view`, if any."""
        return self._view

    def _view_runs(self, view: "FileView | None"):
        from ..datatype.planner import check_view_runs

        v = view if view is not None else self._view
        if v is None:
            raise ValueError(
                "no view given: pass view=... or install one with set_view()"
            )
        return check_view_runs(v, self.n_records)

    def read_view(
        self,
        view: "FileView | None" = None,
        *,
        sieve: bool = False,
        sieve_factor: float = 4.0,
        sieve_window: int = 1 << 22,
    ) -> Process:
        """Read the records a view selects; decoded rows in view order.

        Without ``sieve`` this is list I/O: the view's runs go down the
        data plane as one :meth:`read_gather` submission (merged into
        multi-block device requests when ``batch_io`` is on). With
        ``sieve=True`` the runs are first planned into covering extents
        (:mod:`repro.datatype.sieve`): fewer, larger transfers that also
        fetch the holes, bounded by ``sieve_factor`` (span at most that
        multiple of the wanted payload) and ``sieve_window`` (span at most
        that many bytes).
        """
        from ..datatype.planner import plan_view_read

        runs = self._view_runs(view)
        plan = plan_view_read(
            runs, self.attrs.record_spec.record_size,
            sieve=sieve, sieve_factor=sieve_factor, sieve_window=sieve_window,
        )
        if plan.mode == "empty":
            return self.env.process(self._empty_result(), name=f"{self.name}.view")
        if plan.mode == "sieved":
            return self.env.process(
                self._read_sieved(plan), name=f"{self.name}.sieveread"
            )
        if plan.mode == "contiguous":
            return self.read_records(runs[0].start, runs[0].count)
        return self.read_gather([(r.start, r.count) for r in runs])

    def write_view(
        self,
        values: np.ndarray,
        view: "FileView | None" = None,
        *,
        sieve: bool = False,
        sieve_factor: float = 4.0,
        sieve_window: int = 1 << 22,
    ) -> Process:
        """Write ``values`` (rows in view order) to the view's records.

        Without ``sieve`` this is list I/O via :meth:`write_gather`. With
        ``sieve=True`` the runs are packed into read-modify-write windows:
        each window is read, overlaid with the wanted rows, and written
        back as one transfer. Windows are serialized through a per-file
        sieve lock, so concurrent *sieved* writers never tear each other's
        hole bytes; a sieved writer racing a non-sieved writer to the same
        window is an application conflict exactly like any overlapping
        write (the access sanitizer's territory).
        """
        from ..datatype.planner import plan_view_write

        runs = self._view_runs(view)
        spec = self.attrs.record_spec
        raw = spec.encode(values)
        count = raw.size // spec.record_size
        plan = plan_view_write(
            runs, spec.record_size,
            sieve=sieve, sieve_factor=sieve_factor, sieve_window=sieve_window,
        )
        total = plan.n_view_records
        if count != total:
            raise ValueError(
                f"view selects {total} records, values encode to {count}"
            )
        if plan.mode == "empty":
            return self.env.process(
                self._empty_result(0), name=f"{self.name}.view"
            )
        decoded = spec.decode(raw)
        if plan.mode == "sieved":
            return self.env.process(
                self._write_sieved(plan, decoded), name=f"{self.name}.sievewrite"
            )
        if plan.mode == "contiguous":
            op = self.write_records(runs[0].start, decoded)
        else:
            op = self.write_gather([(r.start, r.count) for r in runs], decoded)
        return self.env.process(
            self._count_after(op, total), name=f"{self.name}.view"
        )

    def _count_after(self, op, count: int):
        yield op
        return count

    def _empty_result(self, value=None):
        if value is None:
            value = self.attrs.record_spec.decode(b"")
        return value
        yield  # pragma: no cover - makes this a generator

    def _read_sieved(self, plan):
        covering = plan.covering  # record-unit runs
        if len(covering) == 1:
            datas = [(yield self.read_records(covering[0].offset, covering[0].nbytes))]
        else:
            cat = yield self.read_gather(
                [(c.offset, c.nbytes) for c in covering]
            )
            datas = plan.split(cat)
        return plan.scatter(datas)

    def _sieve_lock(self):
        # one lock per catalog entry, so every open of the file (and every
        # handle) serializes RMW windows against the same lock
        lock = getattr(self.entry, "sieve_lock", None)
        if lock is None:
            from ..sim.sync import SimLock

            lock = self.entry.sieve_lock = SimLock(self.env)
        return lock

    def _write_sieved(self, plan, decoded):
        row_of = plan.row_of
        lock = self._sieve_lock()
        for window, pieces in plan.windows:
            if plan.is_whole_window(window, pieces):
                p0 = pieces[0]
                start = row_of[p0.offset]
                yield self.write_records(p0.offset, decoded[start : start + p0.nbytes])
                continue
            # read-modify-write: atomic with respect to other sieved writers
            yield lock.acquire()
            try:
                buf = yield self.read_records(window.offset, window.nbytes)
                yield self.write_records(
                    window.offset, plan.overlay(window, pieces, buf, decoded)
                )
            finally:
                lock.release()
        return plan.n_view_records

    def _check_span(self, start: int, count: int) -> None:
        if start < 0 or count < 0 or start + count > self.n_records:
            raise ValueError(
                f"records [{start}, {start + count}) outside file of "
                f"{self.n_records}"
            )

    # -- tracing ----------------------------------------------------------------

    def trace(
        self,
        process: int,
        op: str,
        block: int,
        records: int,
        start: int | None = None,
    ) -> None:
        """Record one access in the trace recorder and conflict sanitizer.

        ``start`` is the first global record of the access when the caller
        knows it (record-granular ops); block-granular ops omit it and the
        sanitizer uses the block's whole record range.
        """
        if not self.pfs._tracing:
            return
        rec = self.pfs.recorder
        if rec is not None:
            rec.record(
                self.env.now,
                process,
                op,
                self.name,
                block,
                records,
                records * self.attrs.record_size,
            )
        sanitizer = self.pfs.sanitizer
        if sanitizer is not None:
            sanitizer.note_access(self, process, op, block, records, start)


class ParallelFileSystem:
    """Create, open, and delete parallel files on a volume."""

    def __init__(
        self,
        env: Environment,
        volume: Volume,
        recorder: TraceRecorder | None = None,
        sanitizer: "AccessConflictDetector | None" = None,
        io_nodes: "IONodeCluster | int | None" = None,
        qos: "QoSConfig | QoSManager | None" = None,
    ):
        self.env = env
        self.volume = volume
        self.catalog = Catalog()
        self._recorder = recorder
        self._sanitizer = sanitizer
        #: False when per-access tracing can be skipped entirely (no
        #: collecting recorder, no conflict sanitizer) — the fs layer's
        #: hot paths test this one flag instead of walking the hooks
        self._tracing = False
        self._update_tracing()
        #: the cluster serving this file system, when server-mediated
        self.io_cluster: "IONodeCluster | None" = None
        #: where file data traffic goes: the volume, or a MediatedVolume
        self.data_plane: "Volume | MediatedVolume" = volume
        #: the resilience layer, when attached (see :meth:`attach_resilience`)
        self.resilience = None
        #: the sharded metadata service, when attached
        #: (see :meth:`attach_metastore`)
        self.metastore = None
        #: the QoS manager, when attached (see :meth:`attach_qos`)
        self.qos: "QoSManager | None" = None
        self._qos_saved_policies: list = []
        #: extent-batched submission (list I/O) — see :meth:`set_batching`
        self.batch_io = False
        if io_nodes is not None:
            self.attach_io_nodes(io_nodes)
        if qos is not None:
            self.attach_qos(qos)

    # -- tracing hooks ---------------------------------------------------------

    @property
    def recorder(self) -> TraceRecorder | None:
        """The access-trace recorder fed by every file access, if any."""
        return self._recorder

    @recorder.setter
    def recorder(self, rec: TraceRecorder | None) -> None:
        self._recorder = rec
        self._update_tracing()

    @property
    def sanitizer(self) -> "AccessConflictDetector | None":
        """The conflict sanitizer fed by every file access, if any."""
        return self._sanitizer

    @sanitizer.setter
    def sanitizer(self, san: "AccessConflictDetector | None") -> None:
        self._sanitizer = san
        self._update_tracing()

    def _update_tracing(self) -> None:
        rec = self._recorder
        self._tracing = (
            rec is not None and not getattr(rec, "is_noop", False)
        ) or self._sanitizer is not None

    # -- extent-batched submission ----------------------------------------------

    def set_batching(self, enabled: bool) -> None:
        """Turn extent-batched (list-I/O) submission on or off.

        When on, multi-run handle transfers go through
        :meth:`ParallelFile.read_gather` / ``write_gather`` as one
        submission, and every plane in the data path merges
        device-contiguous segments into single multi-block device
        requests. Off by default: batching preserves the simulated
        *results* but changes request sizes and therefore timing — see
        ``docs/PERF.md`` for the per-organization rules.
        """
        self.batch_io = enabled
        plane = self.data_plane
        seen: set[int] = set()
        while plane is not None and id(plane) not in seen:
            seen.add(id(plane))
            if hasattr(plane, "coalesce"):
                plane.coalesce = enabled
            plane = getattr(plane, "inner", None)
        self.volume.coalesce = enabled

    # -- I/O-node opt-in -------------------------------------------------------

    def attach_io_nodes(
        self, io_nodes: "IONodeCluster | int", **cluster_kwargs: Any
    ) -> "IONodeCluster":
        """Route all file data traffic through dedicated I/O nodes (§4).

        ``io_nodes`` is an existing :class:`~repro.ionode.IONodeCluster`
        or a node count to build one over the volume's devices;
        ``cluster_kwargs`` (``queue_depth``, ``cache_blocks``, ``policy``,
        ...) are forwarded to the builder in that case. Files opened
        before or after attach both follow the new data plane unless they
        carry a per-file override. Returns the cluster in use.
        """
        from ..ionode.routing import IONodeCluster, MediatedVolume

        cluster = (
            IONodeCluster.build(self.env, self.volume.devices, io_nodes, **cluster_kwargs)
            if isinstance(io_nodes, int)
            else io_nodes
        )
        self.io_cluster = cluster
        self.data_plane = MediatedVolume(self.volume, cluster)
        return cluster

    def detach_io_nodes(self) -> None:
        """Return to direct-attached device access (the default)."""
        self.io_cluster = None
        self.data_plane = self.volume

    # -- resilience opt-in -----------------------------------------------------

    def attach_resilience(
        self,
        config: Any = None,
        *,
        group: Any = None,
        spares: list[Any] | None = None,
        rng: Any = None,
    ) -> Any:
        """Wrap the data plane in the online resilience layer.

        ``config`` is a :class:`~repro.resilience.ResilienceConfig` (a
        default one is built when omitted); ``group`` an optional
        :class:`~repro.storage.parity.ParityGroup` over the volume's
        devices (the degraded-read reconstruction source); ``spares`` idle
        :class:`~repro.devices.DeviceController` drives for the hot-spare
        rebuilder. Attach I/O nodes *before* calling this, so the layer
        wraps the server-mediated plane and can manage node failover.
        Returns the :class:`~repro.resilience.ResilientVolume` now serving
        as the data plane (also at ``self.resilience``).
        """
        from ..devices.shadow import ShadowPair
        from ..resilience import (
            FailoverManager,
            HotSpareRebuilder,
            ResilienceConfig,
            ResilientVolume,
        )

        config = config or ResilienceConfig()
        rv = ResilientVolume(self.data_plane, group=group, config=config, rng=rng)
        if spares:
            rv.rebuilder = HotSpareRebuilder(
                rv,
                spares,
                chunk_bytes=config.rebuild_chunk,
                throttle=config.rebuild_throttle,
            )
        if self.io_cluster is not None and config.failover:
            rv.failover = FailoverManager(
                self.env,
                self.io_cluster,
                rv.stats,
                breaker_threshold=config.breaker_threshold,
                breaker_cooldown=config.breaker_cooldown,
            )
            from ..ionode.routing import MediatedVolume

            if isinstance(rv.inner, MediatedVolume):
                # batched client requests also feed the breakers (and
                # reset them on success) — not just the per-device path
                rv.inner.failover = rv.failover
        # shadow pairs report their first degradation so auto-rebuild can
        # kick in even though the pair never surfaces a DeviceFailedError
        for idx, dev in enumerate(self.volume.devices):
            if isinstance(dev, ShadowPair):
                dev.on_degraded = (lambda i=idx: rv._note_failure(i))
        self.resilience = rv
        self.data_plane = rv
        return rv

    def detach_resilience(self) -> None:
        """Drop the resilience layer, keeping the plane it wrapped."""
        if self.resilience is not None:
            from ..ionode.routing import MediatedVolume

            inner = self.resilience.inner
            if isinstance(inner, MediatedVolume):
                inner.failover = None
            self.data_plane = inner
            self.resilience = None

    # -- sharded metadata opt-in -------------------------------------------------

    def attach_metastore(self, shards: int = 4, injector: Any = None) -> Any:
        """Swap the namespace onto the sharded, journaled metadata service.

        Every existing catalog entry is migrated (as journaled creates)
        into a :class:`~repro.metastore.MetadataService` partitioned
        across ``shards`` hash slices, and ``self.catalog`` becomes the
        drop-in :class:`~repro.metastore.ShardedCatalog` facade — so
        ``create``/``open``/``delete``/``rename`` gain write-ahead
        intent journaling, crash recovery, and lease epochs without any
        caller changing. When a resilience layer with node failover is
        attached (now or later via :meth:`attach_resilience`), call
        ``self.metastore.bind_failover(rv.failover)`` to re-home shards
        on node death. ``injector`` is the crash-point hook used by the
        robustness harness. Returns the service (also at
        ``self.metastore``).
        """
        from ..metastore import MetadataService, ShardedCatalog

        service = MetadataService(n_shards=shards, injector=injector)
        old = self.catalog
        for name in old.names():
            entry = old.get(name)
            service.create(name, entry)
        self.metastore = service
        self.catalog = ShardedCatalog(
            service,
            creates=getattr(old, "creates", 0),
            deletes=getattr(old, "deletes", 0),
        )
        if self._sanitizer is not None:
            service.sanitizer = self._sanitizer
        return service

    def detach_metastore(self) -> None:
        """Return to the plain in-memory catalog (entries carried over)."""
        if self.metastore is None:
            return
        plain = Catalog()
        for _, entry in self.metastore.entries():
            plain.add(entry)
        plain.creates = self.catalog.creates
        plain.deletes = self.catalog.deletes
        self.catalog = plain
        self.metastore = None

    # -- QoS opt-in -------------------------------------------------------------

    def attach_qos(self, config: "QoSConfig | QoSManager | None" = None) -> "QoSManager":
        """Thread the multi-tenant QoS layer through every queue point.

        ``config`` is a :class:`~repro.qos.QoSConfig` (a default one is
        built when omitted) or an existing :class:`~repro.qos.QoSManager`
        to share across file systems. Installs a tenant-aware scheduler
        on every device controller (both members of a
        :class:`~repro.devices.ShadowPair`) and on every I/O-node inbox,
        and gates client operations through per-tenant token buckets.
        Attach *after* ``attach_io_nodes`` / ``attach_resilience`` so the
        nodes exist to be scheduled; failover replay preserves tenant
        tags either way. Returns the manager (also at ``self.qos``).
        """
        from ..devices.shadow import ShadowPair
        from ..qos import QoSDevicePolicy, QoSManager

        manager = (
            config
            if isinstance(config, QoSManager)
            else QoSManager(self.env, config)
        )
        if manager.env is not self.env:
            raise ValueError("QoS manager belongs to a different Environment")
        cfg = manager.config
        if cfg.device_scheduling:
            for dev in self.volume.devices:
                members = (
                    [dev.primary, dev.shadow]
                    if isinstance(dev, ShadowPair)
                    else [dev]
                )
                for ctrl in members:
                    self._qos_saved_policies.append((ctrl, ctrl.policy))
                    ctrl.policy = QoSDevicePolicy(
                        manager.make_scheduler(ctrl.name), manager.resolve
                    )
        if cfg.node_scheduling and self.io_cluster is not None:
            for node in self.io_cluster.nodes:
                node.enable_qos(manager)
        self.qos = manager
        return manager

    def detach_qos(self) -> None:
        """Drop the QoS layer: restore device policies and FIFO inboxes."""
        if self.qos is None:
            return
        for ctrl, policy in self._qos_saved_policies:
            ctrl.policy = policy
        self._qos_saved_policies = []
        if self.io_cluster is not None:
            for node in self.io_cluster.nodes:
                if hasattr(node.inbox, "scheduler"):
                    node.disable_qos()
        self.qos = None

    # -- lifecycle ------------------------------------------------------------

    def create(
        self,
        name: str,
        organization: FileOrganization | str,
        *,
        n_records: int,
        record_size: int,
        records_per_block: int = 1,
        n_processes: int = 1,
        dtype: str = "uint8",
        category: FileCategory | None = None,
        layout: str | None = None,
        stripe_unit: int = DEFAULT_STRIPE_UNIT,
        n_devices: int | None = None,
        **org_params: Any,
    ) -> ParallelFile:
        """Create a parallel file.

        ``layout`` defaults to the organization's §4 implementation
        strategy (striped for S/SS/GDA, clustered for PS, interleaved for
        IS/PDA). ``n_devices`` defaults to the whole volume.
        """
        if isinstance(organization, str):
            organization = FileOrganization[organization.upper()]
        if category is None:
            # §2: files meant for outside consumption are standard; the
            # direct-access scratch organizations default to specialized.
            category = (
                FileCategory.STANDARD
                if organization.is_sequential
                else FileCategory.SPECIALIZED
            )
        layout_name = layout or organization.default_layout
        n_dev = n_devices or self.volume.n_devices
        if n_dev > self.volume.n_devices:
            raise ValueError(
                f"n_devices={n_dev} exceeds volume width {self.volume.n_devices}"
            )

        attrs = FileAttributes(
            name=name,
            organization=organization,
            category=category,
            record_size=record_size,
            records_per_block=records_per_block,
            n_records=n_records,
            n_processes=n_processes,
            layout=layout_name,
            layout_params={},
            org_params=dict(org_params),
            dtype=dtype,
        )
        org_map = make_map(
            organization, attrs.block_spec, n_records, n_processes, **org_params
        )
        data_layout = self._build_layout(layout_name, n_dev, attrs, org_map, stripe_unit)
        attrs.layout_params = self._layout_params(data_layout)
        extent = self.volume.allocate(data_layout, attrs.file_bytes)
        entry = CatalogEntry(attrs=attrs, extent=extent, layout=data_layout)
        self.catalog.add(entry)
        return ParallelFile(self, entry, org_map)

    def open(self, name: str, n_processes: int | None = None) -> ParallelFile:
        """Open an existing file, optionally with a different process count.

        Reopening with a different ``n_processes`` re-derives the internal
        view (legal: the physical layout is unchanged; only the access
        mapping moves). The §5 mismatch scenarios come from opening with a
        different *organization* — see ``repro.fs.convert``.
        """
        entry = self.catalog.get(name)
        attrs = entry.attrs
        p = n_processes if n_processes is not None else attrs.n_processes
        org_map = make_map(
            attrs.organization, attrs.block_spec, attrs.n_records, p,
            **attrs.org_params,
        )
        return ParallelFile(self, entry, org_map)

    def delete(self, name: str) -> None:
        """Remove a file and free its device extents."""
        entry = self.catalog.remove(name)
        self.volume.free(entry.extent)

    def exists(self, name: str) -> bool:
        """True iff a file of that name is in the catalog."""
        return name in self.catalog

    # -- layout construction -----------------------------------------------------

    def _build_layout(
        self,
        layout_name: str,
        n_devices: int,
        attrs: FileAttributes,
        org_map: OrganizationMap,
        stripe_unit: int,
    ) -> DataLayout:
        if layout_name == "striped":
            return StripedLayout(n_devices, stripe_unit)
        if layout_name == "interleaved":
            return InterleavedLayout(n_devices, attrs.block_spec.block_bytes)
        if layout_name == "clustered":
            # one contiguous partition per process (PS placement);
            # partition byte sizes follow the organization map
            if not org_map.is_static:
                raise OrganizationError(
                    "clustered layout requires a statically partitioned "
                    "organization"
                )
            sizes = [
                org_map.n_local_records(p) * attrs.record_size
                for p in range(org_map.n_processes)
            ]
            return ClusteredLayout(n_devices, sizes)
        raise ValueError(f"unknown layout {layout_name!r}")

    @staticmethod
    def _layout_params(layout: DataLayout) -> dict[str, Any]:
        if isinstance(layout, InterleavedLayout):
            return {"block_bytes": layout.block_bytes, "n_devices": layout.n_devices}
        if isinstance(layout, StripedLayout):
            return {"stripe_unit": layout.stripe_unit, "n_devices": layout.n_devices}
        if isinstance(layout, ClusteredLayout):
            return {
                "partition_bytes": list(layout.partition_bytes),
                "n_devices": layout.n_devices,
            }
        return {}
