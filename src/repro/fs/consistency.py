"""Backups and multi-device consistency (§5, problem area 3).

    "if a single drive in a parallel file system fails, it is not
    sufficient to restore just that disk from backups. Since each drive
    contains a slice of every file, all of the disks will have to be
    rolled back to the same point in time in order to maintain
    consistency."

:class:`BackupManager` snapshots every device of a volume at a point in
time and supports both restore policies: the *correct* full rollback and
the *insufficient* single-device restore — the latter kept so benchmark E9
can demonstrate exactly why it is insufficient (post-backup writes survive
on the other devices, leaving files self-inconsistent).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..devices.controller import DeviceController
from ..sim.engine import Environment
from ..storage.volume import Volume

__all__ = ["BackupSet", "BackupManager"]


@dataclass
class BackupSet:
    """Point-in-time snapshot of every device in a volume."""

    backup_id: int
    time: float
    snapshots: list[np.ndarray] = field(repr=False, default_factory=list)

    @property
    def n_devices(self) -> int:
        return len(self.snapshots)


class BackupManager:
    """Takes and restores whole-volume backups."""

    def __init__(self, env: Environment, volume: Volume):
        for d in volume.devices:
            if not isinstance(d, DeviceController):
                raise TypeError(
                    "BackupManager requires plain device controllers; "
                    "shadowed devices are their own backup (§5)"
                )
        self.env = env
        self.volume = volume
        self._next_id = 0
        self.backups: dict[int, BackupSet] = {}

    # -- taking backups -------------------------------------------------------

    def take(self):
        """Generator: back up every device; returns the :class:`BackupSet`.

        The cost is a full read of each device, proceeding in parallel
        across devices (one backup stream per drive).
        """
        devices: list[DeviceController] = self.volume.devices  # type: ignore[assignment]
        # Pay the read cost: one full-capacity read per device, in parallel.
        reads = [d.read(0, d.capacity_bytes) for d in devices]
        yield self.env.all_of(reads)
        bset = BackupSet(
            backup_id=self._next_id,
            time=self.env.now,
            snapshots=[np.asarray(ev.value, dtype=np.uint8).copy() for ev in reads],
        )
        self._next_id += 1
        self.backups[bset.backup_id] = bset
        return bset

    # -- restoring --------------------------------------------------------------

    def restore_device(self, bset: BackupSet, device_index: int):
        """Generator: restore ONE device to the backup point.

        This is the §5 "not sufficient" policy: any file with slices on
        other devices becomes a mix of backup-time and current data.
        """
        dev = self._device(device_index)
        snap = bset.snapshots[device_index]
        if dev.failed:
            dev.repair()
        yield dev.write(0, snap)
        return device_index

    def restore_all(self, bset: BackupSet):
        """Generator: roll EVERY device back to the backup point.

        The correct (and expensive) policy: consistent, but all data
        written after the backup is lost everywhere.
        """
        devices: list[DeviceController] = self.volume.devices  # type: ignore[assignment]
        for d in devices:
            if d.failed:
                d.repair()
        writes = [
            d.write(0, snap) for d, snap in zip(devices, bset.snapshots)
        ]
        yield self.env.all_of(writes)
        return len(writes)

    def _device(self, index: int) -> DeviceController:
        if not 0 <= index < self.volume.n_devices:
            raise ValueError(f"device {index} outside volume")
        return self.volume.devices[index]  # type: ignore[return-value]
