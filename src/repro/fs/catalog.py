"""The file catalog (directory).

§2 assumes "mechanisms for permanent storage of data and interactive
management of user programs and files" — the catalog is the file-count-
and-naming half of that, and the thing the Finite Element Machine
experience (§3) showed collapsing under file-per-process: thousands of
entries that "all had to be created, modified, and deleted individually".
Benchmark E12 counts catalog entries as its manageability metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

# Re-homed into repro.core.errors (the metastore and pfs layers share
# one exception vocabulary); imported here as back-compat aliases.
from ..core.errors import FileExistsError_, FileNotFoundError_
from ..storage.layout import DataLayout
from ..storage.volume import Extent
from .metadata import FileAttributes

__all__ = ["Catalog", "CatalogEntry", "FileExistsError_", "FileNotFoundError_"]


@dataclass
class CatalogEntry:
    attrs: FileAttributes
    extent: Extent
    layout: DataLayout


class Catalog:
    """In-memory directory of parallel files."""

    def __init__(self) -> None:
        self._entries: dict[str, CatalogEntry] = {}
        #: lifetime counters (manageability metrics for E12)
        self.creates = 0
        self.deletes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> list[str]:
        """All file names, sorted."""
        return sorted(self._entries)

    def entries(self) -> Iterator[tuple[str, CatalogEntry]]:
        """Iterate ``(name, entry)`` pairs (the fsck cross-check's input)."""
        return iter(self._entries.items())

    def add(self, entry: CatalogEntry) -> None:
        """Register a new file (rejects duplicates)."""
        name = entry.attrs.name
        if name in self._entries:
            raise FileExistsError_(name)
        self._entries[name] = entry
        self.creates += 1

    def get(self, name: str) -> CatalogEntry:
        """Look up a file's entry."""
        try:
            return self._entries[name]
        except KeyError:
            raise FileNotFoundError_(name) from None

    def remove(self, name: str) -> CatalogEntry:
        """Delete a file's entry, returning it."""
        entry = self.get(name)
        del self._entries[name]
        self.deletes += 1
        return entry

    def rename(self, old: str, new: str) -> None:
        """Rename a file (neither a create nor a delete in the counters).

        A single atomic swap: the entry is inserted under ``new`` before
        ``old`` is dropped, so no interleaved observer (or simulated
        crash) ever sees a window where the file is absent from the
        namespace — the same insert-before-drop ordering the journaled
        metastore rename uses.
        """
        if new in self._entries:
            raise FileExistsError_(new)
        entry = self.get(old)
        entry.attrs.name = new
        self._entries[new] = entry
        del self._entries[old]

    def to_dict(self) -> dict[str, Any]:
        """Metadata-only snapshot (extents/layouts are runtime objects)."""
        return {name: e.attrs.to_dict() for name, e in self._entries.items()}
