"""Executable view-mismatch options (§5, problem area 1).

The paper lists three ways out of a mismatch between how a file was
created and how it must be consumed; each is implemented here:

1. **Degraded alternate-view interface** — :func:`alternate_view`:
   access the file through the desired organization's map while leaving
   the physical layout alone. Correct, zero setup cost, but the desired
   sequence fragments into many transfers (benchmark E10 measures the
   degradation).
2. **Global-view fallback** — "force either the creator or the consumer to
   use the global view instead of accessing the file in parallel": simply
   use :meth:`ParallelFile.global_view`; no helper needed.
3. **Conversion utility** — :func:`convert_file`: physically copy the file
   into a new file with the desired organization and its native layout
   ("this could be expensive for large files" — the copy reads and writes
   every byte once).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.errors import OrganizationError
from ..core.mapping import OrganizationMap, make_map
from ..core.organizations import FileOrganization
from .internal_io import PartitionHandle

if TYPE_CHECKING:  # pragma: no cover
    from .pfs import ParallelFile, ParallelFileSystem

__all__ = ["alternate_view", "convert_file"]


def alternate_view(
    file: "ParallelFile",
    desired_org: FileOrganization | str,
    process: int,
    n_processes: int | None = None,
    **org_params: Any,
) -> PartitionHandle:
    """A handle presenting ``desired_org``'s internal view of ``file``.

    The file's physical layout is untouched; only the access pattern
    changes. Works for the static sequential organizations (PS, IS, S-as-
    PS etc.); the handle's reads fragment wherever the desired sequence is
    not contiguous in the file.
    """
    if not file.map.is_static:
        raise OrganizationError(
            f"alternate views require a static source organization; "
            f"{file.map.org.name} files assign records dynamically, so no "
            "fixed record sequence exists to reinterpret — convert_file "
            "the data into a static organization first"
        )
    p = n_processes if n_processes is not None else file.map.n_processes
    desired: OrganizationMap = make_map(
        desired_org, file.attrs.block_spec, file.n_records, p, **org_params
    )
    return PartitionHandle(file, process, org_map=desired)


def convert_file(
    pfs: "ParallelFileSystem",
    src: "ParallelFile",
    new_name: str,
    dst_org: FileOrganization | str,
    *,
    n_processes: int | None = None,
    chunk_records: int = 1024,
    layout: str | None = None,
    **org_params: Any,
):
    """Generator: copy ``src`` into a new file organized as ``dst_org``.

    Runs inside a simulated process (``yield from``). The copy streams
    through the global view in ``chunk_records`` pieces, so the cost is one
    full read plus one full write of the file — §5's "expensive for large
    files" made measurable. Returns the new :class:`ParallelFile`.

    The conversion is atomic at the catalog level: if the copy stops
    before completing — an exception in the stream, or the driving
    process being interrupted/cancelled (``GeneratorExit``) — the
    half-written destination is removed from the catalog and its extents
    freed, so an aborted conversion can never leave a truncated file
    that a later open would mistake for the real thing.
    """
    if chunk_records < 1:
        raise ValueError("chunk_records must be >= 1")
    p = n_processes if n_processes is not None else src.map.n_processes
    dst = pfs.create(
        new_name,
        dst_org,
        n_records=src.n_records,
        record_size=src.attrs.record_size,
        records_per_block=src.attrs.records_per_block,
        n_processes=p,
        dtype=src.attrs.dtype,
        category=src.attrs.category,
        layout=layout,
        **org_params,
    )
    try:
        src_view = src.global_view()
        dst_view = dst.global_view()
        while not src_view.eof:
            chunk = yield from src_view.read(chunk_records)
            yield from dst_view.write(chunk)
    except BaseException:
        if pfs.exists(new_name):
            pfs.delete(new_name)
        raise
    return dst
