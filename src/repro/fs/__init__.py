"""The parallel file system: catalog, views, conversion, consistency, recovery."""

from .catalog import Catalog, CatalogEntry, FileExistsError_, FileNotFoundError_
from .checkpoint import CheckpointManager
from .consistency import BackupManager, BackupSet
from .convert import alternate_view, convert_file
from .global_io import GlobalViewHandle
from .internal_io import (
    DirectHandle,
    OwnedDirectHandle,
    PartitionHandle,
    SequentialHandle,
    SSHandle,
    SSSession,
    make_internal_handle,
)
from .metadata import FileAttributes
from .pfs import ParallelFile, ParallelFileSystem
from .recovery import (
    DamageReport,
    ProtectionScheme,
    assess_damage,
    protection_overview,
    verify_file,
)

__all__ = [
    "Catalog",
    "CatalogEntry",
    "FileExistsError_",
    "FileNotFoundError_",
    "CheckpointManager",
    "BackupManager",
    "BackupSet",
    "alternate_view",
    "convert_file",
    "GlobalViewHandle",
    "DirectHandle",
    "OwnedDirectHandle",
    "PartitionHandle",
    "SequentialHandle",
    "SSHandle",
    "SSSession",
    "make_internal_handle",
    "FileAttributes",
    "ParallelFile",
    "ParallelFileSystem",
    "DamageReport",
    "ProtectionScheme",
    "assess_damage",
    "protection_overview",
    "verify_file",
]
