"""Versioned checkpointing of parallel files (§2's specialized-file use).

    "Examples in this category include temporary files used for
    intermediate results, checkpointing, and out-of-core storage..."

:class:`CheckpointManager` keeps rolling, versioned copies of a parallel
file as specialized PS files (same record shape, same partitioning), so a
parallel program can checkpoint each process's partition *in parallel*
and restart from the latest complete version. A two-phase commit mark
ensures a checkpoint interrupted by a crash is never restored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.organizations import FileCategory

if TYPE_CHECKING:  # pragma: no cover
    from .pfs import ParallelFile, ParallelFileSystem

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Rolling checkpoints of one parallel file."""

    def __init__(
        self,
        pfs: "ParallelFileSystem",
        source: "ParallelFile",
        basename: str | None = None,
        keep_last: int = 2,
    ):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.pfs = pfs
        self.source = source
        self.basename = basename or f"{source.name}.ckpt"
        self.keep_last = keep_last
        self._next_version = 0
        #: committed checkpoint versions, oldest first
        self.versions: list[int] = []

    def _name(self, version: int) -> str:
        return f"{self.basename}.{version:06d}"

    @property
    def latest(self) -> int | None:
        """The newest committed version, or None."""
        return self.versions[-1] if self.versions else None

    # -- checkpointing -----------------------------------------------------

    def save(self):
        """Generator: checkpoint the file; returns the new version number.

        Every process's partition is copied in parallel through the
        internal views; the version is committed only after all copies
        complete (the crash-consistency point). Old versions beyond
        ``keep_last`` are deleted.
        """
        env = self.source.env
        version = self._next_version
        self._next_version += 1
        attrs = self.source.attrs
        ckpt = self.pfs.create(
            self._name(version),
            attrs.organization,
            n_records=attrs.n_records,
            record_size=attrs.record_size,
            records_per_block=attrs.records_per_block,
            n_processes=attrs.n_processes,
            dtype=attrs.dtype,
            category=FileCategory.SPECIALIZED,
            **attrs.org_params,
        )

        def copier(q: int):
            recs = self.source.map.records_of(q)
            if len(recs) == 0:
                return
            src_h = self.source.internal_view(q)
            dst_h = ckpt.internal_view(q)
            data = yield from src_h.read_next(src_h.n_local_records)
            yield from dst_h.write_next(data)

        def driver():
            if self.source.map.is_static:
                workers = [
                    env.process(copier(q))
                    for q in range(attrs.n_processes)
                ]
                yield env.all_of(workers)
            else:
                # dynamic organizations checkpoint through the global view
                data = yield from self.source.global_view().read()
                yield from ckpt.global_view().write(data)

        yield env.process(driver())
        # commit point: only now is the version restorable
        self.versions.append(version)
        while len(self.versions) > self.keep_last:
            victim = self.versions.pop(0)
            self.pfs.delete(self._name(victim))
        return version

    # -- restarting ----------------------------------------------------------

    def restore(self, version: int | None = None):
        """Generator: copy a committed checkpoint back into the file.

        Defaults to the latest committed version. Raises
        :class:`ValueError` for unknown/uncommitted versions.
        """
        env = self.source.env
        if version is None:
            version = self.latest
        if version is None or version not in self.versions:
            raise ValueError(f"no committed checkpoint version {version}")
        ckpt = self.pfs.open(self._name(version))

        def driver():
            data = yield from ckpt.global_view().read()
            writer = self.source.global_view()
            writer.seek(0)
            yield from writer.write(data)

        yield env.process(driver())
        return version

    def discard_all(self) -> int:
        """Delete every committed checkpoint; returns how many."""
        n = 0
        for version in self.versions:
            self.pfs.delete(self._name(version))
            n += 1
        self.versions.clear()
        return n
