"""Versioned checkpointing of parallel files (§2's specialized-file use).

    "Examples in this category include temporary files used for
    intermediate results, checkpointing, and out-of-core storage..."

:class:`CheckpointManager` keeps rolling, versioned copies of a parallel
file as specialized PS files (same record shape, same partitioning), so a
parallel program can checkpoint each process's partition *in parallel*
and restart from the latest complete version. A two-phase commit mark
ensures a checkpoint interrupted by a crash is never restored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.organizations import FileCategory

if TYPE_CHECKING:  # pragma: no cover
    from .pfs import ParallelFile, ParallelFileSystem

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Rolling checkpoints of one parallel file."""

    def __init__(
        self,
        pfs: "ParallelFileSystem",
        source: "ParallelFile",
        basename: str | None = None,
        keep_last: int = 2,
    ):
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.pfs = pfs
        self.source = source
        self.basename = basename or f"{source.name}.ckpt"
        self.keep_last = keep_last
        self._next_version = 0
        #: committed checkpoint versions, oldest first
        self.versions: list[int] = []
        #: checkpoint files garbage-collected by :meth:`recover` (names)
        self.recovered_garbage: list[str] = []
        # opening over a namespace with leftover checkpoint files (a
        # crashed predecessor) adopts the committed ones and collects
        # the uncommitted debris
        self.recover()

    def _name(self, version: int) -> str:
        return f"{self.basename}.{version:06d}"

    def _marker(self, version: int) -> str:
        return self._name(version) + ".ok"

    def _mark_committed(self, version: int) -> None:
        """Durable commit record: a marker file next to the checkpoint.

        The checkpoint data file alone is not a commitment — a crash
        between the partition copies and this marker must leave a file
        that :meth:`recover` can tell apart from a restorable version.
        """
        self.pfs.create(
            self._marker(version), "S",
            n_records=1, record_size=1, n_processes=1,
        )

    @property
    def latest(self) -> int | None:
        """The newest committed version, or None."""
        return self.versions[-1] if self.versions else None

    # -- checkpointing -----------------------------------------------------

    def save(self):
        """Generator: checkpoint the file; returns the new version number.

        Every process's partition is copied in parallel through the
        internal views; the version is committed only after all copies
        complete (the crash-consistency point). Old versions beyond
        ``keep_last`` are deleted.
        """
        env = self.source.env
        version = self._next_version
        self._next_version += 1
        attrs = self.source.attrs
        ckpt = self.pfs.create(
            self._name(version),
            attrs.organization,
            n_records=attrs.n_records,
            record_size=attrs.record_size,
            records_per_block=attrs.records_per_block,
            n_processes=attrs.n_processes,
            dtype=attrs.dtype,
            category=FileCategory.SPECIALIZED,
            **attrs.org_params,
        )

        def copier(q: int):
            recs = self.source.map.records_of(q)
            if len(recs) == 0:
                return
            src_h = self.source.internal_view(q)
            dst_h = ckpt.internal_view(q)
            data = yield from src_h.read_next(src_h.n_local_records)
            yield from dst_h.write_next(data)

        def driver():
            if self.source.map.is_static:
                workers = [
                    env.process(copier(q))
                    for q in range(attrs.n_processes)
                ]
                yield env.all_of(workers)
            else:
                # dynamic organizations checkpoint through the global view
                data = yield from self.source.global_view().read()
                yield from ckpt.global_view().write(data)

        yield env.process(driver())
        # commit point: the durable marker is what makes the version
        # restorable — a crash anywhere before this line leaves only an
        # uncommitted data file, which recover() garbage-collects
        self._mark_committed(version)
        self.versions.append(version)
        while len(self.versions) > self.keep_last:
            victim = self.versions.pop(0)
            self._delete_version(victim)
        return version

    def _delete_version(self, version: int) -> None:
        """Delete a version's data file and marker (data first, so a
        crash mid-delete leaves a bare marker, not a resurrectable
        uncommitted data file)."""
        name = self._name(version)
        if name in self.pfs.catalog:
            self.pfs.delete(name)
        marker = self._marker(version)
        if marker in self.pfs.catalog:
            self.pfs.delete(marker)

    # -- restarting ----------------------------------------------------------

    def restore(self, version: int | None = None):
        """Generator: copy a committed checkpoint back into the file.

        Defaults to the latest committed version. Raises
        :class:`ValueError` for unknown/uncommitted versions.
        """
        env = self.source.env
        if version is None:
            version = self.latest
        if version is None or version not in self.versions:
            raise ValueError(f"no committed checkpoint version {version}")
        ckpt = self.pfs.open(self._name(version))

        def driver():
            data = yield from ckpt.global_view().read()
            writer = self.source.global_view()
            writer.seek(0)
            yield from writer.write(data)

        yield env.process(driver())
        return version

    def discard_all(self) -> int:
        """Delete every committed checkpoint; returns how many."""
        n = 0
        for version in self.versions:
            self._delete_version(version)
            n += 1
        self.versions.clear()
        return n

    # -- crash recovery ------------------------------------------------------

    def recover(self) -> list[str]:
        """Adopt committed checkpoints, garbage-collect uncommitted ones.

        Scans the catalog for this manager's checkpoint files. A version
        is committed iff both its data file and its ``.ok`` marker exist;
        those are (re)adopted into :attr:`versions`. A data file without
        a marker is debris from a save that crashed between the partition
        copies and the commit mark — previously such files leaked
        forever — and is deleted. A bare marker (crash mid-delete of an
        old version) is deleted too. Returns the deleted names; they are
        also accumulated in :attr:`recovered_garbage`.
        """
        prefix = f"{self.basename}."
        data: dict[int, str] = {}
        markers: dict[int, str] = {}
        for name in list(self.pfs.catalog.names()):
            if not name.startswith(prefix):
                continue
            rest = name[len(prefix):]
            into = data
            if rest.endswith(".ok"):
                rest, into = rest[:-3], markers
            if len(rest) == 6 and rest.isdigit():
                into[int(rest)] = name
        garbage: list[str] = []
        for version in sorted(data.keys() | markers.keys()):
            if version in data and version in markers:
                if version not in self.versions:
                    self.versions.append(version)
            elif version in data:
                self.pfs.delete(data[version])
                garbage.append(data[version])
            else:
                self.pfs.delete(markers[version])
                garbage.append(markers[version])
        self.versions.sort()
        if data or markers:
            self._next_version = max(
                self._next_version, max(data.keys() | markers.keys()) + 1
            )
        self.recovered_garbage.extend(garbage)
        return garbage
