"""Storage layer: layouts, volumes, extent allocation, parity groups."""

from .allocation import AllocationError, ExtentAllocator
from .layout import (
    ClusteredLayout,
    DataLayout,
    InterleavedLayout,
    Segment,
    StripedLayout,
    make_layout,
)
from .parity import ParityGroup, StaleParityError
from .volume import Extent, Volume

__all__ = [
    "AllocationError",
    "ExtentAllocator",
    "ClusteredLayout",
    "DataLayout",
    "InterleavedLayout",
    "Segment",
    "StripedLayout",
    "make_layout",
    "ParityGroup",
    "StaleParityError",
    "Extent",
    "Volume",
]
