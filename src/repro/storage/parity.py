"""Parity protection for striped device groups (Kim [3], §5).

    "For striped files, error correcting techniques have been developed
    which can handle either a single-bit error in a striped block, or
    complete failure of a single drive. In this system, parity information
    is stored on each drive, and checking codes are stored on one or more
    additional drives. However, this method does not appear to be
    applicable to situations in which the disks are being accessed
    independently, as in the PS and IS organizations."

:class:`ParityGroup` implements a check device holding the XOR of the data
devices at equal offsets, with two write disciplines:

* ``mode="synchronized"`` — parity is maintained only by synchronized
  full-stripe writes (:meth:`write_stripe`), as in Kim's synchronized
  interleaving. Independent single-device writes succeed but leave the
  affected parity units **stale**, which the group tracks; a subsequent
  reconstruction over a stale unit is detectably unsafe. This is the
  paper's claim made executable (benchmark E9).
* ``mode="rmw"`` — every independent write performs the read-modify-write
  parity update (read old data + old parity, write new data + new
  parity). Parity is never stale, at the price of two extra transfers per
  write. This is the ablation showing what it would have cost to cover
  PS/IS in 1989.
"""

from __future__ import annotations

import numpy as np

from ..devices.controller import DeviceController, DeviceFailedError
from ..sim.engine import Environment, Process

__all__ = ["ParityGroup", "StaleParityError"]


class StaleParityError(Exception):
    """Reconstruction attempted over a region whose parity is stale."""


class ParityGroup:
    """``len(data_devices)`` data drives + one check drive."""

    def __init__(
        self,
        env: Environment,
        data_devices: list[DeviceController],
        parity_device: DeviceController,
        mode: str = "synchronized",
        parity_unit: int = 4096,
    ):
        if len(data_devices) < 2:
            raise ValueError("a parity group needs at least 2 data devices")
        if mode not in ("synchronized", "rmw"):
            raise ValueError(f"unknown parity mode {mode!r}")
        if parity_unit < 1:
            raise ValueError("parity_unit must be >= 1")
        cap = parity_device.capacity_bytes
        if any(d.capacity_bytes != cap for d in data_devices):
            raise ValueError("all group members must have equal capacity")
        self.env = env
        self.data_devices = list(data_devices)
        self.parity_device = parity_device
        self.mode = mode
        self.parity_unit = parity_unit
        #: parity units whose check data is stale: set of (device, unit)
        self._stale: set[tuple[int, int]] = set()

    @property
    def n_data(self) -> int:
        return len(self.data_devices)

    # -- staleness bookkeeping ------------------------------------------------

    def _units(self, offset: int, nbytes: int) -> range:
        if nbytes == 0:
            return range(0)
        return range(offset // self.parity_unit, (offset + nbytes - 1) // self.parity_unit + 1)

    def is_consistent(self, device: int, offset: int, nbytes: int) -> bool:
        """True iff parity covering this range of ``device`` is up to date."""
        return not any((device, u) in self._stale for u in self._units(offset, nbytes))

    def reconstruct_safe(self, offset: int, nbytes: int) -> bool:
        """True iff reconstruction of *any* device over this range is safe.

        Stronger than :meth:`is_consistent`: a unit written independently
        on device B poisons reconstruction of device A too — the check
        data no longer XORs to any member's contents over that unit.
        """
        units = set(self._units(offset, nbytes))
        return not any(u in units for _, u in self._stale)

    def mark_stale(self, device: int, offset: int, nbytes: int) -> None:
        """Record that parity no longer covers ``device`` over the range."""
        for u in self._units(offset, nbytes):
            self._stale.add((device, u))

    def mark_fresh(self, device: int, offset: int, nbytes: int) -> None:
        """Clear staleness for parity units *fully contained* in the range.

        A partially-covered unit stays stale: bytes outside the freshly
        written region are still unprotected.
        """
        unit = self.parity_unit
        for u in self._units(offset, nbytes):
            if u * unit >= offset and (u + 1) * unit <= offset + nbytes:
                self._stale.discard((device, u))

    def replace_data_device(self, index: int, controller: DeviceController) -> None:
        """Swap a (rebuilt) controller in for data member ``index``."""
        if controller.capacity_bytes != self.parity_device.capacity_bytes:
            raise ValueError("replacement capacity must match the group")
        self.data_devices[index] = controller

    @property
    def stale_units(self) -> int:
        return len(self._stale)

    # -- writes ------------------------------------------------------------------

    def write_stripe(self, offset: int, chunks: list[bytes | np.ndarray]) -> Process:
        """Synchronized full-stripe write: one equal-length chunk per data
        device at the same ``offset``, plus the parity write, all in parallel."""
        if len(chunks) != self.n_data:
            raise ValueError(f"need {self.n_data} chunks, got {len(chunks)}")
        arrays = [
            np.frombuffer(c, dtype=np.uint8) if isinstance(c, (bytes, bytearray)) else np.asarray(c, dtype=np.uint8)
            for c in chunks
        ]
        length = len(arrays[0])
        if any(len(a) != length for a in arrays):
            raise ValueError("stripe chunks must be equal length")
        return self.env.process(self._do_write_stripe(offset, arrays, length), name="parity.stripe")

    def _do_write_stripe(self, offset: int, arrays: list[np.ndarray], length: int):
        parity = np.zeros(length, dtype=np.uint8)
        for a in arrays:
            np.bitwise_xor(parity, a, out=parity)
        events = [
            d.write(offset, a) for d, a in zip(self.data_devices, arrays)
        ]
        events.append(self.parity_device.write(offset, parity))
        yield self.env.all_of(events)
        for dev in range(self.n_data):
            for u in self._units(offset, length):
                self._stale.discard((dev, u))
        return length * self.n_data

    def write(self, device: int, offset: int, data: bytes | np.ndarray) -> Process:
        """Independent single-device write (PS/IS-style access)."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        if self.mode == "synchronized":
            return self.env.process(
                self._do_independent_stale(device, offset, arr), name="parity.write"
            )
        return self.env.process(
            self._do_independent_rmw(device, offset, arr), name="parity.rmw"
        )

    def _do_independent_stale(self, device: int, offset: int, arr: np.ndarray):
        # Data lands; parity is NOT updated — exactly the §5 gap.
        yield self.data_devices[device].write(offset, arr)
        for u in self._units(offset, len(arr)):
            self._stale.add((device, u))
        return len(arr)

    def _do_independent_rmw(self, device: int, offset: int, arr: np.ndarray):
        # new_parity = old_parity XOR old_data XOR new_data
        old_data_ev = self.data_devices[device].read(offset, len(arr))
        old_parity_ev = self.parity_device.read(offset, len(arr))
        yield self.env.all_of([old_data_ev, old_parity_ev])
        new_parity = np.bitwise_xor(
            np.bitwise_xor(old_parity_ev.value, old_data_ev.value), arr
        )
        data_w = self.data_devices[device].write(offset, arr)
        parity_w = self.parity_device.write(offset, new_parity)
        yield self.env.all_of([data_w, parity_w])
        return len(arr)

    # -- reads and reconstruction ---------------------------------------------

    def read(self, device: int, offset: int, nbytes: int) -> Process:
        """Read from a data device, reconstructing transparently if it failed."""
        return self.env.process(self._do_read(device, offset, nbytes), name="parity.read")

    def _do_read(self, device: int, offset: int, nbytes: int):
        target = self.data_devices[device]
        if not target.failed:
            data = yield target.read(offset, nbytes)
            return data
        return (yield from self._do_reconstruct(device, offset, nbytes))

    def reconstruct(self, device: int, offset: int, nbytes: int) -> Process:
        """Rebuild ``device``'s contents in a range from survivors + parity.

        Raises :class:`StaleParityError` if any covered parity unit is
        stale (the §5 "not applicable to independent access" case).
        """
        return self.env.process(
            self._do_reconstruct(device, offset, nbytes), name="parity.reconstruct"
        )

    def reconstruct_gen(self, device: int, offset: int, nbytes: int):
        """Generator form of :meth:`reconstruct` for use inside a process
        (the degraded-read hot path of ``repro.resilience``)."""
        return self._do_reconstruct(device, offset, nbytes)

    def _do_reconstruct(self, device: int, offset: int, nbytes: int):
        if not self.is_consistent(device, offset, nbytes):
            raise StaleParityError(
                f"parity stale for device {device} range "
                f"[{offset}, {offset + nbytes}); independent writes were "
                "made without synchronized parity maintenance"
            )
        events = []
        for i, d in enumerate(self.data_devices):
            if i == device:
                continue
            if d.failed:
                raise DeviceFailedError(d.name)  # double failure: unrecoverable
            events.append(d.read(offset, nbytes))
        if self.parity_device.failed:
            raise DeviceFailedError(self.parity_device.name)
        events.append(self.parity_device.read(offset, nbytes))
        yield self.env.all_of(events)
        out = np.zeros(nbytes, dtype=np.uint8)
        for ev in events:
            np.bitwise_xor(out, ev.value, out=out)
        return out

    def rebuild_device(self, device: int) -> Process:
        """Full-device rebuild onto a repaired drive (replacement disk)."""
        return self.env.process(self._do_rebuild(device), name="parity.rebuild")

    def _do_rebuild(self, device: int):
        target = self.data_devices[device]
        cap = target.capacity_bytes
        if not self.is_consistent(device, 0, cap):
            raise StaleParityError(
                f"cannot rebuild device {device}: parity has stale units"
            )
        data = yield from self._do_reconstruct(device, 0, cap)
        target.repair(contents=data)
        yield target.write(0, data)  # pay the write cost of the rebuild
        return cap
