"""Data layouts: placing a file's byte stream across multiple devices.

§4 of the paper maps each organization to a placement strategy:

* **Striped** — "For file types S and SS, disk striping can be used to
  spread the file across multiple drives ... The entire file is viewed as
  a string of bytes which is broken into units most appropriate for the
  I/O devices involved." Declustering for direct access (Livny et al.,
  Kim) is the same placement with a unit smaller than a logical block.
* **Interleaved** — "in the second case [IS], blocks are interleaved
  across the devices. This differs from normal disk striping, since
  processes are free to proceed at different rates." The placement unit is
  the *logical block*, so one process's block lives wholly on one device.
* **Clustered** — "one device is allocated to each block [partition]"
  (PS); each partition is stored contiguously on its device. With fewer
  devices than partitions, partitions wrap round-robin onto devices.

A layout is pure arithmetic: it maps file byte ranges to
``(device, device_offset, length)`` segments, with device offsets relative
to the file's allocated extent on that device. The :class:`Segment` lists
returned are in ascending file order, which is what the volume layer
relies on to reassemble reads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Segment",
    "DataLayout",
    "StripedLayout",
    "InterleavedLayout",
    "ClusteredLayout",
    "coalesce_segments",
    "plan_batch",
    "gather_payload",
    "scatter_payload",
    "make_layout",
]


@dataclass(frozen=True)
class Segment:
    """``length`` file bytes living at ``offset`` on ``device`` (extent-relative)."""

    device: int
    offset: int
    length: int


def coalesce_segments(segments: list[Segment]) -> list[Segment]:
    """Merge adjacent segments that are contiguous on the same device.

    This is list I/O at the submission layer: a run of per-unit (or
    per-block) segments that happens to be device-contiguous becomes one
    multi-block device request. Only *adjacent* entries merge — the input
    is in ascending file order and the volume layer reassembles reads by
    cumulative position, so reordering is not allowed. Merges may cross
    the boundaries between the byte ranges of a gather: the concatenated
    payload is still sliced correctly because lengths are preserved.
    """
    if len(segments) < 2:
        return segments
    out = [segments[0]]
    for seg in segments[1:]:
        prev = out[-1]
        if seg.device == prev.device and seg.offset == prev.offset + prev.length:
            out[-1] = Segment(prev.device, prev.offset, prev.length + seg.length)
        else:
            out.append(seg)
    return out


def plan_batch(
    segments: list[Segment],
) -> tuple[list[Segment], list[list[tuple[int, int]]]]:
    """Full list-I/O planning: group segments by device, merge device runs.

    :func:`coalesce_segments` only merges *list-adjacent* segments, which
    never fires on striped layouts (consecutive stripe units live on
    different devices, so same-device segments are never neighbours in
    file order). This planner merges each device's segments in the order
    they appear, whenever they are contiguous on that device — a striped
    scan of ``k`` rounds collapses to one request per device instead of
    one per stripe unit.

    Grouping reorders the submission list, so the caller can no longer
    reassemble by cumulative position. The second return value is the
    scatter plan: ``scatter[i]`` lists the ``(file_pos, length)`` pieces
    carried by ``merged[i]``, in payload order. ``file_pos`` is the
    cumulative position across the *input* segment list (for a gather of
    several ranges: across their concatenation). Submitting the merged
    segments concurrently is semantics-preserving — the unmerged batch was
    already issued as one parallel joined batch with no intra-batch
    ordering.
    """
    merged: list[Segment] = []
    scatter: list[list[tuple[int, int]]] = []
    last_on_device: dict[int, int] = {}
    pos = 0
    for seg in segments:
        i = last_on_device.get(seg.device)
        if i is not None:
            prev = merged[i]
            if seg.offset == prev.offset + prev.length:
                merged[i] = Segment(
                    prev.device, prev.offset, prev.length + seg.length
                )
                scatter[i].append((pos, seg.length))
                pos += seg.length
                continue
        merged.append(seg)
        scatter.append([(pos, seg.length)])
        last_on_device[seg.device] = len(merged) - 1
        pos += seg.length
    return merged, scatter


def gather_payload(
    arr: np.ndarray, pieces: list[tuple[int, int]]
) -> np.ndarray:
    """The write payload of one merged segment: its pieces of ``arr``."""
    if len(pieces) == 1:
        pos, length = pieces[0]
        return arr[pos : pos + length]
    return np.concatenate([arr[pos : pos + length] for pos, length in pieces])


def scatter_payload(
    out: np.ndarray, data: np.ndarray, pieces: list[tuple[int, int]]
) -> None:
    """Scatter one merged segment's read payload back to file positions."""
    off = 0
    for pos, length in pieces:
        out[pos : pos + length] = data[off : off + length]
        off += length


class DataLayout(ABC):
    """Mapping from a file's byte stream onto ``n_devices`` devices."""

    def __init__(self, n_devices: int):
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        self.n_devices = n_devices

    @property
    @abstractmethod
    def name(self) -> str:
        """Layout family name ('striped', 'interleaved', 'clustered')."""

    @abstractmethod
    def map_range(self, offset: int, length: int) -> list[Segment]:
        """Decompose file bytes ``[offset, offset+length)`` into segments."""

    @abstractmethod
    def device_bytes(self, file_bytes: int) -> list[int]:
        """Extent size each device must provide to hold ``file_bytes``."""

    def locate(self, offset: int) -> tuple[int, int]:
        """``(device, device_offset)`` of a single file byte."""
        seg = self.map_range(offset, 1)[0]
        return seg.device, seg.offset

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0:
            raise ValueError(f"invalid range ({offset}, {length})")


class StripedLayout(DataLayout):
    """Round-robin stripe units across devices (disk striping, §4).

    Unit ``u`` (bytes ``[u*su, (u+1)*su)``) is placed on device ``u % D``
    at device offset ``(u // D) * su``.
    """

    def __init__(self, n_devices: int, stripe_unit: int = 4096):
        super().__init__(n_devices)
        if stripe_unit < 1:
            raise ValueError("stripe_unit must be >= 1")
        self.stripe_unit = stripe_unit

    @property
    def name(self) -> str:
        return "striped"

    def map_range(self, offset: int, length: int) -> list[Segment]:
        self._check_range(offset, length)
        su, d = self.stripe_unit, self.n_devices
        segments: list[Segment] = []
        pos = offset
        end = offset + length
        while pos < end:
            unit = pos // su
            within = pos % su
            take = min(su - within, end - pos)
            segments.append(
                Segment(
                    device=unit % d,
                    offset=(unit // d) * su + within,
                    length=take,
                )
            )
            pos += take
        return segments

    def device_bytes(self, file_bytes: int) -> list[int]:
        if file_bytes < 0:
            raise ValueError("file_bytes must be >= 0")
        su, d = self.stripe_unit, self.n_devices
        n_units = -(-file_bytes // su)
        per_dev = [(n_units // d) * su] * d
        for extra in range(n_units % d):
            per_dev[extra] += su
        # the final (possibly partial) unit still reserves a full unit
        return per_dev


class InterleavedLayout(StripedLayout):
    """Blocks interleaved across devices (IS placement, §4).

    Striping with the unit pinned to the logical block size, so each
    logical block lives wholly on one device: block ``b`` on device
    ``b % D``. Ownership then aligns with the IS organization map's
    ``owner_of_block`` when the process count equals the device count.
    """

    def __init__(self, n_devices: int, block_bytes: int):
        super().__init__(n_devices, stripe_unit=block_bytes)
        self.block_bytes = block_bytes

    @property
    def name(self) -> str:
        return "interleaved"

    def device_of_block(self, block: int) -> int:
        """Device holding logical block ``block``."""
        if block < 0:
            raise ValueError("block must be >= 0")
        return block % self.n_devices


class ClusteredLayout(DataLayout):
    """Contiguous partitions, one device per partition (PS placement, §4).

    ``partition_bytes[p]`` is the byte length of partition ``p``; partition
    ``p`` goes to device ``p % D`` ("blocks belonging to several processes
    would be allocated to each device" when P > D). On each device,
    its partitions are stacked contiguously in partition order.
    """

    def __init__(self, n_devices: int, partition_bytes: list[int]):
        super().__init__(n_devices)
        if any(b < 0 for b in partition_bytes):
            raise ValueError("partition sizes must be >= 0")
        self.partition_bytes = list(partition_bytes)
        # file-space partition starts
        self._file_starts = np.zeros(len(partition_bytes) + 1, dtype=np.int64)
        np.cumsum(partition_bytes, out=self._file_starts[1:])
        # device-space base of each partition (stacking per device)
        self._dev_base = np.zeros(len(partition_bytes), dtype=np.int64)
        fill = [0] * n_devices
        for p, nbytes in enumerate(partition_bytes):
            dev = p % n_devices
            self._dev_base[p] = fill[dev]
            fill[dev] += nbytes
        self._dev_fill = fill

    @property
    def name(self) -> str:
        return "clustered"

    @property
    def n_partitions(self) -> int:
        return len(self.partition_bytes)

    @property
    def total_bytes(self) -> int:
        return int(self._file_starts[-1])

    def device_of_partition(self, p: int) -> int:
        """Device holding partition ``p`` (round-robin)."""
        if not 0 <= p < self.n_partitions:
            raise ValueError(f"partition {p} out of range")
        return p % self.n_devices

    def map_range(self, offset: int, length: int) -> list[Segment]:
        self._check_range(offset, length)
        if offset + length > self.total_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) exceeds file of "
                f"{self.total_bytes} bytes"
            )
        segments: list[Segment] = []
        pos = offset
        end = offset + length
        while pos < end:
            p = int(np.searchsorted(self._file_starts, pos, side="right") - 1)
            # skip zero-length partitions the search may land past
            p = min(p, self.n_partitions - 1)
            part_start = int(self._file_starts[p])
            part_end = int(self._file_starts[p + 1])
            within = pos - part_start
            take = min(part_end - pos, end - pos)
            segments.append(
                Segment(
                    device=p % self.n_devices,
                    offset=int(self._dev_base[p]) + within,
                    length=take,
                )
            )
            pos += take
        return segments

    def device_bytes(self, file_bytes: int) -> list[int]:
        if file_bytes != self.total_bytes:
            raise ValueError(
                f"clustered layout is sized for {self.total_bytes} bytes, "
                f"not {file_bytes}"
            )
        return list(self._dev_fill)


def make_layout(
    name: str,
    n_devices: int,
    *,
    stripe_unit: int = 4096,
    block_bytes: int | None = None,
    partition_bytes: list[int] | None = None,
) -> DataLayout:
    """Construct a layout by family name."""
    name = name.lower()
    if name == "striped":
        return StripedLayout(n_devices, stripe_unit)
    if name == "interleaved":
        if block_bytes is None:
            raise ValueError("interleaved layout requires block_bytes")
        return InterleavedLayout(n_devices, block_bytes)
    if name == "clustered":
        if partition_bytes is None:
            raise ValueError("clustered layout requires partition_bytes")
        return ClusteredLayout(n_devices, partition_bytes)
    raise ValueError(f"unknown layout {name!r}")
