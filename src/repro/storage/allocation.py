"""Per-device extent allocation.

§4 closes its PS/IS discussion with: "Work is needed here to determine the
best ways to allocate space on the disks to minimize this problem [seek
degradation when several processes share a device]." The allocator is
therefore explicit and pluggable rather than hidden in the volume: the
placement of extents on a device determines the seek distances benchmark
E3 measures.

:class:`ExtentAllocator` is a first-fit free-list allocator over one
device's byte space, with optional alignment so extents start on cylinder
boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExtentAllocator", "AllocationError"]


class AllocationError(Exception):
    """Device has no free extent large enough for the request."""


@dataclass
class _FreeSpan:
    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


class ExtentAllocator:
    """First-fit contiguous allocation over ``capacity`` bytes."""

    def __init__(self, capacity: int, alignment: int = 1):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if alignment < 1:
            raise ValueError("alignment must be >= 1")
        self.capacity = capacity
        self.alignment = alignment
        self._free: list[_FreeSpan] = (
            [_FreeSpan(0, capacity)] if capacity else []
        )
        self.allocated_bytes = 0

    # -- queries ------------------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return sum(s.length for s in self._free)

    @property
    def largest_free_extent(self) -> int:
        return max((s.length for s in self._free), default=0)

    @property
    def fragmentation(self) -> float:
        """1 - largest_free/total_free: 0 when free space is one extent."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_extent / free

    # -- operations ---------------------------------------------------------

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes`` (rounded up to alignment); returns start offset."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        need = -(-nbytes // self.alignment) * self.alignment
        for i, span in enumerate(self._free):
            # align the start within the span
            aligned = -(-span.start // self.alignment) * self.alignment
            waste = aligned - span.start
            if span.length >= waste + need:
                start = aligned
                # carve [start, start+need) out of span
                tail_start = start + need
                tail_len = span.end - tail_start
                replacement = []
                if waste:
                    replacement.append(_FreeSpan(span.start, waste))
                if tail_len:
                    replacement.append(_FreeSpan(tail_start, tail_len))
                self._free[i : i + 1] = replacement
                self.allocated_bytes += need
                return start
        raise AllocationError(
            f"no free extent of {need} bytes "
            f"(free={self.free_bytes}, largest={self.largest_free_extent})"
        )

    def free(self, start: int, nbytes: int) -> None:
        """Return an extent; coalesces with adjacent free spans."""
        if nbytes <= 0:
            raise ValueError("free size must be positive")
        need = -(-nbytes // self.alignment) * self.alignment
        end = start + need
        if start < 0 or end > self.capacity:
            raise ValueError("extent outside device")
        for span in self._free:
            if start < span.end and end > span.start:
                raise ValueError(
                    f"double free: [{start}, {end}) overlaps free span "
                    f"[{span.start}, {span.end})"
                )
        self._free.append(_FreeSpan(start, need))
        self._free.sort(key=lambda s: s.start)
        # coalesce
        merged: list[_FreeSpan] = []
        for span in self._free:
            if merged and merged[-1].end == span.start:
                merged[-1].length += span.length
            else:
                merged.append(span)
        self._free = merged
        self.allocated_bytes -= need
