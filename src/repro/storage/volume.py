"""Volumes: a file extent across an array of devices.

A :class:`Volume` owns a set of device controllers and their allocators.
Files (via ``repro.fs``) allocate an :class:`Extent` — one contiguous
region per device — and then read/write file byte ranges through a
:class:`~repro.storage.layout.DataLayout`, which decides which devices a
range touches. Segments on *different* devices proceed in parallel (this
is the entire point of parallel I/O); segments on the same device queue at
that device's controller.

Reads return the reassembled byte array; both operations are events (the
volume internally runs a join process).
"""

from __future__ import annotations

import numpy as np

from ..devices.controller import DeviceController
from ..devices.shadow import ShadowPair
from ..sim.engine import Environment, Event, Process
from .allocation import ExtentAllocator
from .layout import (
    DataLayout,
    Segment,
    gather_payload,
    plan_batch,
    scatter_payload,
)

__all__ = ["Extent", "Volume"]


class Extent:
    """Per-device base offsets of one file's allocation."""

    def __init__(self, bases: list[int | None], sizes: list[int]):
        if len(bases) != len(sizes):
            raise ValueError("bases and sizes must align")
        self.bases = bases      # None where a device contributes nothing
        self.sizes = sizes

    def base(self, device: int) -> int:
        """Base byte offset of this extent on ``device``."""
        b = self.bases[device]
        if b is None:
            raise ValueError(f"device {device} not part of this extent")
        return b

    @property
    def total_bytes(self) -> int:
        return sum(self.sizes)


class Volume:
    """An array of devices presented as an allocatable, layout-aware store."""

    def __init__(
        self,
        env: Environment,
        devices: list[DeviceController | ShadowPair],
        alignment: int = 1,
    ):
        if not devices:
            raise ValueError("a volume needs at least one device")
        self.env = env
        self.devices = list(devices)
        self.allocators = [
            ExtentAllocator(d.capacity_bytes, alignment) for d in devices
        ]
        #: extent-batched submission: merge device-contiguous segments into
        #: single multi-block requests before they hit the controllers.
        #: Off by default — batching changes simulated request sizes and
        #: therefore timing (see docs/PERF.md).
        self.coalesce = False

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    # -- allocation -----------------------------------------------------------

    def allocate(self, layout: DataLayout, file_bytes: int) -> Extent:
        """Reserve space for a ``file_bytes`` file under ``layout``."""
        if layout.n_devices > self.n_devices:
            raise ValueError(
                f"layout spans {layout.n_devices} devices, volume has "
                f"{self.n_devices}"
            )
        per_dev = layout.device_bytes(file_bytes)
        bases: list[int | None] = []
        done: list[tuple[int, int, int]] = []
        try:
            for dev, nbytes in enumerate(per_dev):
                if nbytes == 0:
                    bases.append(None)
                    continue
                start = self.allocators[dev].allocate(nbytes)
                bases.append(start)
                done.append((dev, start, nbytes))
        except Exception:
            for dev, start, nbytes in done:
                self.allocators[dev].free(start, nbytes)
            raise
        return Extent(bases, per_dev)

    def free(self, extent: Extent) -> None:
        """Return every device range of ``extent`` to the allocators."""
        for dev, (base, size) in enumerate(zip(extent.bases, extent.sizes)):
            if base is not None and size:
                self.allocators[dev].free(base, size)

    # -- I/O -------------------------------------------------------------------

    def read(
        self, extent: Extent, layout: DataLayout, offset: int, nbytes: int
    ) -> Process:
        """Read file bytes ``[offset, offset+nbytes)``; value is a uint8 array."""
        segments = layout.map_range(offset, nbytes)
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_read_plan(extent, merged, scatter, nbytes),
                name="volume.read",
            )
        return self.env.process(
            self._do_read(extent, segments, nbytes), name="volume.read"
        )

    def write(
        self, extent: Extent, layout: DataLayout, offset: int, data: bytes | np.ndarray
    ) -> Process:
        """Write ``data`` at file byte ``offset``; value is bytes written."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        segments = layout.map_range(offset, len(arr))
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_write_plan(extent, merged, scatter, arr),
                name="volume.write",
            )
        return self.env.process(
            self._do_write(extent, segments, arr), name="volume.write"
        )

    def read_many(
        self,
        extent: Extent,
        layout: DataLayout,
        ranges: list[tuple[int, int]],
    ) -> Process:
        """List-I/O read of several ``(offset, nbytes)`` file byte ranges.

        All ranges are mapped up front and submitted as one batch (one
        process, one join), with device-contiguous segments merged across
        range boundaries when ``coalesce`` is on. The value is the single
        concatenated uint8 array, ranges in list order.
        """
        segments: list[Segment] = []
        total = 0
        for offset, nbytes in ranges:
            segments.extend(layout.map_range(offset, nbytes))
            total += nbytes
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_read_plan(extent, merged, scatter, total),
                name="volume.readmany",
            )
        return self.env.process(
            self._do_read(extent, segments, total), name="volume.readmany"
        )

    def write_many(
        self,
        extent: Extent,
        layout: DataLayout,
        ranges: list[tuple[int, int]],
        data: bytes | np.ndarray,
    ) -> Process:
        """List-I/O write: ``data`` is the concatenation of all ranges."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        segments: list[Segment] = []
        total = 0
        for offset, nbytes in ranges:
            segments.extend(layout.map_range(offset, nbytes))
            total += nbytes
        if total != arr.size:
            raise ValueError(f"ranges cover {total} bytes, data has {arr.size}")
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            return self.env.process(
                self._do_write_plan(extent, merged, scatter, arr),
                name="volume.writemany",
            )
        return self.env.process(
            self._do_write(extent, segments, arr), name="volume.writemany"
        )

    def _do_read(self, extent: Extent, segments: list[Segment], nbytes: int):
        events: list[Event] = []
        for seg in segments:
            dev = self.devices[seg.device]
            events.append(dev.read(extent.base(seg.device) + seg.offset, seg.length))
        if events:
            yield self.env.all_of(events)
        out = np.empty(nbytes, dtype=np.uint8)
        pos = 0
        for seg, ev in zip(segments, events):
            out[pos : pos + seg.length] = ev.value
            pos += seg.length
        return out

    def _do_write(self, extent: Extent, segments: list[Segment], arr: np.ndarray):
        events: list[Event] = []
        pos = 0
        for seg in segments:
            dev = self.devices[seg.device]
            chunk = arr[pos : pos + seg.length]
            events.append(dev.write(extent.base(seg.device) + seg.offset, chunk))
            pos += seg.length
        if events:
            yield self.env.all_of(events)
        return int(arr.size)

    # -- list-I/O (plan_batch) submission: one request per device run ----------

    def _do_read_plan(
        self,
        extent: Extent,
        segments: list[Segment],
        scatter: list[list[tuple[int, int]]],
        nbytes: int,
    ):
        events: list[Event] = []
        for seg in segments:
            dev = self.devices[seg.device]
            events.append(dev.read(extent.base(seg.device) + seg.offset, seg.length))
        if events:
            yield self.env.all_of(events)
        out = np.empty(nbytes, dtype=np.uint8)
        for pieces, ev in zip(scatter, events):
            scatter_payload(out, ev.value, pieces)
        return out

    def _do_write_plan(
        self,
        extent: Extent,
        segments: list[Segment],
        scatter: list[list[tuple[int, int]]],
        arr: np.ndarray,
    ):
        events: list[Event] = []
        for seg, pieces in zip(segments, scatter):
            dev = self.devices[seg.device]
            events.append(
                dev.write(
                    extent.base(seg.device) + seg.offset,
                    gather_payload(arr, pieces),
                )
            )
        if events:
            yield self.env.all_of(events)
        return int(arr.size)

    # -- zero-time inspection (tests, recovery) ---------------------------------

    def peek(self, extent: Extent, layout: DataLayout, offset: int, nbytes: int) -> np.ndarray:
        """Zero-time read of file bytes (tests, verification)."""
        out = np.empty(nbytes, dtype=np.uint8)
        pos = 0
        for seg in layout.map_range(offset, nbytes):
            dev = self.devices[seg.device]
            out[pos : pos + seg.length] = dev.peek(
                extent.base(seg.device) + seg.offset, seg.length
            )
            pos += seg.length
        return out

    def poke(self, extent: Extent, layout: DataLayout, offset: int, data: bytes | np.ndarray) -> None:
        """Zero-time write of file bytes (fault injection)."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        pos = 0
        for seg in layout.map_range(offset, len(arr)):
            dev = self.devices[seg.device]
            dev.poke(extent.base(seg.device) + seg.offset, arr[pos : pos + seg.length])
            pos += seg.length
