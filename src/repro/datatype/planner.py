"""The shared request planner: one slab-lowering core for both backends.

Before this module, the executable half of the datatype layer lived only
on the simulator's :class:`~repro.fs.pfs.ParallelFile` — view flattening,
covering-extent read planning, scatter, and read-modify-write window
packing were welded to simulated processes. The live backend
(``repro.live``) and the dataset layer (``repro.dataset``) need the same
decisions against real file descriptors, so the planning now lives here
as pure functions over record runs:

* :func:`check_view_runs` — flatten a view and bounds-check it against a
  file's record count;
* :func:`plan_view_read` — decide the access mode (empty / contiguous /
  list I/O / sieved) and, for sieving, the covering extents plus the
  scatter map back to view order;
* :func:`plan_view_write` — the write-side dual: mode plus RMW windows,
  each with its overlay recipe and the view-order row offsets.

Executors differ only in *how* they move bytes: the simulator yields
device processes, the live backend calls ``os.pread``/``os.pwrite``.
Neither re-derives a single planning decision — that is the invariant
the dataset identity tests pin (sim and live media bytes agree because
both executed the same plan).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.convert import Run
from .sieve import (
    DEFAULT_SIEVE_FACTOR,
    DEFAULT_SIEVE_WINDOW,
    plan_sieved_reads,
    plan_sieved_writes,
)
from .views import FileView

__all__ = [
    "check_view_runs",
    "ViewReadPlan",
    "ViewWritePlan",
    "plan_view_read",
    "plan_view_write",
]

#: access modes shared by the read and write plans
MODE_EMPTY = "empty"            # the view selects nothing
MODE_CONTIGUOUS = "contiguous"  # one run: a single positioned transfer
MODE_LIST = "list"              # many runs: one list-I/O submission
MODE_SIEVED = "sieved"          # covering extents (read) / RMW windows (write)


def check_view_runs(view: FileView, n_records: int) -> list[Run]:
    """Flatten ``view`` and bounds-check it against ``n_records``.

    Returns the maximal contiguous record runs; raises ``ValueError``
    (the historical :meth:`ParallelFile.read_view` contract) when the
    view extends past the file.
    """
    runs = view.flatten()
    if runs and runs[-1].stop > n_records:
        raise ValueError(
            f"view extent [{runs[0].start}, {runs[-1].stop}) outside file "
            f"of {n_records} records"
        )
    return runs


@dataclass(frozen=True)
class ViewReadPlan:
    """How to read a view: the mode, and the sieve geometry if any.

    ``covering`` holds the covering extents of a sieved read as record
    runs (``offset`` / ``nbytes`` counted in records, the
    :mod:`repro.ionode.aggregator` convention). The executor reads each
    covering extent, then calls :meth:`scatter` to assemble the wanted
    records in view order.
    """

    mode: str
    runs: tuple[Run, ...]
    covering: tuple = ()

    @property
    def n_view_records(self) -> int:
        return sum(r.count for r in self.runs)

    def split(self, cat: np.ndarray) -> list[np.ndarray]:
        """Slice one concatenated covering-extent read back into
        per-extent record arrays (list-I/O executors return the
        extents' records concatenated in submission order)."""
        out, pos = [], 0
        for c in self.covering:
            out.append(cat[pos : pos + c.nbytes])
            pos += c.nbytes
        return out

    def scatter(self, datas: Sequence[np.ndarray]) -> np.ndarray:
        """View-order record rows out of the covering extents' records."""
        first = datas[0]
        out = np.empty(
            (self.n_view_records,) + first.shape[1:], dtype=first.dtype
        )
        ci = pos = 0
        for run in self.runs:
            while run.start >= self.covering[ci].end:
                ci += 1
            rel = run.start - self.covering[ci].offset
            out[pos : pos + run.count] = datas[ci][rel : rel + run.count]
            pos += run.count
        return out


@dataclass(frozen=True)
class ViewWritePlan:
    """How to write a view: the mode, and the RMW windows if sieved.

    ``windows`` is a tuple of ``(window, pieces)`` pairs in record units
    (see :func:`repro.ionode.aggregator.plan_rmw`); ``row_of`` maps each
    run's first record to its row position in the view-order payload.
    """

    mode: str
    runs: tuple[Run, ...]
    windows: tuple = ()

    @property
    def n_view_records(self) -> int:
        return sum(r.count for r in self.runs)

    @property
    def row_of(self) -> dict[int, int]:
        """Row position of each run's records in the view-order payload."""
        out, pos = {}, 0
        for r in self.runs:
            out[r.start] = pos
            pos += r.count
        return out

    @staticmethod
    def is_whole_window(window, pieces) -> bool:
        """True when the pieces cover the window exactly — a pure
        overwrite needing no read-modify-write (and no lock)."""
        return len(pieces) == 1 and pieces[0].nbytes == window.nbytes

    def overlay(self, window, pieces, buf: np.ndarray, decoded: np.ndarray) -> np.ndarray:
        """A copy of the window's records with the wanted rows applied.

        ``buf`` holds the window's current records, ``decoded`` the full
        view-order payload; the executor writes the returned array back
        as one transfer.
        """
        row_of = self.row_of
        out = np.array(buf, copy=True)
        for p in pieces:
            rel = p.offset - window.offset
            start = row_of[p.offset]
            out[rel : rel + p.nbytes] = decoded[start : start + p.nbytes]
        return out


def plan_view_read(
    runs: Sequence[Run],
    record_size: int = 1,
    *,
    sieve: bool = False,
    sieve_factor: float = DEFAULT_SIEVE_FACTOR,
    sieve_window: int = DEFAULT_SIEVE_WINDOW,
) -> ViewReadPlan:
    """Plan a view read over flattened record ``runs``.

    Single-run views are one contiguous transfer regardless of ``sieve``;
    multi-run views become list I/O, or covering-extent sieved reads when
    ``sieve`` is set (``sieve_window`` stays byte-denominated and is
    converted with ``record_size``).
    """
    runs = tuple(runs)
    if not runs:
        return ViewReadPlan(MODE_EMPTY, runs)
    if len(runs) == 1:
        return ViewReadPlan(MODE_CONTIGUOUS, runs)
    if not sieve:
        return ViewReadPlan(MODE_LIST, runs)
    plan = plan_sieved_reads(
        runs, record_size, sieve_factor=sieve_factor, sieve_window=sieve_window
    )
    return ViewReadPlan(MODE_SIEVED, runs, covering=tuple(plan.reads))


def plan_view_write(
    runs: Sequence[Run],
    record_size: int = 1,
    *,
    sieve: bool = False,
    sieve_factor: float = DEFAULT_SIEVE_FACTOR,
    sieve_window: int = DEFAULT_SIEVE_WINDOW,
) -> ViewWritePlan:
    """Plan a view write over flattened record ``runs`` (see
    :func:`plan_view_read`; sieved writes become RMW windows)."""
    runs = tuple(runs)
    if not runs:
        return ViewWritePlan(MODE_EMPTY, runs)
    if len(runs) == 1:
        return ViewWritePlan(MODE_CONTIGUOUS, runs)
    if not sieve:
        return ViewWritePlan(MODE_LIST, runs)
    windows = plan_sieved_writes(
        runs, record_size, sieve_factor=sieve_factor, sieve_window=sieve_window
    )
    return ViewWritePlan(
        MODE_SIEVED, runs,
        windows=tuple((w, tuple(ps)) for w, ps in windows),
    )
