"""Hyperslab lowering: multidimensional selections as file views.

The Parallel netCDF lineage (PAPERS.md) puts a typed, self-describing
array interface above the byte-range machinery: applications ask for a
*hyperslab* — per-dimension ``(start, count)`` of a row-major array —
and the library compiles that request into the datatype layer's view
patterns (:class:`~repro.datatype.views.StridedView` /
:class:`~repro.datatype.views.NestedStridedView` /
:class:`~repro.datatype.views.IndexedView`), which then ride the
existing list-I/O, data-sieving, and two-phase collective paths.

This module is the pure arithmetic half: validation with clear
:class:`~repro.core.errors.OrganizationError` messages, the slab →
view compilation, and the element-index expansion used by per-element
oracles and collective index lists. Nothing here touches an engine or a
file descriptor, so the same functions serve the simulated and the live
backend (``repro.dataset`` builds on both).

Units: a slab selects *elements* of a variable. ``slab_to_view`` maps
element ``e`` to ``scale`` consecutive records starting at
``base + e * scale`` — with ``scale`` the element size in records, the
returned view is directly executable against the backing file (a
container's 1-byte-record file uses ``scale = dtype.itemsize``).
"""

from __future__ import annotations

from functools import reduce
from typing import Sequence

import numpy as np

from ..core.errors import OrganizationError
from .views import (
    ContiguousView,
    FileView,
    IndexedView,
    NestedStridedView,
    StridedView,
)

__all__ = [
    "validate_slab",
    "slab_shape",
    "slab_size",
    "slab_to_view",
    "slab_indices",
]


def validate_slab(
    shape: Sequence[int],
    start: Sequence[int],
    count: Sequence[int],
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Check a hyperslab against a row-major array ``shape``.

    Returns the normalized ``(start, count)`` int tuples. Raises
    :class:`OrganizationError` naming the offending dimension for rank
    mismatches, negative starts or counts, and out-of-bounds selections
    (including integer overflow past the dimension extent). Zero counts
    are legal: they select the empty slab.
    """
    shape = tuple(int(s) for s in shape)
    if any(s < 0 for s in shape):
        raise OrganizationError(f"variable shape {shape} has a negative extent")
    try:
        start = tuple(int(s) for s in start)
        count = tuple(int(c) for c in count)
    except (TypeError, ValueError) as exc:
        raise OrganizationError(f"slab indices must be integers: {exc}") from None
    if len(start) != len(shape) or len(count) != len(shape):
        raise OrganizationError(
            f"slab rank mismatch: variable has {len(shape)} dimensions, "
            f"start has {len(start)} and count has {len(count)}"
        )
    for d, (ext, s, c) in enumerate(zip(shape, start, count)):
        if s < 0:
            raise OrganizationError(
                f"dimension {d}: start {s} is negative"
            )
        if c < 0:
            raise OrganizationError(
                f"dimension {d}: count {c} is negative"
            )
        if s + c > ext:
            raise OrganizationError(
                f"dimension {d}: slab [{s}, {s + c}) outside extent {ext}"
            )
    return start, count


def slab_shape(count: Sequence[int]) -> tuple[int, ...]:
    """The shape of the array a slab selects (its ``count`` tuple)."""
    return tuple(int(c) for c in count)


def slab_size(count: Sequence[int]) -> int:
    """Number of elements a slab selects (0 if any count is 0)."""
    out = 1
    for c in count:
        out *= int(c)
    return out


def _strides(shape: tuple[int, ...]) -> tuple[int, ...]:
    """Row-major element strides of ``shape``."""
    out = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        out[d] = out[d + 1] * shape[d + 1]
    return tuple(out)


def slab_to_view(
    shape: Sequence[int],
    start: Sequence[int],
    count: Sequence[int],
    *,
    base: int = 0,
    scale: int = 1,
) -> FileView:
    """Compile a hyperslab into the cheapest matching file view.

    The contiguous tail of fully selected dimensions folds into one run;
    the next partial dimension becomes a :class:`StridedView`; every
    further partial dimension wraps a :class:`NestedStridedView` around
    it. Degenerate slabs compile to what they are: a full-extent slab is
    one :class:`ContiguousView`, a size-0 slab an empty
    :class:`IndexedView`.

    ``base`` and ``scale`` place the slab in file-record space: element
    ``e`` occupies records ``[base + e*scale, base + (e+1)*scale)``.
    """
    start, count = validate_slab(shape, start, count)
    shape = tuple(int(s) for s in shape)
    if scale < 1:
        raise OrganizationError(f"scale must be >= 1, got {scale}")
    if base < 0:
        raise OrganizationError(f"base must be >= 0, got {base}")
    if slab_size(count) == 0:
        return IndexedView(())
    n = len(shape)
    if n == 0:
        return ContiguousView(base, scale)
    strides = _strides(shape)
    # k: outermost dimension of the contiguous tail — every dimension
    # after k is fully selected, so dim k's range is one run of
    # count[k] * strides[k] elements
    k = n - 1
    while k > 0 and start[k] == 0 and count[k] == shape[k]:
        k -= 1
    chunk = count[k] * strides[k]
    offset0 = sum(s * st for s, st in zip(start, strides))
    view: FileView = ContiguousView(base + offset0 * scale, chunk * scale)
    for d in range(k - 1, -1, -1):
        if count[d] == 1:
            continue
        if isinstance(view, ContiguousView):
            run = view.runs()[0]
            view = StridedView(
                run.start, count[d], run.count, strides[d] * scale
            )
        else:
            view = NestedStridedView(view, count[d], strides[d] * scale)
    return view


def slab_indices(
    shape: Sequence[int],
    start: Sequence[int],
    count: Sequence[int],
) -> np.ndarray:
    """Every element's linear (row-major) index, in slab order.

    Slab order for a row-major array is ascending, so this is also the
    file order — the per-element oracle and the collective explicit
    ``indices=`` argument both consume it directly.
    """
    start, count = validate_slab(shape, start, count)
    shape = tuple(int(s) for s in shape)
    if slab_size(count) == 0:
        return np.empty(0, dtype=np.int64)
    if len(shape) == 0:
        return np.zeros(1, dtype=np.int64)
    strides = _strides(shape)
    axes = [
        (int(s) + np.arange(int(c), dtype=np.int64)) * st
        for s, c, st in zip(start, count, strides)
    ]
    return reduce(np.add.outer, axes).reshape(-1)
