"""Client-side data sieving over record runs.

Rung three of the access-optimization ladder: instead of issuing one
transfer per noncontiguous piece (per-segment) or one batched submission
of exact pieces (list I/O), *data sieving* transfers covering extents —
reads fetch one span and scatter the wanted records out of it; writes
read-modify-write a window, overlaying the wanted records before writing
the span back.

The planning arithmetic is the I/O-node aggregator's
(:mod:`repro.ionode.aggregator`) — the same ``plan_reads`` /
``plan_rmw`` logic Crockett's dedicated I/O processors apply to *batches
of requests* applies unchanged to one client's *noncontiguous pattern*,
just denominated in records instead of bytes. These wrappers do the unit
conversion: runs are record runs (``repro.core.convert.Run``), the
``sieve_window`` knob stays byte-denominated (it bounds a real buffer).

Concurrency: an RMW window rewrites *hole* records it only read. The
executable path (:meth:`ParallelFile.write_view
<repro.fs.pfs.ParallelFile.write_view>`) serializes windows through a
per-file sieve lock so concurrent sieved writers cannot tear each other's
updates; see the module docs there for the exact contract.
"""

from __future__ import annotations

from typing import Sequence

from ..core.convert import Run
from ..ionode.aggregator import ReadPlan, plan_reads, plan_rmw

__all__ = ["DEFAULT_SIEVE_FACTOR", "DEFAULT_SIEVE_WINDOW",
           "plan_sieved_reads", "plan_sieved_writes"]

#: covering span may exceed the wanted payload by at most this factor
DEFAULT_SIEVE_FACTOR = 4.0
#: covering span may not exceed this many bytes (the sieve buffer size)
DEFAULT_SIEVE_WINDOW = 1 << 22


def _window_records(sieve_window: int, record_size: int) -> int:
    if sieve_window < 1:
        raise ValueError("sieve_window must be >= 1 byte")
    return max(1, sieve_window // record_size)


def plan_sieved_reads(
    runs: Sequence[Run],
    record_size: int,
    *,
    sieve_factor: float = DEFAULT_SIEVE_FACTOR,
    sieve_window: int = DEFAULT_SIEVE_WINDOW,
) -> ReadPlan:
    """Covering-extent read plan for record ``runs`` (record units).

    The returned plan's ``reads`` are record runs (``offset``/``nbytes``
    counted in records); ``payload``/``waste`` follow the same unit.
    """
    return plan_reads(
        [(r.start, r.count) for r in runs],
        sieve=True,
        sieve_factor=sieve_factor,
        sieve_window=_window_records(sieve_window, record_size),
    )


def plan_sieved_writes(
    runs: Sequence[Run],
    record_size: int,
    *,
    sieve_factor: float = DEFAULT_SIEVE_FACTOR,
    sieve_window: int = DEFAULT_SIEVE_WINDOW,
):
    """RMW window plan for record ``runs``: ``(window, pieces)`` pairs in
    record units (see :func:`repro.ionode.aggregator.plan_rmw`)."""
    return plan_rmw(
        [(r.start, r.count) for r in runs],
        sieve_factor=sieve_factor,
        sieve_window=_window_records(sieve_window, record_size),
    )
