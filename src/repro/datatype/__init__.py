"""Datatype layer: file views, hyperslabs, and request planning.

``views`` describes a request as a pattern (strided, nested-strided,
indexed) instead of a materialized extent list; ``slab`` compiles
multidimensional hyperslab selections into those patterns; ``sieve``
plans covering-extent reads and read-modify-write windows; ``planner``
turns a flattened view into an executable access plan (empty /
contiguous / list I/O / sieved) shared by the simulated and live
backends. The executors are :class:`~repro.fs.pfs.ParallelFile`
(``set_view`` / ``read_view`` / ``write_view``) and
:class:`~repro.live.backend.LiveParallelFile`.
"""

from .planner import (
    ViewReadPlan,
    ViewWritePlan,
    check_view_runs,
    plan_view_read,
    plan_view_write,
)
from .sieve import (
    DEFAULT_SIEVE_FACTOR,
    DEFAULT_SIEVE_WINDOW,
    plan_sieved_reads,
    plan_sieved_writes,
)
from .slab import (
    slab_indices,
    slab_shape,
    slab_size,
    slab_to_view,
    validate_slab,
)
from .views import (
    ContiguousView,
    FileView,
    IndexedView,
    NestedStridedView,
    StridedView,
    view_of_map,
)

__all__ = [
    "FileView",
    "ContiguousView",
    "StridedView",
    "NestedStridedView",
    "IndexedView",
    "view_of_map",
    "DEFAULT_SIEVE_FACTOR",
    "DEFAULT_SIEVE_WINDOW",
    "plan_sieved_reads",
    "plan_sieved_writes",
    "validate_slab",
    "slab_shape",
    "slab_size",
    "slab_to_view",
    "slab_indices",
    "check_view_runs",
    "ViewReadPlan",
    "ViewWritePlan",
    "plan_view_read",
    "plan_view_write",
]
