"""Datatype layer: file views and data sieving for noncontiguous access.

``views`` describes a request as a pattern (strided, nested-strided,
indexed) instead of a materialized extent list; ``sieve`` plans
covering-extent reads and read-modify-write windows over those patterns.
The executable halves live on :class:`~repro.fs.pfs.ParallelFile`
(``set_view`` / ``read_view`` / ``write_view``).
"""

from .sieve import (
    DEFAULT_SIEVE_FACTOR,
    DEFAULT_SIEVE_WINDOW,
    plan_sieved_reads,
    plan_sieved_writes,
)
from .views import (
    ContiguousView,
    FileView,
    IndexedView,
    NestedStridedView,
    StridedView,
    view_of_map,
)

__all__ = [
    "FileView",
    "ContiguousView",
    "StridedView",
    "NestedStridedView",
    "IndexedView",
    "view_of_map",
    "DEFAULT_SIEVE_FACTOR",
    "DEFAULT_SIEVE_WINDOW",
    "plan_sieved_reads",
    "plan_sieved_writes",
]
