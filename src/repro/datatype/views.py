"""File views: datatype-style descriptions of noncontiguous access.

The access-optimization ladder (Thakur et al., *Optimizing Noncontiguous
Accesses in MPI-IO*) starts from one observation: a noncontiguous request
should be *described as a pattern*, not materialized as a list of
per-segment operations. This module provides those patterns for record
space — the analogue of MPI derived datatypes / file views over the
paper's parallel files:

* :class:`ContiguousView` — ``count`` records from ``start``;
* :class:`StridedView` — the classic vector type: equal segments at a
  fixed stride (an IS internal view is exactly this);
* :class:`NestedStridedView` — a view replicated at an outer stride
  (nested vector types: sub-blocks of a block distribution, ghost-cell
  exclusions, ...);
* :class:`IndexedView` — an explicit list of ``(start, count)`` runs;
* :func:`view_of_map` — the internal view of one process of an
  organization map, as a view object.

A view is immutable and purely arithmetic. Its :meth:`~FileView.flatten`
output — maximal contiguous record runs, ascending — is the interchange
currency: :meth:`ParallelFile.read_view <repro.fs.pfs.ParallelFile.read_view>`
feeds it to the extent-batched list-I/O path (``read_gather`` /
``write_gather``) or to the data-sieving planner (`repro.datatype.sieve`).

Views must be *monotonic*: runs strictly ascending and non-overlapping
(the MPI-IO file-view rule). Construction validates this eagerly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from ..core.convert import Run, contiguous_runs
from ..core.mapping import OrganizationMap

__all__ = [
    "FileView",
    "ContiguousView",
    "StridedView",
    "NestedStridedView",
    "IndexedView",
    "view_of_map",
]


def _validate_runs(runs: Sequence[Run]) -> None:
    prev_stop = None
    for r in runs:
        if r.start < 0 or r.count < 1:
            raise ValueError(f"invalid run ({r.start}, {r.count})")
        if prev_stop is not None and r.start < prev_stop:
            raise ValueError(
                f"view runs must be ascending and non-overlapping: run at "
                f"{r.start} begins before previous run ends at {prev_stop}"
            )
        prev_stop = r.stop


def _merge_adjacent(runs: Sequence[Run]) -> list[Run]:
    out: list[Run] = []
    for r in runs:
        if out and r.start == out[-1].stop:
            out[-1] = Run(out[-1].start, out[-1].count + r.count)
        else:
            out.append(r)
    return out


class FileView(ABC):
    """A monotonic selection of file records, described as a pattern."""

    @abstractmethod
    def runs(self) -> list[Run]:
        """The selected records as ascending, non-overlapping record runs."""

    def flatten(self) -> list[Run]:
        """Maximal contiguous runs (adjacent runs merged) — the list-I/O
        form of the view, suitable for ``read_gather``/``write_gather``."""
        return _merge_adjacent(self.runs())

    @property
    def n_view_records(self) -> int:
        """Number of records the view selects."""
        return sum(r.count for r in self.runs())

    @property
    def extent(self) -> tuple[int, int]:
        """Half-open global record range ``[lo, hi)`` spanned by the view."""
        runs = self.runs()
        if not runs:
            return (0, 0)
        return (runs[0].start, runs[-1].stop)

    def indices(self) -> np.ndarray:
        """All selected global record indices, ascending."""
        runs = self.runs()
        if not runs:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.arange(r.start, r.stop, dtype=np.int64) for r in runs]
        )

    def byte_ranges(self, record_size: int) -> list[tuple[int, int]]:
        """The view's runs as ``(byte_offset, nbytes)`` ranges."""
        return [(r.start * record_size, r.count * record_size) for r in self.flatten()]

    def __len__(self) -> int:
        return self.n_view_records

    def __repr__(self) -> str:
        lo, hi = self.extent
        return (
            f"<{type(self).__name__} records={self.n_view_records} "
            f"extent=[{lo}, {hi})>"
        )


class ContiguousView(FileView):
    """``count`` consecutive records starting at ``start``."""

    def __init__(self, start: int, count: int):
        self._runs = [Run(start, count)]
        _validate_runs(self._runs)

    def runs(self) -> list[Run]:
        return list(self._runs)


class StridedView(FileView):
    """The vector type: ``n_segments`` segments of ``seg_records`` records,
    placed ``stride`` records apart, starting at ``start``.

    ``stride >= seg_records`` is required (monotonic, non-overlapping);
    ``stride == seg_records`` degenerates to a contiguous view.
    """

    def __init__(self, start: int, n_segments: int, seg_records: int, stride: int):
        if n_segments < 1 or seg_records < 1:
            raise ValueError("n_segments and seg_records must be >= 1")
        if stride < seg_records:
            raise ValueError(
                f"stride {stride} < segment length {seg_records}: "
                "segments would overlap"
            )
        self.start = start
        self.n_segments = n_segments
        self.seg_records = seg_records
        self.stride = stride
        self._runs = [
            Run(start + i * stride, seg_records) for i in range(n_segments)
        ]
        _validate_runs(self._runs)

    def runs(self) -> list[Run]:
        return list(self._runs)


class NestedStridedView(FileView):
    """``count`` copies of ``inner``, each shifted by a multiple of
    ``stride`` records (nested vector types).

    ``stride`` must be at least the inner view's extent span, so copies
    never interleave.
    """

    def __init__(self, inner: FileView, count: int, stride: int):
        if count < 1:
            raise ValueError("count must be >= 1")
        lo, hi = inner.extent
        if hi == lo:
            raise ValueError("inner view selects no records")
        if stride < hi - lo:
            raise ValueError(
                f"stride {stride} < inner extent span {hi - lo}: "
                "copies would overlap"
            )
        self.inner = inner
        self.count = count
        self.stride = stride
        self._runs = [
            Run(r.start + i * stride, r.count)
            for i in range(count)
            for r in inner.runs()
        ]
        _validate_runs(self._runs)

    def runs(self) -> list[Run]:
        return list(self._runs)


class IndexedView(FileView):
    """An explicit ascending list of ``(start, count)`` record runs."""

    def __init__(self, entries: Iterable[tuple[int, int] | Run]):
        self._runs = [
            e if isinstance(e, Run) else Run(int(e[0]), int(e[1]))
            for e in entries
        ]
        _validate_runs(self._runs)

    @classmethod
    def from_indices(cls, indices: np.ndarray) -> "IndexedView":
        """A view of explicit record ``indices`` (must be ascending)."""
        arr = np.asarray(indices, dtype=np.int64)
        if arr.size and np.any(np.diff(arr) <= 0):
            raise ValueError("indices must be strictly ascending")
        return cls(contiguous_runs(arr))

    def runs(self) -> list[Run]:
        return list(self._runs)


def view_of_map(org_map: OrganizationMap, process: int) -> IndexedView:
    """The internal view of ``process`` under ``org_map``, as a view object.

    This is the bridge from the paper's organizations to the datatype
    layer: a PS partition becomes one contiguous run, an IS partition a
    strided run list — and either feeds the same optimized access paths.
    """
    return IndexedView(contiguous_runs(org_map.records_of(process)))
