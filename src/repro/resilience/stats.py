"""Counters and latency tallies for the resilience layer."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..sim.stats import Tally
from .retry import RetriedOp

__all__ = ["ResilienceStats"]


@dataclass
class ResilienceStats:
    """What the resilience layer did during a run.

    Rendered by :func:`repro.trace.report.resilience_report`; the MTTR
    samples plug straight into
    :func:`repro.reliability.montecarlo.simulate_protected_fleet` as its
    ``mttr_hours`` input.
    """

    degraded_reads: int = 0
    degraded_writes: int = 0
    reconstructed_bytes: int = 0
    journaled_writes: int = 0
    replayed_writes: int = 0
    retried_ops: int = 0          # ops that needed at least one retry
    retry_attempts: int = 0       # re-attempts beyond each op's first try
    retries_exhausted: int = 0
    failovers: int = 0            # node failovers performed
    migrated_requests: int = 0    # requests salvaged across a failover
    quarantined_nodes: int = 0    # circuit-breaker trips
    rebuilds_started: int = 0
    rebuilds_completed: int = 0
    rebuild_bytes: int = 0
    #: degraded-read service time (submit -> reassembled), seconds
    degraded_read_latency: Tally = field(default_factory=Tally)
    #: failure-detected -> spare-swapped, seconds (one sample per rebuild)
    rebuild_times: list[float] = field(default_factory=list)

    def counters(self) -> dict[str, int]:
        """Plain-int snapshot of every counter field.

        Diff two snapshots to attribute activity to one operation — e.g.
        :func:`repro.container.verify.fsck` subtracts the snapshot taken
        before its read pass to report how many of its reads ran
        degraded and how many bytes parity reconstruction supplied.
        """
        return {
            name: getattr(self, name)
            for name in (
                "degraded_reads",
                "degraded_writes",
                "reconstructed_bytes",
                "journaled_writes",
                "replayed_writes",
                "retried_ops",
                "retry_attempts",
                "retries_exhausted",
                "failovers",
                "migrated_requests",
                "quarantined_nodes",
                "rebuilds_started",
                "rebuilds_completed",
                "rebuild_bytes",
            )
        }

    def note_retry(self, op: RetriedOp) -> None:
        """Fold one completed :class:`RetriedOp` into the counters."""
        if op.attempts > 1:
            self.retried_ops += 1
            self.retry_attempts += op.attempts - 1
        if op.gave_up:
            self.retries_exhausted += 1

    @property
    def mttr_seconds(self) -> float:
        """Mean time to repair over completed rebuilds (NaN if none)."""
        if not self.rebuild_times:
            return math.nan
        return sum(self.rebuild_times) / len(self.rebuild_times)

    @property
    def mttr_hours(self) -> float:
        return self.mttr_seconds / 3600.0
