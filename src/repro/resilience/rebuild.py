"""Hot-spare rebuild: background reconstruction of a failed device.

§5 of the paper stops at *detecting* a failure and naming the recovery
options (restore from backup, shadow copy, parity rebuild). This module
runs the rebuild **online**: a background process reconstructs the dead
device's contents onto an idle spare while the file system keeps serving,
then atomically swaps the spare in.

Two rebuild sources:

* **parity** — each chunk is reconstructed from survivors + check device
  (under the volume's per-parity-unit locks, so a concurrent
  read-modify-write can never be observed half-done), then overlaid with
  the write journal and written to the spare. After the bulk pass the
  journal is drained until quiet, so degraded writes that raced the
  rebuild are not lost.
* **shadow** — the surviving member is streamed onto the spare; the
  pair's dirty-range log (writes made while degraded) is then replayed
  until quiet, waiting out in-flight writes via
  :meth:`~repro.devices.shadow.ShadowPair.quiesce_event`.

The final verify + swap is zero-time (no yields): the spare is compared
against the simulator's oracle (the dead device's frozen media plus the
journal, or the survivor's media), reported to the sanitizer, and only
then patched into the volume, parity group, and owning I/O node. A
``rebuild_throttle`` of *t* sleeps ``t×`` each chunk's busy time, trading
repair time (MTTR) against foreground interference — the knob benchmark
E10 sweeps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..devices.controller import DeviceController, DeviceFailedError
from ..devices.shadow import ShadowPair
from ..sim.engine import Process
from ..storage.parity import StaleParityError

if TYPE_CHECKING:  # pragma: no cover
    from .volume import ResilientVolume

__all__ = ["HotSpareRebuilder"]


class HotSpareRebuilder:
    """Rebuilds failed devices of one :class:`ResilientVolume` onto spares."""

    def __init__(
        self,
        rv: "ResilientVolume",
        spares: list[DeviceController],
        *,
        chunk_bytes: int = 1 << 16,
        throttle: float = 0.0,
    ):
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if throttle < 0:
            raise ValueError("throttle must be >= 0")
        self.rv = rv
        self.env = rv.env
        self.spares = list(spares)
        self.chunk_bytes = chunk_bytes
        self.throttle = throttle
        self._active: dict[int, Process] = {}
        #: (device index, exception) for rebuilds that could not complete
        self.failures: list[tuple[int, BaseException]] = []

    def can_rebuild(self, index: int) -> bool:
        """Is a rebuild of device ``index`` possible and not yet running?"""
        if not self.spares or index in self._active:
            return False
        device = self.rv.volume.devices[index]
        if isinstance(device, ShadowPair):
            return device.degraded
        return device.failed and self.rv.group is not None

    @property
    def active(self) -> list[int]:
        """Device indices with a rebuild in flight."""
        return sorted(self._active)

    def start(self, index: int) -> Process:
        """Kick off the background rebuild of device ``index``."""
        if not self.can_rebuild(index):
            raise RuntimeError(
                f"cannot rebuild device {index}: no spare, already running, "
                "or no reconstruction source"
            )
        spare = self.spares.pop(0)
        self.rv.stats.rebuilds_started += 1
        proc = self.env.process(self._run(index, spare), name=f"rebuild.dev{index}")
        self._active[index] = proc
        return proc

    def _run(self, index: int, spare: DeviceController):
        rv = self.rv
        t0 = rv.failed_at.get(index, self.env.now)
        device = rv.volume.devices[index]
        try:
            if isinstance(device, ShadowPair):
                yield from self._rebuild_shadow(index, device, spare)
            else:
                yield from self._rebuild_parity(index, device, spare)
        except Exception as exc:  # noqa: BLE001 - recorded, spare returned
            # a refused or interrupted rebuild (stale parity, retries
            # exhausted) is a lawful abort, not a sanitizer violation;
            # genuine divergence was already reported by the verify step
            self._active.pop(index, None)
            self.failures.append((index, exc))
            self.spares.insert(0, spare)
            return False
        self._active.pop(index, None)
        rv.failed_at.pop(index, None)
        rv.stats.rebuilds_completed += 1
        rv.stats.rebuild_times.append(self.env.now - t0)
        return True

    # -- parity-group rebuild ----------------------------------------------

    def _rebuild_parity(self, index: int, dead: DeviceController, spare: DeviceController):
        rv = self.rv
        env = self.env
        group = rv.group
        if group is None:
            raise RuntimeError("parity rebuild needs an attached parity group")
        cap = dead.capacity_bytes
        if spare.capacity_bytes < cap:
            raise ValueError("spare is smaller than the failed device")
        pos = 0
        while pos < cap:
            take = min(self.chunk_bytes, cap - pos)
            chunk_start = env.now
            locks = yield from rv._lock_units(pos, take)
            try:
                if not group.reconstruct_safe(pos, take):
                    raise StaleParityError(
                        f"cannot rebuild device {index}: parity stale over "
                        f"[{pos}, {pos + take})"
                    )
                data = yield from rv._with_retry(
                    lambda p=pos, t=take: self.env.process(
                        group.reconstruct_gen(index, p, t), name="rebuild.chunk"
                    ),
                    kind="reconstruct",
                    target=f"dev{index}",
                )
            finally:
                rv._unlock(locks)
            rv.journal.overlay(index, pos, take, data)
            yield from rv._with_retry(
                lambda p=pos, d=data: spare.write(p, d), kind="write", target="spare"
            )
            rv.stats.rebuild_bytes += take
            pos += take
            busy = env.now - chunk_start
            if self.throttle > 0 and busy > 0:
                yield env.timeout(busy * self.throttle)
        # drain the degraded-write journal until no new entries appear
        replayed = 0
        while True:
            fresh = rv.journal.entries_for(index)[replayed:]
            if not fresh:
                break
            for entry in fresh:
                yield from rv._with_retry(
                    lambda e=entry: spare.write(e.offset, e.data),
                    kind="write",
                    target="spare",
                )
                replayed += 1
                rv.stats.rebuild_bytes += len(entry.data)
        rv.journal.note_replayed(replayed)
        rv.stats.replayed_writes += replayed
        # zero-time verify against the oracle, then the atomic swap: the
        # dead device's media is frozen at failure time and every later
        # write is in the journal, so media+journal is the logical truth
        expected = dead.peek(0, cap)
        rv.journal.overlay(index, 0, cap, expected)
        ok = bool(np.array_equal(expected, spare.peek(0, cap)))
        self._notify(
            f"rebuild.dev{index}", ok, f"{cap} bytes reconstructed, {replayed} replayed"
        )
        if not ok:
            raise RuntimeError(
                f"rebuilt spare for device {index} diverges from its oracle"
            )
        self._swap_in(index, spare)
        group.replace_data_device(index, spare)
        rv.journal.clear(index)

    # -- shadow-pair rebuild ------------------------------------------------

    def _rebuild_shadow(self, index: int, pair: ShadowPair, spare: DeviceController):
        rv = self.rv
        env = self.env
        survivor = pair.surviving()
        if survivor is None:
            raise DeviceFailedError(pair.name)
        cap = survivor.capacity_bytes
        if spare.capacity_bytes < cap:
            raise ValueError("spare is smaller than the pair members")
        pos = 0
        while pos < cap:
            take = min(self.chunk_bytes, cap - pos)
            chunk_start = env.now
            data = yield from rv._with_retry(
                lambda p=pos, t=take: survivor.read(p, t),
                kind="read",
                target="survivor",
            )
            yield from rv._with_retry(
                lambda p=pos, d=data: spare.write(p, d), kind="write", target="spare"
            )
            rv.stats.rebuild_bytes += take
            pos += take
            busy = env.now - chunk_start
            if self.throttle > 0 and busy > 0:
                yield env.timeout(busy * self.throttle)
        # catch up on writes that raced the bulk copy: wait out in-flight
        # writes first, so every completed write's dirty range is visible
        consumed = 0
        replayed = 0
        while True:
            if pair.writes_in_progress:
                yield pair.quiesce_event()
                continue
            ranges = pair.dirty_ranges()[consumed:]
            if not ranges:
                break
            for off, nbytes in ranges:
                data = yield from rv._with_retry(
                    lambda o=off, n=nbytes: survivor.read(o, n),
                    kind="read",
                    target="survivor",
                )
                yield from rv._with_retry(
                    lambda o=off, d=data: spare.write(o, d),
                    kind="write",
                    target="spare",
                )
                consumed += 1
                replayed += 1
                rv.stats.rebuild_bytes += nbytes
        rv.stats.replayed_writes += replayed
        # no write in progress and no unconsumed dirty range: the swap
        # (zero-time) cannot lose a racing write
        ok = bool(np.array_equal(survivor.peek(0, cap), spare.peek(0, cap)))
        self._notify(
            f"rebuild.{pair.name}", ok, f"{cap} bytes copied, {replayed} caught up"
        )
        if not ok:
            raise RuntimeError(
                f"rebuilt spare for pair {pair.name} diverges from the survivor"
            )
        pair.replace_failed(spare)

    # -- plumbing ----------------------------------------------------------

    def _swap_in(self, index: int, spare: DeviceController) -> None:
        """Patch the spare into the volume and the owning I/O node."""
        rv = self.rv
        rv.volume.devices[index] = spare
        if rv.cluster is not None:
            node = rv.cluster.node_of(index)
            node.devices[index] = spare
            rv.cluster.invalidate_device(index)

    def _notify(self, name: str, ok: bool, detail: str) -> None:
        sanitizer = self.env._sanitizer
        if sanitizer is not None and hasattr(sanitizer, "on_rebuild"):
            sanitizer.on_rebuild(name, ok, detail)
