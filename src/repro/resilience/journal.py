"""Write journal for degraded-mode writes to a failed device.

While a device is down, writes addressed to it cannot land on media.
Instead of failing the client (the pre-resilience behaviour) or silently
dropping the bytes, the journal records each write — device index,
absolute device offset, payload — so that:

* degraded *reads* overlay journal entries on top of reconstructed data
  (read-your-writes while degraded), and
* the hot-spare rebuild replays the journal onto the spare before the
  swap, making the rebuilt device byte-identical to the logical state.

Replay is idempotent: entries carry absolute offsets and full payloads,
so applying an entry twice (e.g. once folded into a rebuild chunk and
once in the final drain) writes the same bytes to the same place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JournalEntry", "WriteJournal"]


@dataclass(frozen=True)
class JournalEntry:
    """One journaled write: ``data`` at absolute ``offset`` on ``device``."""

    device: int
    offset: int
    data: np.ndarray
    time: float

    @property
    def end(self) -> int:
        return self.offset + len(self.data)


class WriteJournal:
    """Per-device ordered log of writes made while the device was down."""

    def __init__(self):
        self._entries: dict[int, list[JournalEntry]] = {}
        self.recorded = 0
        self.replayed = 0

    def record(self, device: int, offset: int, data: np.ndarray, time: float) -> JournalEntry:
        """Append one write (payload copied — callers may reuse buffers)."""
        entry = JournalEntry(device, offset, np.array(data, dtype=np.uint8, copy=True), time)
        self._entries.setdefault(device, []).append(entry)
        self.recorded += 1
        return entry

    def pending(self, device: int) -> int:
        """Entries recorded for ``device`` and not yet cleared."""
        return len(self._entries.get(device, ()))

    @property
    def total_pending(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def entries_for(self, device: int) -> list[JournalEntry]:
        """Snapshot of the device's entries in record order."""
        return list(self._entries.get(device, ()))

    def clear(self, device: int) -> int:
        """Drop the device's entries (after a completed rebuild + replay)."""
        dropped = self.pending(device)
        self._entries.pop(device, None)
        return dropped

    def note_replayed(self, count: int) -> None:
        """Record that ``count`` entries were replayed onto a spare."""
        self.replayed += count

    def overlay(self, device: int, offset: int, nbytes: int, out: np.ndarray) -> int:
        """Apply overlapping entries (oldest first) onto ``out``.

        ``out`` holds the bytes of ``[offset, offset+nbytes)``; returns
        the number of entries that touched the range.
        """
        applied = 0
        for e in self._entries.get(device, ()):
            lo = max(offset, e.offset)
            hi = min(offset + nbytes, e.end)
            if lo < hi:
                out[lo - offset : hi - offset] = e.data[lo - e.offset : hi - e.offset]
                applied += 1
        return applied
