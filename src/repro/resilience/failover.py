"""I/O-node failover: crash handling, re-routing, replay, circuit breaking.

When a dedicated I/O node dies (§4's "dedicated I/O processors" are
themselves a failure domain), three things must happen without losing a
single accepted request:

1. the dead node's devices are **re-routed** to surviving nodes
   (:meth:`~repro.ionode.routing.DeviceRouter.reassign`), so new traffic
   flows around the hole;
2. every request the node had accepted but not settled — the batch in
   service, the queued inbox, submissions blocked at admission — is
   **salvaged** (:meth:`~repro.ionode.node.IONode.crash`) and **replayed**
   on the survivors, settling the original client events so callers never
   learn their server changed;
3. a :class:`CircuitBreaker` per node watches request failures, so a node
   that keeps erroring is quarantined (crashed deliberately, with the same
   salvage path) instead of poisoning the cluster.

Replay is at-least-once but content-idempotent: device writes already
issued by a dying batch run to completion, and replaying the request
re-applies the same bytes at the same absolute offsets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.engine import Environment, Process

if TYPE_CHECKING:  # pragma: no cover
    from ..ionode.node import NodeRequest
    from ..ionode.routing import IONodeCluster
    from .stats import ResilienceStats

__all__ = ["CircuitBreaker", "FailoverManager", "NodeFaultInjector"]


class CircuitBreaker:
    """Failure counter with the classic closed / open / half-open states.

    ``record_failure`` returns ``True`` on the transition to *open* (the
    trip); after ``cooldown`` seconds the breaker is *half-open* — one
    probe is allowed, and its outcome either closes or re-opens it.
    """

    def __init__(self, env: Environment, threshold: int = 3, cooldown: float = 1.0):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.env = env
        self.threshold = threshold
        self.cooldown = cooldown
        self._failures = 0
        self._opened_at: float | None = None
        self.trips = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self.env.now >= self._opened_at + self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request be sent through right now?"""
        return self.state != "open"

    def record_failure(self) -> bool:
        """Count one failure; ``True`` iff this call trips the breaker."""
        state = self.state
        if state == "half-open":
            self._opened_at = self.env.now  # probe failed: re-open
            self.trips += 1
            return True
        if state == "open":
            return False
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = self.env.now
            self.trips += 1
            return True
        return False

    def record_success(self) -> None:
        """A request got through: close (or keep closed) the breaker."""
        self._failures = 0
        self._opened_at = None


class FailoverManager:
    """Crash handling for one :class:`~repro.ionode.routing.IONodeCluster`."""

    def __init__(
        self,
        env: Environment,
        cluster: "IONodeCluster",
        stats: "ResilienceStats | None" = None,
        *,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 1.0,
    ):
        self.env = env
        self.cluster = cluster
        self.stats = stats
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self._breakers: dict[int, CircuitBreaker] = {}
        self._salvaged: list["NodeRequest"] = []
        self._replays: list[Process] = []
        #: observers called as ``cb(failed_index, survivors)`` after a
        #: node's devices are re-routed — the metadata service hooks in
        #: here to re-home its shards (see MetadataService.bind_failover)
        self.on_node_failed: list = []

    def breaker(self, node_index: int) -> CircuitBreaker:
        """The (lazily created) circuit breaker watching ``node_index``."""
        br = self._breakers.get(node_index)
        if br is None:
            br = CircuitBreaker(self.env, self.breaker_threshold, self.breaker_cooldown)
            self._breakers[node_index] = br
        return br

    # -- failover ----------------------------------------------------------

    def fail_node(self, index: int) -> list["NodeRequest"]:
        """Crash node ``index``: re-route its devices, replay its requests.

        The crash, re-routing, and replay spawning are zero-time and
        atomic (no yields), so no request can be submitted to a
        half-migrated node. Returns the salvaged requests.
        """
        node = self.cluster.nodes[index]
        if node.crashed:
            return []
        survivors = [
            i for i, n in enumerate(self.cluster.nodes) if i != index and not n.crashed
        ]
        if not survivors:
            raise RuntimeError(
                f"cannot fail over node {node.name}: no surviving nodes"
            )
        moved = self.cluster.router.devices_of(index)
        salvaged = node.crash()
        for k, dev in enumerate(moved):
            target = survivors[k % len(survivors)]
            self.cluster.router.reassign(dev, target)
            self.cluster.nodes[target].devices[dev] = node.devices[dev]
        if self.stats is not None:
            self.stats.failovers += 1
            self.stats.migrated_requests += len(salvaged)
        for req in salvaged:
            self._salvaged.append(req)
            self._replays.append(
                self.env.process(self._replay(req), name="failover.replay")
            )
        for cb in self.on_node_failed:
            cb(index, survivors)
        return salvaged

    def _replay(self, req: "NodeRequest"):
        """Re-submit a salvaged request to the devices' current owners.

        Splits the items per surviving node, waits for every sub-request
        (draining failures so none goes unobserved), then settles the
        *original* client event — per-slot arrays for reads, the payload
        byte count for writes, or the first error seen.
        """
        per_node: dict[int, list[int]] = {}
        for slot, (dev, _, _) in enumerate(req.items):
            per_node.setdefault(self.cluster.router.node_of(dev), []).append(slot)
        subs: list[tuple[list[int], "NodeRequest"]] = []
        for node_index, slots in per_node.items():
            node = self.cluster.nodes[node_index]
            items = [req.items[s] for s in slots]
            data = [req.data[s] for s in slots] if req.kind == "write" else None
            # replay runs outside the original client's process, so the
            # tenant tag must be carried over explicitly for QoS billing
            subs.append(
                (slots, node.submit(req.kind, items, data=data, tenant=req.tenant))
            )
        results: list = [None] * len(req.items)
        error: BaseException | None = None
        for slots, sub in subs:
            try:
                yield sub.admitted
                value = yield sub.event
            except Exception as exc:  # noqa: BLE001 - forwarded to the client
                if error is None:
                    error = exc
                continue
            if req.kind == "read":
                for slot, arr in zip(slots, value):
                    results[slot] = arr
        if req.event.triggered:
            return  # settled by a cascading failover's replay of this req
        if error is not None:
            req.event.fail(error)
        elif req.kind == "read":
            req.event.succeed(results)
        else:
            req.event.succeed(req.payload_bytes)

    # -- circuit breaking ----------------------------------------------------

    def note_request_failure(self, node_index: int) -> None:
        """One request through ``node_index`` failed transiently.

        On the breaker trip the node is quarantined — crashed through the
        normal failover path — provided another node survives to absorb
        its devices.
        """
        tripped = self.breaker(node_index).record_failure()
        node = self.cluster.nodes[node_index]
        if not tripped or node.crashed:
            return
        has_survivor = any(
            not n.crashed
            for i, n in enumerate(self.cluster.nodes)
            if i != node_index
        )
        if not has_survivor:
            return  # last node standing: keep limping rather than go dark
        self.fail_node(node_index)
        if self.stats is not None:
            self.stats.quarantined_nodes += 1

    def note_request_success(self, node_index: int) -> None:
        """One request through ``node_index`` completed."""
        br = self._breakers.get(node_index)
        if br is not None:
            br.record_success()

    # -- invariants --------------------------------------------------------

    def assert_settled(self) -> None:
        """Raise unless every salvaged request's client event has settled."""
        lost = sum(1 for r in self._salvaged if not r.event.triggered)
        if lost:
            raise RuntimeError(
                f"failover lost {lost} of {len(self._salvaged)} salvaged "
                "request(s): client events never settled"
            )


class NodeFaultInjector:
    """Schedules I/O-node crashes at simulated times (for tests/benchmarks)."""

    def __init__(self, env: Environment, manager: FailoverManager):
        self.env = env
        self.manager = manager
        #: (node_index, time) pairs of crashes actually performed
        self.crashes: list[tuple[int, float]] = []

    def crash_at(self, node_index: int, when: float) -> Process:
        """Crash ``node_index`` at simulated time ``when`` (>= now)."""
        if when < self.env.now:
            raise ValueError("cannot schedule a crash in the past")
        if not 0 <= node_index < len(self.manager.cluster.nodes):
            raise ValueError(f"no such node {node_index}")
        return self.env.process(
            self._crash(node_index, when), name=f"crash.node{node_index}"
        )

    def _crash(self, node_index: int, when: float):
        yield self.env.timeout(max(0.0, when - self.env.now))
        if self.manager.cluster.nodes[node_index].crashed:
            return
        self.manager.fail_node(node_index)
        self.crashes.append((node_index, self.env.now))
