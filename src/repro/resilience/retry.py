"""Bounded retry with exponential backoff, jitter, and deadlines.

§5 of the paper treats device failure as binary — a drive is either up or
has "completely failed". Real 1989 drives (and everything since) also
glitch: a request errors but the next one succeeds. The response layer
here is the standard one: retry a bounded number of times, backing off
exponentially with jitter so that a crowd of retrying clients does not
re-collide, and give up past a per-request deadline.

The exactly-once story rests on a division of labour: a
:class:`~repro.devices.controller.TransientIOError` is raised *before*
any media transfer, so a retried request cannot double-apply — and the
:class:`RetriedOp` record proves it, carrying the attempt/failure/success
counts that :meth:`repro.sanitize.EngineSanitizer.on_retried_op` checks
(``attempts == failures + successes`` and at most one success per op).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..devices.controller import TransientIOError
from ..sim.engine import Environment, Event
from ..sim.rng import RngStreams

__all__ = ["RetryPolicy", "RetriedOp", "RetryError", "retrying"]


class RetryError(Exception):
    """Retries exhausted (or deadline exceeded) for one operation."""

    def __init__(self, message: str, op: "RetriedOp"):
        super().__init__(message)
        self.op = op


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and jitter.

    ``deadline`` is a per-operation budget in simulated seconds: a retry
    whose backoff delay would overrun it is not attempted.
    """

    max_attempts: int = 4
    base_delay: float = 0.001
    backoff: float = 2.0
    jitter: float = 0.25
    deadline: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.backoff < 1.0:
            raise ValueError("need base_delay >= 0 and backoff >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")

    def delay(self, retry: int, rng: RngStreams | None = None, stream: str = "retry") -> float:
        """Backoff before the ``retry``-th re-attempt (0-based)."""
        d = self.base_delay * self.backoff**retry
        if self.jitter and rng is not None:
            d *= 1.0 + self.jitter * rng.uniform(stream, -1.0, 1.0)
        return max(d, 0.0)


@dataclass(slots=True)
class RetriedOp:
    """Accounting for one logical operation through the retry loop."""

    kind: str
    target: str
    attempts: int = 0
    failures: int = 0
    successes: int = 0
    acked: bool = False      # the caller saw the op complete
    gave_up: bool = False    # retries exhausted / deadline overrun
    errors: list[str] = field(default_factory=list)


def retrying(
    env: Environment,
    make_event: Callable[[], Event],
    policy: RetryPolicy,
    *,
    rng: RngStreams | None = None,
    stream: str = "retry",
    kind: str = "op",
    target: str = "?",
    retry_on: tuple[type[BaseException], ...] = (TransientIOError,),
    on_report: Callable[[RetriedOp], None] | None = None,
):
    """Generator: issue ``make_event()`` until it succeeds or retries run out.

    Each attempt issues a *fresh* event (``make_event`` is called per
    attempt), so a failed attempt is abandoned, never re-awaited.
    Exceptions outside ``retry_on`` (a permanently dead device, a stale
    parity region) propagate immediately — they are not retryable.
    """
    op = RetriedOp(kind=kind, target=target)
    start = env.now
    retries = 0
    while True:
        op.attempts += 1
        try:
            value = yield make_event()
        except retry_on as exc:
            op.failures += 1
            op.errors.append(type(exc).__name__)
            if op.attempts >= policy.max_attempts:
                op.gave_up = True
                _report(env, op, on_report)
                raise RetryError(
                    f"{kind} on {target}: gave up after {op.attempts} "
                    f"attempts ({op.errors[-1]})",
                    op,
                ) from exc
            delay = policy.delay(retries, rng, stream)
            retries += 1
            if (
                policy.deadline is not None
                and env.now - start + delay > policy.deadline
            ):
                op.gave_up = True
                _report(env, op, on_report)
                raise RetryError(
                    f"{kind} on {target}: deadline {policy.deadline}s "
                    f"overrun after {op.attempts} attempts",
                    op,
                ) from exc
            yield env.sleep(delay)
        except BaseException as exc:
            # not retryable: account for the failed attempt and re-raise
            op.failures += 1
            op.errors.append(type(exc).__name__)
            _report(env, op, on_report)
            raise
        else:
            op.successes += 1
            op.acked = True
            _report(env, op, on_report)
            return value


def _report(env: Environment, op: RetriedOp, on_report) -> None:
    sanitizer = env._sanitizer
    if sanitizer is not None and hasattr(sanitizer, "on_retried_op"):
        sanitizer.on_retried_op(op)
    if on_report is not None:
        on_report(op)
