"""Configuration for the opt-in resilience layer."""

from __future__ import annotations

from dataclasses import dataclass, field

from .retry import RetryPolicy

__all__ = ["ResilienceConfig"]


@dataclass(frozen=True)
class ResilienceConfig:
    """One knob object for ``build_parallel_fs(..., resilience=...)``.

    ``protection`` picks the §5 redundancy scheme the volume is built
    with: ``"parity"`` (one check device per group, Kim-style),
    ``"shadow"`` (every device mirrored), or ``None`` (retry/failover
    machinery only — no reconstruction possible).

    ``parity_mode`` follows :class:`~repro.storage.parity.ParityGroup`:
    ``"rmw"`` keeps parity fresh through independent writes (two extra
    transfers per write); ``"synchronized"`` maintains parity only on
    full-stripe writes, so independent PS/IS writes leave stale units —
    the paper's claim, surfaced as ``StaleParityError`` on any later
    degraded read over them.

    ``rebuild_throttle`` paces the hot-spare rebuild: after each copied
    chunk the rebuilder idles ``throttle × chunk_time``, trading MTTR for
    foreground bandwidth (0 = rebuild flat out).
    """

    protection: str | None = "parity"
    parity_mode: str = "rmw"
    parity_unit: int = 4096
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    spares: int = 1
    rebuild_chunk: int = 1 << 16
    rebuild_throttle: float = 0.0
    auto_rebuild: bool = False
    failover: bool = True
    breaker_threshold: int = 3
    breaker_cooldown: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.protection not in (None, "parity", "shadow"):
            raise ValueError(f"unknown protection {self.protection!r}")
        if self.parity_mode not in ("synchronized", "rmw"):
            raise ValueError(f"unknown parity mode {self.parity_mode!r}")
        if self.parity_unit < 1:
            raise ValueError("parity_unit must be >= 1")
        if self.spares < 0:
            raise ValueError("spares must be >= 0")
        if self.rebuild_chunk < 1:
            raise ValueError("rebuild_chunk must be >= 1")
        if self.rebuild_throttle < 0:
            raise ValueError("rebuild_throttle must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be >= 0")
