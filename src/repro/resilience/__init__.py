"""Online resilience: degraded-mode I/O, retries, failover, hot-spare rebuild.

The paper's §5 treats failures as an offline concern — detect, then
restore from backup, shadow, or parity. This package keeps the file
system *serving* through the failure:

* :class:`~repro.resilience.volume.ResilientVolume` — the ``Volume``
  surface with transparent retries, on-the-fly reconstruction of a dead
  device's reads, and journaled degraded writes;
* :class:`~repro.resilience.retry.RetryPolicy` — bounded attempts with
  exponential backoff + deterministic jitter for transient device errors;
* :class:`~repro.resilience.failover.FailoverManager` — I/O-node crash
  handling: device re-routing, request salvage + replay, circuit-breaker
  quarantine of repeatedly failing nodes;
* :class:`~repro.resilience.rebuild.HotSpareRebuilder` — background
  reconstruction of a failed device onto a spare, with a throttle knob
  trading MTTR against foreground throughput (benchmark E10);
* :class:`~repro.resilience.config.ResilienceConfig` — the single opt-in
  knob bag threaded through ``build_parallel_fs(..., resilience=...)``.
"""

from .config import ResilienceConfig
from .failover import CircuitBreaker, FailoverManager, NodeFaultInjector
from .journal import JournalEntry, WriteJournal
from .rebuild import HotSpareRebuilder
from .retry import RetriedOp, RetryError, RetryPolicy, retrying
from .stats import ResilienceStats
from .volume import ResilientVolume

__all__ = [
    "CircuitBreaker",
    "FailoverManager",
    "HotSpareRebuilder",
    "JournalEntry",
    "NodeFaultInjector",
    "ResilienceConfig",
    "ResilienceStats",
    "ResilientVolume",
    "RetriedOp",
    "RetryError",
    "RetryPolicy",
    "WriteJournal",
    "retrying",
]
