"""Degraded-mode I/O: the volume keeps serving through a device failure.

:class:`ResilientVolume` wraps a data plane — a raw
:class:`~repro.storage.volume.Volume` or the server-mediated
:class:`~repro.ionode.routing.MediatedVolume` — and presents the same
read/write surface, with three behavioural changes:

* **retry** — every operation runs under a :class:`~repro.resilience.
  retry.RetryPolicy`: transient device errors (bus glitches, limping
  episodes) are retried with exponential backoff + jitter instead of
  surfacing to the application. Transient errors never touch media, so a
  retried write applies exactly once (checked by the sanitizer).
* **degraded reads** — a read that hits a permanently failed device is
  re-served segment by segment: live segments go down the normal path,
  segments on the dead device are reconstructed on the fly from the
  attached :class:`~repro.storage.parity.ParityGroup` (XOR of survivors
  + check device), with journaled writes overlaid on top. Degraded-read
  latency is tallied separately.
* **degraded writes** — under parity protection, writes route through
  the parity discipline (full-stripe rows written with fresh parity,
  independent segments read-modify-write in ``"rmw"`` mode or left stale
  in ``"synchronized"`` mode — the §5 gap); writes addressed to a failed
  member are journaled for replay by the hot-spare rebuild.

Parity consistency under concurrency is guarded by per-parity-unit locks
(:class:`~repro.sim.resources.Resource`): a read-modify-write and an
on-the-fly reconstruction over the same unit serialize, so neither ever
observes a half-updated data/parity pair.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..devices.controller import DeviceFailedError, TransientIOError
from ..sim.engine import Environment, Event, Process
from ..sim.resources import Resource
from ..sim.rng import RngStreams
from ..storage.layout import gather_payload, plan_batch
from ..storage.parity import ParityGroup, StaleParityError
from .config import ResilienceConfig
from .journal import WriteJournal
from .retry import RetryPolicy, retrying
from .stats import ResilienceStats

if TYPE_CHECKING:  # pragma: no cover
    from ..ionode.routing import IONodeCluster
    from ..storage.layout import DataLayout, Segment
    from ..storage.volume import Extent, Volume
    from .failover import FailoverManager
    from .rebuild import HotSpareRebuilder

__all__ = ["ResilientVolume"]


class ResilientVolume:
    """The ``Volume`` surface with degraded-mode service and retries."""

    def __init__(
        self,
        inner: Any,
        *,
        group: ParityGroup | None = None,
        config: ResilienceConfig | None = None,
        rng: RngStreams | None = None,
    ):
        self.inner = inner
        #: the raw volume under the plane (identical for a direct plane)
        self.volume: "Volume" = getattr(inner, "volume", inner)
        #: the I/O-node cluster when the plane is server-mediated
        self.cluster: "IONodeCluster | None" = getattr(inner, "cluster", None)
        self.config = config or ResilienceConfig()
        self.policy: RetryPolicy | None = self.config.retry
        self.group = group
        if group is not None:
            if len(group.data_devices) != self.volume.n_devices or any(
                group.data_devices[i] is not self.volume.devices[i]
                for i in range(self.volume.n_devices)
            ):
                raise ValueError(
                    "parity group must be built over the volume's devices, "
                    "in volume order"
                )
        self.rng = rng or RngStreams(self.config.seed)
        #: extent-batched (list-I/O) submission: merge device-contiguous
        #: segment runs before parity planning (set via ``set_batching``)
        self.coalesce = False
        self.stats = ResilienceStats()
        self.journal = WriteJournal()
        #: device index -> time the layer first observed it failed
        self.failed_at: dict[int, float] = {}
        #: attached background rebuilder (set by ``attach_resilience``)
        self.rebuilder: "HotSpareRebuilder | None" = None
        #: attached node-failover manager (set by ``attach_resilience``)
        self.failover: "FailoverManager | None" = None
        #: per-parity-unit serialization (absolute unit index -> lock)
        self._unit_locks: dict[int, Resource] = {}

    # -- delegated management plane ----------------------------------------

    @property
    def env(self) -> Environment:
        return self.volume.env

    @property
    def devices(self) -> list[Any]:
        return self.volume.devices

    @property
    def n_devices(self) -> int:
        return self.volume.n_devices

    def allocate(self, layout: "DataLayout", file_bytes: int) -> "Extent":
        """Reserve space on the wrapped plane."""
        return self.inner.allocate(layout, file_bytes)

    def free(self, extent: "Extent") -> None:
        """Release an extent on the wrapped plane."""
        return self.inner.free(extent)

    def peek(self, extent: "Extent", layout: "DataLayout", offset: int, nbytes: int) -> np.ndarray:
        """Zero-time inspection via the wrapped plane."""
        return self.inner.peek(extent, layout, offset, nbytes)

    def poke(self, extent: "Extent", layout: "DataLayout", offset: int, data: Any) -> None:
        """Zero-time mutation via the wrapped plane."""
        return self.inner.poke(extent, layout, offset, data)

    # -- reads ---------------------------------------------------------------

    def read(self, extent: "Extent", layout: "DataLayout", offset: int, nbytes: int) -> Process:
        """Read file bytes, degrading to reconstruction on device failure."""
        return self.env.process(
            self._do_read(extent, layout, offset, nbytes), name="resilient.read"
        )

    def read_many(
        self,
        extent: "Extent",
        layout: "DataLayout",
        ranges: list[tuple[int, int]],
    ) -> Process:
        """List-I/O read: every range in flight at once, resilience per
        range — a range that hits a failed device degrades to
        reconstruction on its own, without splitting the healthy ones.
        Value is the single concatenated uint8 array, ranges in list
        order."""
        return self.env.process(
            self._do_read_many(extent, layout, ranges), name="resilient.readmany"
        )

    def _do_read_many(self, extent, layout, ranges):
        if self.coalesce:
            # list-I/O fast path: the whole batch down the inner plane as
            # one submission (which merges device runs itself), one retry
            # wrapper for the lot; a permanent failure degrades to the
            # per-range path below so healthy ranges stay whole
            try:
                value = yield from self._with_retry(
                    lambda: self.inner.read_many(extent, layout, ranges),
                    kind="read",
                    target="plane",
                )
                return value
            except DeviceFailedError:
                pass
        procs = [
            self.read(extent, layout, offset, nbytes)
            for offset, nbytes in ranges
        ]
        if procs:
            yield self.env.all_of(procs)
        if not procs:
            return np.empty(0, dtype=np.uint8)
        if len(procs) == 1:
            return procs[0].value
        return np.concatenate([p.value for p in procs])

    def write_many(
        self,
        extent: "Extent",
        layout: "DataLayout",
        ranges: list[tuple[int, int]],
        data: Any,
    ) -> Process:
        """List-I/O write of concatenated ``data`` (see :meth:`read_many`)."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        return self.env.process(
            self._do_write_many(extent, layout, ranges, arr),
            name="resilient.writemany",
        )

    def _do_write_many(self, extent, layout, ranges, arr):
        total = sum(nbytes for _, nbytes in ranges)
        if total != arr.size:
            raise ValueError(f"ranges cover {total} bytes, data has {arr.size}")
        if self.coalesce:
            # list-I/O: one combined segment batch, one parity plan for
            # the whole gather — merged device runs become single
            # multi-unit rows/RMWs instead of per-range, per-unit ops
            segments: list = []
            for offset, nbytes in ranges:
                segments.extend(layout.map_range(offset, nbytes))
            yield from self._write_segments(extent, segments, arr)
            return int(arr.size)
        procs = []
        pos = 0
        for offset, nbytes in ranges:
            procs.append(
                self.write(extent, layout, offset, arr[pos : pos + nbytes])
            )
            pos += nbytes
        if procs:
            yield self.env.all_of(procs)
        return int(arr.size)

    def _do_read(self, extent: "Extent", layout: "DataLayout", offset: int, nbytes: int):
        try:
            # fast path: the whole range down the normal plane (keeps the
            # I/O-node batch view intact), transient errors retried
            value = yield from self._with_retry(
                lambda: self.inner.read(extent, layout, offset, nbytes),
                kind="read",
                target="plane",
            )
            return value
        except DeviceFailedError:
            pass  # a member is permanently down: degrade to per-segment
        t0 = self.env.now
        segments = layout.map_range(offset, nbytes)
        procs = [
            self.env.process(self._read_segment(extent, seg)) for seg in segments
        ]
        if procs:
            yield self.env.all_of(procs)
        out = np.empty(nbytes, dtype=np.uint8)
        pos = 0
        for seg, proc in zip(segments, procs):
            out[pos : pos + seg.length] = proc.value
            pos += seg.length
        self.stats.degraded_reads += 1
        self.stats.degraded_read_latency.observe(self.env.now - t0)
        return out

    def _read_segment(self, extent: "Extent", seg: "Segment"):
        dev_i = seg.device
        abs_off = extent.base(dev_i) + seg.offset
        if not self.volume.devices[dev_i].failed:
            try:
                value = yield from self._with_retry(
                    lambda: self._plane_read(dev_i, abs_off, seg.length),
                    kind="read",
                    target=f"dev{dev_i}",
                )
                return value
            except DeviceFailedError:
                pass  # died between the check and the read
        return (yield from self._reconstruct_read(dev_i, abs_off, seg.length))

    def _reconstruct_read(self, dev_i: int, abs_off: int, nbytes: int):
        """Serve a dead device's bytes from parity + survivors + journal."""
        self._note_failure(dev_i)
        if self.group is None:
            # shadow pairs recover internally; reaching here means the
            # device (or the whole pair) is gone with no reconstruction path
            raise DeviceFailedError(self._device_name(dev_i))
        if not self.group.reconstruct_safe(abs_off, nbytes):
            raise StaleParityError(
                f"degraded read of device {dev_i} range "
                f"[{abs_off}, {abs_off + nbytes}): parity has stale units "
                "(independent writes without synchronized maintenance)"
            )
        locks = yield from self._lock_units(abs_off, nbytes)
        try:
            # reconstruction is pure reads, so a transient survivor error
            # retries the whole XOR pass (idempotent)
            data = yield from self._with_retry(
                lambda: self.env.process(
                    self.group.reconstruct_gen(dev_i, abs_off, nbytes),
                    name="resilient.reconstruct",
                ),
                kind="reconstruct",
                target=f"dev{dev_i}",
            )
        finally:
            self._unlock(locks)
        self.journal.overlay(dev_i, abs_off, nbytes, data)
        self.stats.reconstructed_bytes += nbytes
        return data

    # -- writes -----------------------------------------------------------------

    def write(self, extent: "Extent", layout: "DataLayout", offset: int, data: Any) -> Process:
        """Write file bytes under the active protection discipline."""
        arr = (
            np.frombuffer(data, dtype=np.uint8)
            if isinstance(data, (bytes, bytearray))
            else np.asarray(data, dtype=np.uint8)
        )
        return self.env.process(
            self._do_write(extent, layout, offset, arr), name="resilient.write"
        )

    def _do_write(self, extent: "Extent", layout: "DataLayout", offset: int, arr: np.ndarray):
        segments = layout.map_range(offset, len(arr))
        yield from self._write_segments(extent, segments, arr)
        return int(arr.size)

    def _write_segments(
        self, extent: "Extent", segments: "list[Segment]", arr: np.ndarray
    ):
        """Run the protection discipline over one batch of segments.

        With ``coalesce`` on, device-contiguous segment runs merge into
        single multi-unit parity operations first (list I/O): one RMW —
        or one full-stripe row — covers the whole run, instead of one
        per stripe unit. The parity paths are range-generic, so a merged
        run locks, reads, and XORs exactly the bytes the per-unit
        operations would have, in one pass.
        """
        if self.coalesce:
            merged, scatter = plan_batch(segments)
            triples = [
                (
                    seg.device,
                    extent.base(seg.device) + seg.offset,
                    gather_payload(arr, pieces),
                )
                for seg, pieces in zip(merged, scatter)
            ]
        else:
            triples = []
            pos = 0
            for seg in segments:
                triples.append(
                    (seg.device, extent.base(seg.device) + seg.offset, arr[pos : pos + seg.length])
                )
                pos += seg.length
        if self.group is not None:
            procs = self._plan_parity_write(triples)
        else:
            # shadow / unprotected: per-segment so a retried segment is its
            # own op — a segment that applied is never re-issued
            procs = [
                self.env.process(self._write_segment(dev, off, chunk))
                for dev, off, chunk in triples
                if len(chunk)
            ]
        if procs:
            yield self.env.all_of(procs)

    def _write_segment(self, dev_i: int, abs_off: int, chunk: np.ndarray):
        """One plain (non-parity) segment write with retry."""
        yield from self._with_retry(
            lambda: self._plane_write(dev_i, abs_off, chunk),
            kind="write",
            target=f"dev{dev_i}",
        )
        return len(chunk)

    # -- parity write planning ---------------------------------------------------

    def _plan_parity_write(self, triples: list[tuple[int, int, np.ndarray]]) -> list[Process]:
        """Split a write into full-stripe rows and independent segments.

        A *row* is a set of equal-length segments at the same absolute
        offset on every data device: parity is the XOR of the new chunks,
        no old data needs reading. Anything else goes down the
        independent-write path (read-modify-write in ``rmw`` mode, stale
        marking in ``synchronized`` mode). Rows require all members live;
        with a member down they fall back to independent writes.
        """
        group = self.group
        by_span: dict[tuple[int, int], dict[int, np.ndarray]] = {}
        for dev, off, chunk in triples:
            if len(chunk):
                by_span.setdefault((off, len(chunk)), {})[dev] = chunk
        procs: list[Process] = []
        all_alive = not any(d.failed for d in group.data_devices) and (
            not group.parity_device.failed
        )
        for (off, length), chunks in by_span.items():
            if all_alive and len(chunks) == group.n_data:
                procs.append(
                    self.env.process(self._write_row(off, length, chunks))
                )
            else:
                for dev, chunk in chunks.items():
                    procs.append(
                        self.env.process(self._write_independent(dev, off, chunk))
                    )
        return procs

    def _write_row(self, abs_off: int, length: int, chunks: dict[int, np.ndarray]):
        """Full-stripe write: data on every member + XOR parity, in parallel.

        A data member dying mid-row is absorbed: parity is the XOR of all
        *new* chunks, so once it lands, reconstruction of the dead member
        yields its intended chunk even though the media never got it —
        the chunk is journaled anyway so the rebuild replay is uniform.
        """
        group = self.group
        parity = np.zeros(length, dtype=np.uint8)
        for chunk in chunks.values():
            np.bitwise_xor(parity, chunk, out=parity)
        locks = yield from self._lock_units(abs_off, length)
        try:
            guards = {
                dev: self.env.process(
                    self._guard(
                        self.env.process(
                            self._device_write(group.data_devices[dev], dev, abs_off, chunk)
                        )
                    )
                )
                for dev, chunk in chunks.items()
            }
            parity_guard = self.env.process(
                self._guard(
                    self.env.process(
                        self._device_write(group.parity_device, "parity", abs_off, parity)
                    )
                )
            )
            yield self.env.all_of(list(guards.values()) + [parity_guard])
            pok, pval = parity_guard.value
            if not pok:
                if not isinstance(pval, DeviceFailedError) and any(
                    g.value[0] for g in guards.values()
                ):
                    # parity retries exhausted (media untouched) while some
                    # data chunk landed: the row no longer XORs on media —
                    # poison it so reconstruction surfaces StaleParityError
                    self._mark_all_stale(abs_off, length)
                raise pval  # check device gone: protection lost, surface it
            for dev, guard in guards.items():
                ok, val = guard.value
                if not ok:
                    if not isinstance(val, DeviceFailedError):
                        # this chunk never landed but parity (the XOR of the
                        # *new* chunks) did: poison the row before surfacing
                        self._mark_all_stale(abs_off, length)
                        raise val
                    yield from self._degraded_write(dev, abs_off, chunks[dev])
                group.mark_fresh(dev, abs_off, length)
        finally:
            self._unlock(locks)
        self._invalidate_nodes(list(chunks))
        return length * len(chunks)

    def _write_independent(self, dev_i: int, abs_off: int, chunk: np.ndarray):
        """Independent single-device write under parity protection."""
        group = self.group
        target = group.data_devices[dev_i]
        if target.failed:
            yield from self._degraded_write(dev_i, abs_off, chunk)
            return len(chunk)
        if self.config.parity_mode == "rmw" and not group.parity_device.failed:
            yield from self._rmw_write(dev_i, abs_off, chunk)
        else:
            # synchronized mode: data lands, parity goes stale — §5
            try:
                yield from self._with_retry(
                    lambda: target.write(abs_off, chunk),
                    kind="write",
                    target=f"dev{dev_i}",
                )
            except DeviceFailedError:
                yield from self._degraded_write(dev_i, abs_off, chunk)
                return len(chunk)
            group.mark_stale(dev_i, abs_off, len(chunk))
        self._invalidate_nodes([dev_i])
        return len(chunk)

    def _rmw_write(self, dev_i: int, abs_off: int, chunk: np.ndarray):
        """Read-modify-write parity update, serialized per parity unit."""
        group = self.group
        target = group.data_devices[dev_i]
        n = len(chunk)
        locks = yield from self._lock_units(abs_off, n)
        try:
            try:
                old_data = yield from self._with_retry(
                    lambda: target.read(abs_off, n), kind="read", target=f"dev{dev_i}"
                )
            except DeviceFailedError:
                yield from self._degraded_write(dev_i, abs_off, chunk, locked=True)
                return
            old_parity = yield from self._with_retry(
                lambda: group.parity_device.read(abs_off, n),
                kind="read",
                target="parity",
            )
            new_parity = np.bitwise_xor(
                np.bitwise_xor(old_parity, old_data), chunk
            )
            data_guard = self.env.process(
                self._guard(
                    self.env.process(self._device_write(target, dev_i, abs_off, chunk))
                )
            )
            parity_guard = self.env.process(
                self._guard(
                    self.env.process(
                        self._device_write(group.parity_device, "parity", abs_off, new_parity)
                    )
                )
            )
            # both guards settle before the unit locks release, so no
            # reconstruction can observe a half-updated data/parity pair
            yield self.env.all_of([data_guard, parity_guard])
            pok, pval = parity_guard.value
            dok, dval = data_guard.value
            if not pok:
                if not isinstance(pval, DeviceFailedError) and dok:
                    # new data landed but the parity update never touched
                    # media (transient retries exhausted): the pair no
                    # longer XORs — poison the range before surfacing
                    self._mark_all_stale(abs_off, n)
                raise pval  # check device died: protection lost, surface it
            if not dok:
                if not isinstance(dval, DeviceFailedError):
                    # new parity landed but the data write never touched
                    # media: poison the range before surfacing
                    self._mark_all_stale(abs_off, n)
                    raise dval
                # parity landed with the new chunk folded in, so recon-
                # struction already yields it; journal for the rebuild
                yield from self._degraded_write(dev_i, abs_off, chunk, locked=True)
        finally:
            self._unlock(locks)

    def _degraded_write(
        self, dev_i: int, abs_off: int, chunk: np.ndarray, locked: bool = False
    ):
        """A write addressed to a failed member: journal it for replay.

        The media is untouched and parity still matches the dead drive's
        on-media bytes, so reconstruction stays valid; degraded reads
        overlay the journal, and the rebuild replays it onto the spare.
        ``locked`` marks calls already holding the covering unit locks.
        """
        self._note_failure(dev_i)
        self.journal.record(dev_i, abs_off, chunk, self.env.now)
        self.stats.journaled_writes += 1
        self.stats.degraded_writes += 1
        self._invalidate_nodes([dev_i])
        return len(chunk)
        yield  # pragma: no cover - marks this function as a generator

    def _mark_all_stale(self, abs_off: int, nbytes: int) -> None:
        """One leg of a data/parity pair landed without its counterpart.

        Parity over the range no longer XORs to on-media data, and
        ``reconstruct_safe`` is cross-device — a mismatch introduced
        through any member poisons reconstruction of every member — so
        the whole range is marked stale for all of them. Subsequent
        degraded reads and rebuilds surface :class:`StaleParityError`
        instead of fabricating bytes.
        """
        group = self.group
        for dev in range(group.n_data):
            group.mark_stale(dev, abs_off, nbytes)

    def _device_write(self, device: Any, label: Any, abs_off: int, data: np.ndarray):
        """Retry-wrapped raw device write used inside parity paths."""
        yield from self._with_retry(
            lambda: device.write(abs_off, data), kind="write", target=f"dev{label}"
        )
        return len(data)

    def _guard(self, ev: Event):
        """Absorb one event's failure into an ``(ok, value)`` pair."""
        try:
            value = yield ev
            return True, value
        except Exception as exc:
            return False, exc

    # -- plumbing ----------------------------------------------------------------

    def _plane_read(self, dev_i: int, abs_off: int, nbytes: int) -> Event:
        """One device-range read down the active plane (node or direct)."""
        if self.cluster is not None:
            return self.env.process(
                self._node_op("read", dev_i, abs_off, nbytes, None),
                name=f"resilient.nread{dev_i}",
            )
        return self.volume.devices[dev_i].read(abs_off, nbytes)

    def _plane_write(self, dev_i: int, abs_off: int, chunk: np.ndarray) -> Event:
        """One device-range write down the active plane (node or direct)."""
        if self.cluster is not None:
            return self.env.process(
                self._node_op("write", dev_i, abs_off, len(chunk), chunk),
                name=f"resilient.nwrite{dev_i}",
            )
        return self.volume.devices[dev_i].write(abs_off, chunk)

    def _node_op(self, kind: str, dev_i: int, abs_off: int, nbytes: int, chunk):
        """One single-item request through the owning I/O node.

        This is the retried ionode client path: each attempt is a fresh
        request message, and its outcome feeds the node's circuit breaker
        (repeatedly failing nodes get quarantined, a success closes the
        breaker again). The owner is resolved only *after* the message
        flight over the interconnect: a node crash or breaker quarantine
        during that window re-routes the device, and the request must
        land at its current owner — callers never learn their server
        changed.
        """
        cluster = self.cluster
        ic = cluster.interconnect
        yield self.env.sleep(
            ic.request_cost() if kind == "read" else ic.transfer_cost(nbytes)
        )
        node_idx = cluster.router.node_of(dev_i)
        node = cluster.nodes[node_idx]
        try:
            if kind == "read":
                req = node.submit("read", [(dev_i, abs_off, nbytes)])
                yield req.admitted
                arrays = yield req.event
                yield self.env.sleep(ic.transfer_cost(nbytes))
                result = arrays[0]
            else:
                req = node.submit("write", [(dev_i, abs_off, nbytes)], data=[chunk])
                yield req.admitted
                yield req.event
                yield self.env.sleep(ic.request_cost())
                result = nbytes
        except TransientIOError:
            if self.failover is not None:
                self.failover.note_request_failure(node_idx)
            raise
        if self.failover is not None:
            self.failover.note_request_success(node_idx)
        return result

    def _with_retry(self, make_event: Callable[[], Event], kind: str, target: str):
        if self.policy is None:
            value = yield make_event()
            return value
        value = yield from retrying(
            self.env,
            make_event,
            self.policy,
            rng=self.rng,
            stream=f"retry.{target}",
            kind=kind,
            target=target,
            on_report=self.stats.note_retry,
        )
        return value

    def _lock_units(self, abs_off: int, nbytes: int):
        """Acquire the parity-unit locks covering a range (sorted order)."""
        unit = self.group.parity_unit if self.group is not None else None
        if unit is None or nbytes == 0:
            return []
        first = abs_off // unit
        last = (abs_off + nbytes - 1) // unit
        held = []
        for u in range(first, last + 1):
            lock = self._unit_locks.get(u)
            if lock is None:
                lock = Resource(self.env, capacity=1)
                self._unit_locks[u] = lock
            req = lock.request()
            yield req
            held.append((lock, req))
        return held

    def _unlock(self, held) -> None:
        for lock, req in reversed(held):
            lock.release(req)

    def _invalidate_nodes(self, dev_indices: list[int]) -> None:
        """Keep node caches coherent with writes that bypassed the nodes."""
        if self.cluster is None:
            return
        for dev_i in dev_indices:
            if isinstance(dev_i, int):
                self.cluster.invalidate_device(dev_i)

    def _note_failure(self, dev_i: int) -> None:
        """First sighting of a failed device: stamp it, kick auto-rebuild."""
        if dev_i in self.failed_at:
            return
        self.failed_at[dev_i] = self.env.now
        if (
            self.config.auto_rebuild
            and self.rebuilder is not None
            and self.rebuilder.can_rebuild(dev_i)
        ):
            self.rebuilder.start(dev_i)

    def _device_name(self, dev_i: int) -> str:
        return getattr(self.volume.devices[dev_i], "name", f"device{dev_i}")
