"""repro — reproduction of Crockett (1989), "File Concepts for Parallel I/O".

A library of parallel file organizations (S, PS, IS, SS, GDA, PDA) over a
multi-device storage substrate, with two backends:

* ``repro.fs`` — a discrete-event-simulated file system (performance
  studies in simulated time; drives every benchmark);
* ``repro.live`` — the same organizations on real host files with real
  threads (functional use).

Quickstart (simulated)::

    from repro import Environment, build_parallel_fs

    env = Environment()
    pfs = build_parallel_fs(env, n_devices=4)
    f = pfs.create("data", "PS", n_records=1000, record_size=64,
                   records_per_block=10, n_processes=4)

    def worker(p):
        handle = f.internal_view(p)
        data = yield from handle.read_next(handle.n_local_records)

    for p in range(4):
        env.process(worker(p))
    env.run()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .baselines import FilePerProcessDataset, build_parallel_fs, single_device_fs
from .collective import CollectiveIO, balanced_indices
from .container import (
    ContainerReader,
    ContainerWriter,
    SectionDecl,
    array_section,
    block_section,
    fsck,
    inline_section,
    migrate_container,
    scan_container,
)
from .core import (
    BlockSpec,
    FileCategory,
    FileOrganization,
    OrganizationMap,
    RecordSpec,
    make_map,
)
from .datatype import (
    ContiguousView,
    FileView,
    IndexedView,
    NestedStridedView,
    StridedView,
    view_of_map,
)
from .fs import (
    BackupManager,
    ParallelFile,
    ParallelFileSystem,
    SSSession,
    alternate_view,
    convert_file,
    protection_overview,
    verify_file,
)
from .ionode import Interconnect, IONode, IONodeCluster, MediatedVolume, ServerCache
from .live import LiveParallelFileSystem
from .metastore import (
    MetadataClient,
    MetadataService,
    MetaServer,
    ShardedCatalog,
)
from .qos import (
    QoSClass,
    QoSConfig,
    QoSManager,
    Tenant,
    TokenBucket,
    WeightedFairQueue,
)
from .resilience import (
    FailoverManager,
    HotSpareRebuilder,
    ResilienceConfig,
    ResilientVolume,
    RetryPolicy,
)
from .sanitize import AccessConflictDetector, EngineSanitizer
from .sim import Environment, RngStreams
from .storage import Volume
from .trace import NullTraceRecorder, TraceRecorder

__version__ = "1.0.0"

__all__ = [
    "FilePerProcessDataset",
    "build_parallel_fs",
    "single_device_fs",
    "CollectiveIO",
    "balanced_indices",
    "ContainerReader",
    "ContainerWriter",
    "SectionDecl",
    "array_section",
    "block_section",
    "fsck",
    "inline_section",
    "migrate_container",
    "scan_container",
    "FileView",
    "ContiguousView",
    "StridedView",
    "NestedStridedView",
    "IndexedView",
    "view_of_map",
    "BlockSpec",
    "FileCategory",
    "FileOrganization",
    "OrganizationMap",
    "RecordSpec",
    "make_map",
    "BackupManager",
    "ParallelFile",
    "ParallelFileSystem",
    "SSSession",
    "alternate_view",
    "convert_file",
    "protection_overview",
    "verify_file",
    "Interconnect",
    "IONode",
    "IONodeCluster",
    "MediatedVolume",
    "ServerCache",
    "LiveParallelFileSystem",
    "MetadataClient",
    "MetadataService",
    "MetaServer",
    "ShardedCatalog",
    "QoSClass",
    "QoSConfig",
    "QoSManager",
    "Tenant",
    "TokenBucket",
    "WeightedFairQueue",
    "FailoverManager",
    "HotSpareRebuilder",
    "ResilienceConfig",
    "ResilientVolume",
    "RetryPolicy",
    "AccessConflictDetector",
    "EngineSanitizer",
    "Environment",
    "RngStreams",
    "Volume",
    "TraceRecorder",
    "NullTraceRecorder",
]
