"""The QoS manager: tenant registry, admission gate, scheduler factory.

One :class:`QoSManager` serves one file system. It owns the tenant table,
builds one :class:`~repro.qos.scheduler.WeightedFairQueue` per device and
per I/O node (each queue point schedules independently, like the paper's
per-device I/O processors), gates client operations through per-tenant
token buckets, and forwards starvation / over-rate / deadline-miss
detections to the attached engine sanitizer.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim.engine import Environment, Process
from .config import QoSConfig
from .scheduler import QoSTag, WeightedFairQueue
from .tenant import QoSClass, Tenant

__all__ = ["QoSManager"]


class QoSManager:
    """Tenant registry + policy factory for one file system."""

    def __init__(self, env: Environment, config: QoSConfig | None = None):
        self.env = env
        self.config = config or QoSConfig()
        self.tenants: dict[str, Tenant] = {}
        #: the tenant untagged (system / legacy) work is billed to
        self.default_tenant = self._make_tenant(
            QoSClass("default", weight=self.config.default_weight)
        )
        #: every scheduler built for a device or node (label -> queue)
        self.schedulers: dict[str, WeightedFairQueue] = {}
        #: starvation flags raised across all queue points
        self.starvations = 0
        #: deadline misses across all tenants
        self.deadline_misses = 0

    # -- tenant registry ------------------------------------------------------

    def _make_tenant(self, qos_class: QoSClass) -> Tenant:
        t = Tenant(self.env, qos_class, on_deadline_miss=self._missed)
        self.tenants[qos_class.name] = t
        return t

    def tenant(
        self,
        name: str,
        *,
        weight: float = 1.0,
        priority: float = 0.0,
        deadline: float | None = None,
        rate: float | None = None,
        burst: float | None = None,
    ) -> Tenant:
        """Get-or-create the tenant ``name`` with the given service class.

        Re-requesting an existing name returns the existing tenant (the
        class parameters of the first call win — a tenant's contract does
        not change mid-run).
        """
        if name in self.tenants:
            return self.tenants[name]
        return self._make_tenant(
            QoSClass(
                name,
                weight=weight,
                priority=priority,
                deadline=deadline,
                rate=rate,
                burst=burst,
            )
        )

    def resolve(self, tenant: Any) -> Tenant:
        """Map a request's tenant tag to a live tenant (None -> default)."""
        if isinstance(tenant, Tenant):
            return tenant
        if isinstance(tenant, str) and tenant in self.tenants:
            return self.tenants[tenant]
        return self.default_tenant

    def spawn(
        self, tenant: Tenant | str, generator: Generator, name: str | None = None
    ) -> Process:
        """Start a simulated process whose I/O is billed to ``tenant``.

        Sets the process's ambient ``qos_tenant``; every child process it
        creates (file ops, volume ops, node round-trips) inherits it, so
        requests arrive at the device and node layers already attributed.
        """
        proc = self.env.process(generator, name=name)
        proc.qos_tenant = self.resolve(tenant)
        return proc

    def active_tenant(self) -> Tenant:
        """The tenant of the currently running process (default if none)."""
        return self.resolve(
            getattr(self.env.active_process, "qos_tenant", None)
        )

    # -- admission gate --------------------------------------------------------

    def admit(self, tenant: Any, nbytes: int):
        """Generator gating ``nbytes`` of traffic through the tenant's
        bucket; bills the wait as admission-blocked time. No-op (zero
        simulated time) for unthrottled tenants."""
        t = self.resolve(tenant)
        if t.bucket is not None and nbytes > 0:
            began = self.env.now
            yield from t.bucket.acquire(nbytes)
            t.note_blocked(self.env.now - began)
        return None

    def admit_active(self, nbytes: int):
        """:meth:`admit` for the currently running process's tenant."""
        yield from self.admit(self.active_tenant(), nbytes)

    # -- scheduler factory -----------------------------------------------------

    def make_scheduler(self, label: str) -> WeightedFairQueue:
        """One independent scheduling queue for a device or I/O node."""
        sched = WeightedFairQueue(
            mode=self.config.scheduler,
            starvation_threshold=self.config.starvation_threshold,
            on_starvation=lambda tag, label=label: self._starved(label, tag),
        )
        self.schedulers[label] = sched
        return sched

    # -- detection forwarding --------------------------------------------------

    def _starved(self, label: str, tag: QoSTag) -> None:
        self.starvations += 1
        sanitizer = self.env._sanitizer
        if sanitizer is not None and hasattr(sanitizer, "on_qos_starvation"):
            sanitizer.on_qos_starvation(
                f"tenant {tag.tenant.name!r} request (seq {tag.seq}) at "
                f"{label} bypassed {tag.bypassed} times "
                f"(threshold {self.starvation_threshold})"
            )

    def _missed(self, tenant: Tenant) -> None:
        self.deadline_misses += 1
        sanitizer = self.env._sanitizer
        if (
            self.config.strict_deadlines
            and sanitizer is not None
            and hasattr(sanitizer, "on_qos_deadline_miss")
        ):
            sanitizer.on_qos_deadline_miss(
                f"tenant {tenant.name!r} missed its "
                f"{tenant.deadline}s deadline "
                f"({tenant.deadline_misses} miss(es) total)"
            )

    @property
    def starvation_threshold(self) -> int:
        """The configured bypass threshold (convenience passthrough)."""
        return self.config.starvation_threshold

    def check_buckets(self) -> None:
        """Verify every rate-limited tenant stayed inside its bucket.

        Records a sanitizer violation (``qos-bucket-overrate``) for any
        tenant whose granted bytes exceed ``burst + rate * elapsed`` —
        the "rate-limited tenants never exceed their bucket" invariant.
        Call at end of run (the ``--sanitize`` harness and the QoS
        integration tests do).
        """
        sanitizer = self.env._sanitizer
        for t in self.tenants.values():
            if t.bucket is None:
                continue
            if sanitizer is not None and hasattr(sanitizer, "on_qos_bucket"):
                sanitizer.on_qos_bucket(
                    t.name,
                    t.bucket.conformant(),
                    f"granted {t.bucket.granted_total:.0f} bytes against "
                    f"burst {t.bucket.burst:.0f} + rate {t.bucket.rate:.0f}/s",
                )
