"""Configuration for the multi-tenant QoS subsystem.

One frozen dataclass, mirroring :class:`~repro.resilience.ResilienceConfig`:
construct it once, hand it to ``build_parallel_fs(..., qos=...)`` or
``ParallelFileSystem.attach_qos``, and every knob is validated up front.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QoSConfig"]

_SCHEDULERS = ("wfq", "edf", "fifo")


@dataclass(frozen=True)
class QoSConfig:
    """Knobs for the QoS layer (scheduling, throttling, detection).

    ``scheduler`` picks the queue discipline installed on devices and
    I/O-node inboxes: ``"wfq"`` (virtual-time weighted fair queueing),
    ``"edf"`` (earliest deadline first), or ``"fifo"`` (arrival order —
    tenant accounting without reordering). ``default_weight`` is the
    weight of the implicit tenant untagged work is billed to.
    ``starvation_threshold`` is how many later-arriving requests may be
    served past a waiting one before the sanitizer flags starvation.
    ``strict_deadlines`` escalates deadline misses from per-tenant
    counters to sanitizer violations. ``device_scheduling`` /
    ``node_scheduling`` choose which layers get the scheduler (per-tenant
    accounting and admission throttling happen regardless).
    """

    scheduler: str = "wfq"
    default_weight: float = 1.0
    starvation_threshold: int = 128
    strict_deadlines: bool = False
    device_scheduling: bool = True
    node_scheduling: bool = True

    def __post_init__(self) -> None:
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"scheduler {self.scheduler!r} not one of {_SCHEDULERS}"
            )
        if self.default_weight <= 0:
            raise ValueError("default_weight must be positive")
        if self.starvation_threshold < 1:
            raise ValueError("starvation_threshold must be >= 1")
