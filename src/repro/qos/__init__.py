"""Multi-tenant quality of service for the parallel file system.

Crockett (§4) delegates device arbitration to dedicated I/O processors
but leaves the arbitration *policy* open; every queue in this codebase was
plain FIFO, so one greedy client could monopolize a device or an I/O node
indefinitely. This package adds the policy layer:

* :class:`QoSClass` / :class:`Tenant` — service contracts (weight,
  priority, deadline, rate limit) and per-tenant backpressure accounting
  (blocked at admission vs queued vs in service);
* :class:`WeightedFairQueue` — virtual-time weighted fair queueing with
  deterministic FIFO tie-breaks, plus EDF and FIFO modes — pluggable into
  device controllers (:class:`QoSDevicePolicy`) and I/O-node inboxes
  (:class:`TenantStore`);
* :class:`TokenBucket` — admission throttling at the client boundary;
* :class:`QoSManager` — the per-file-system registry tying it together,
  wired to the engine sanitizer for starvation / over-rate /
  deadline-miss detection.

Opt in via ``build_parallel_fs(..., qos=QoSConfig(...))`` or
``ParallelFileSystem.attach_qos``; composes with ``io_nodes=`` and
``resilience=`` (see ``docs/QOS.md`` for the composition rules).
"""

from .bucket import TokenBucket
from .config import QoSConfig
from .manager import QoSManager
from .scheduler import QoSDevicePolicy, QoSTag, TenantStore, WeightedFairQueue
from .tenant import QoSClass, Tenant

__all__ = [
    "QoSConfig",
    "QoSClass",
    "Tenant",
    "TokenBucket",
    "QoSTag",
    "WeightedFairQueue",
    "QoSDevicePolicy",
    "TenantStore",
    "QoSManager",
]
