"""Token-bucket admission throttling.

A rate-limited tenant holds a :class:`TokenBucket`; every byte it wants to
move through the file system must first be covered by tokens. Tokens refill
continuously at ``rate`` bytes per simulated second up to ``burst``; a
request larger than the current balance blocks the submitting process until
the refill covers it. Conformance invariant (checked by the sanitizer via
:meth:`TokenBucket.conformant`): total bytes granted by time ``t`` never
exceed ``burst + rate * (t - t0)``.
"""

from __future__ import annotations

from ..sim.engine import Environment

__all__ = ["TokenBucket"]


class TokenBucket:
    """Continuous-refill token bucket over simulated time."""

    __slots__ = ("env", "rate", "burst", "_tokens", "_last", "_t0",
                 "granted_total", "grants", "throttled_grants")

    def __init__(self, env: Environment, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive (bytes per second)")
        if burst <= 0:
            raise ValueError("burst must be positive (bytes)")
        self.env = env
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = env.now
        self._t0 = env.now
        #: total bytes ever granted (conformance accounting)
        self.granted_total = 0.0
        #: acquire() calls completed
        self.grants = 0
        #: acquire() calls that had to wait for refill
        self.throttled_grants = 0

    def _refill(self) -> None:
        now = self.env.now
        if now > self._last:
            self._tokens = min(
                self.burst, self._tokens + self.rate * (now - self._last)
            )
            self._last = now

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to now)."""
        self._refill()
        return self._tokens

    def acquire(self, amount: float):
        """Block (as a generator) until ``amount`` tokens are taken.

        Requests larger than ``burst`` are granted in bucket-sized
        chunks, each waiting for its own refill — so the grant rate can
        never exceed the configured rate even for oversized requests.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        remaining = float(amount)
        waited = False
        while remaining > 0:
            self._refill()
            take = min(remaining, self.burst)
            while take - self._tokens > 1e-9:
                # re-check after waking: a concurrent acquirer may have
                # drained the refill we waited for (the balance must
                # never go materially negative, or grants would outrun
                # the rate). The 1e-9 tolerance absorbs float dust from
                # the refill arithmetic — without it a wake-up can land
                # infinitesimally short and re-wait for a timeout too
                # small to advance the clock, spinning forever.
                waited = True
                yield self.env.sleep((take - self._tokens) / self.rate)
                self._refill()
            self._tokens = max(0.0, self._tokens - take)
            self.granted_total += take
            remaining -= take
        self.grants += 1
        if waited:
            self.throttled_grants += 1

    def conformant(self, slack: float = 1e-6) -> bool:
        """True iff total grants respect ``burst + rate * elapsed``."""
        budget = self.burst + self.rate * (self.env.now - self._t0)
        return self.granted_total <= budget + slack
