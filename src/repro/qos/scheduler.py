"""Tenant-aware request scheduling: virtual-time WFQ, EDF, and adapters.

:class:`WeightedFairQueue` implements start-time fair queueing (SFQ): each
request is stamped with a virtual start tag ``S = max(V, F_prev)`` and
finish tag ``F = S + cost / weight``; requests are served in ``(S, seq)``
order and the queue's virtual time ``V`` advances to the start tag of each
dispatched request. Over any contended interval, tenants receive device
service proportional to their weights, and a tenant that goes idle does
not bank credit (its next start tag jumps to ``V``). ``seq`` is a
monotonic per-scheduler sequence number — the same deterministic FIFO
tie-break discipline :class:`~repro.sim.resources.Request` uses, so equal
tags are served in arrival order, always.

Two adapters plug the scheduler into the existing layers without touching
their service loops' structure:

* :class:`QoSDevicePolicy` — a :class:`~repro.devices.scheduling.
  SchedulingPolicy` that orders a device controller's pending queue by
  scheduler key (replacing FCFS/SSTF/...);
* :class:`TenantStore` — a :class:`~repro.sim.resources.Store` whose
  ``get`` hands out the scheduler's choice instead of the oldest item
  (replacing an I/O node's FIFO inbox).

Starvation detection rides on dispatch: a request's ``bypassed`` count is
the number of later-arrived requests served while it waited; a request
bypassed more than ``starvation_threshold`` times triggers the
``on_starvation`` callback (wired to the engine sanitizer), which is the
"no tenant waits unboundedly while others are served" invariant. Only the
oldest waiting request's count is maintained eagerly — it always has the
maximal bypass count (every dispatch that bypasses anyone bypasses it),
so threshold crossings are detected exactly without the former O(backlog)
sweep per dispatch.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..devices.scheduling import SchedulingPolicy
from ..sim.engine import Environment
from ..sim.resources import Store
from .tenant import Tenant

__all__ = ["QoSTag", "WeightedFairQueue", "QoSDevicePolicy", "TenantStore"]


@dataclass(slots=True)
class QoSTag:
    """One request's scheduling stamp (attached as ``request.qos_tag``)."""

    tenant: Tenant
    seq: int
    start: float
    finish: float
    cost: float
    deadline: float | None = None
    #: later-arriving requests served while this one waited
    bypassed: int = 0
    #: starvation already reported for this tag (report once)
    flagged: bool = field(default=False, repr=False)


class WeightedFairQueue:
    """Virtual-time weighted fair queue (SFQ) with EDF and FIFO modes.

    The scheduler does not own a queue; it stamps requests with
    :class:`QoSTag` via :meth:`tag`, orders them via :meth:`key`, and is
    told what was served via :meth:`dispatch`. That split lets one
    implementation drive both the device controllers' pending lists and
    the I/O nodes' inbox stores.
    """

    def __init__(
        self,
        mode: str = "wfq",
        starvation_threshold: int = 128,
        on_starvation: Callable[[QoSTag], None] | None = None,
    ):
        if mode not in ("wfq", "edf", "fifo"):
            raise ValueError(f"unknown scheduler mode {mode!r}")
        self.mode = mode
        self.starvation_threshold = starvation_threshold
        self.on_starvation = on_starvation
        self._vtime = 0.0
        self._seq = 0
        #: tenant -> virtual finish tag of its latest request
        self._finish: dict[Tenant, float] = {}
        #: seq -> tag, for every stamped-but-not-yet-dispatched request
        #: (insertion-ordered: the first entry is the oldest waiter)
        self._waiting: dict[int, QoSTag] = {}
        #: sorted seqs of dispatches newer than the oldest waiter — its
        #: exact bypass count; pruned as older waiters drain, so it stays
        #: about backlog-sized in steady state (it can grow while one
        #: request is starved, which is exactly when the count matters)
        self._disp_seqs: list[int] = []
        #: dispatches performed (sanity that the scheduler actually ran)
        self.dispatches = 0
        #: starvation flags raised
        self.starvations = 0

    @property
    def virtual_time(self) -> float:
        """The queue's virtual clock (advances on dispatch)."""
        return self._vtime

    @property
    def backlog(self) -> int:
        """Stamped requests not yet dispatched or cancelled."""
        return len(self._waiting)

    def tag(
        self, tenant: Tenant, cost: float, deadline: float | None = None
    ) -> QoSTag:
        """Stamp one request of ``cost`` (bytes) for ``tenant``.

        Requests must be tagged in arrival order (``seq`` doubles as the
        FIFO tie-break). ``deadline`` is absolute simulated time.
        """
        self._seq += 1
        start = max(self._vtime, self._finish.get(tenant, 0.0))
        finish = start + max(cost, 1.0) / tenant.weight
        self._finish[tenant] = finish
        t = QoSTag(
            tenant=tenant,
            seq=self._seq,
            start=start,
            finish=finish,
            cost=cost,
            deadline=deadline,
        )
        self._waiting[t.seq] = t
        return t

    def key(self, tag: QoSTag) -> tuple[float, int]:
        """Total dispatch order: smallest key is served next."""
        if self.mode == "edf":
            d = tag.deadline if tag.deadline is not None else math.inf
            return (d, tag.seq)
        if self.mode == "fifo":
            return (0.0, tag.seq)
        return (tag.start, tag.seq)

    def dispatch(self, tag: QoSTag) -> None:
        """``tag``'s request was chosen for service: advance virtual time.

        Also maintains the exact bypass count of the *oldest* still-waiting
        request — the only one that can newly cross the starvation
        threshold, since its count dominates every younger waiter's — and
        fires ``on_starvation`` when it does (once per request). A
        waiter's ``bypassed`` field is therefore exact for the oldest
        waiter and a stale lower bound for younger ones until they in turn
        become oldest.
        """
        self._waiting.pop(tag.seq, None)
        self.dispatches += 1
        if self.mode == "wfq" and tag.start > self._vtime:
            self._vtime = tag.start
        if not self._waiting:
            self._disp_seqs.clear()
            return
        bisect.insort(self._disp_seqs, tag.seq)
        oldest = self._waiting[next(iter(self._waiting))]
        drop = bisect.bisect_right(self._disp_seqs, oldest.seq)
        if drop:
            del self._disp_seqs[:drop]
        # Every recorded dispatch has seq > oldest.seq, i.e. arrived later
        # yet was served first: exactly oldest's bypass count.
        oldest.bypassed = len(self._disp_seqs)
        if (
            oldest.bypassed > self.starvation_threshold
            and not oldest.flagged
        ):
            oldest.flagged = True
            self.starvations += 1
            if self.on_starvation is not None:
                self.on_starvation(oldest)

    def cancel(self, tag: QoSTag) -> None:
        """Forget a stamped request that will never be served here
        (crash salvage, device failure)."""
        self._waiting.pop(tag.seq, None)
        if not self._waiting:
            self._disp_seqs.clear()

    def clear(self) -> None:
        """Forget every waiting request (the whole queue was dropped)."""
        self._waiting.clear()
        self._disp_seqs.clear()


class QoSDevicePolicy(SchedulingPolicy):
    """Arm-scheduling adapter: order the pending queue by scheduler key.

    Requests are stamped lazily at select time — the controller appends
    to its pending list in arrival order, so tagging untagged entries in
    list order preserves the scheduler's arrival-order contract. The
    controller reports service via the :meth:`on_dispatch` /
    :meth:`on_clear` policy hooks.
    """

    name = "qos"

    def __init__(
        self,
        scheduler: WeightedFairQueue,
        resolve: Callable[[Any], Tenant],
    ):
        self.scheduler = scheduler
        self._resolve = resolve

    def select(self, pending: Sequence[Any], head: int) -> int:
        """Index of the pending request with the smallest scheduler key.

        ``pending`` holds :class:`~repro.devices.controller.IORequest`
        records, which carry a ``qos_tag`` slot (``None`` until stamped
        here).
        """
        scheduler = self.scheduler
        key = scheduler.key
        best = 0
        best_key = None
        for i, req in enumerate(pending):
            tag = req.qos_tag
            if tag is None:
                tag = req.qos_tag = scheduler.tag(
                    self._resolve(req.tenant),
                    max(req.nbytes, 1),
                    deadline=req.deadline,
                )
            k = key(tag)
            if best_key is None or k < best_key:
                best, best_key = i, k
        return best

    def on_dispatch(self, request: Any) -> None:
        """The controller took ``request`` into service."""
        tag = request.qos_tag
        if tag is not None:
            self.scheduler.dispatch(tag)

    def on_clear(self) -> None:
        """The controller dropped its whole pending queue (device failed)."""
        self.scheduler.clear()


class TenantStore(Store):
    """A bounded store whose ``get`` follows the scheduler, not FIFO.

    Drop-in replacement for an I/O node's inbox: admission control
    (capacity, blocking put) is unchanged — only the *order* in which
    admitted items are handed to getters changes. Items are stamped on
    admission (``on_admit``), so requests blocked at a full inbox are not
    yet scheduled; admission order remains FIFO, which keeps admission
    itself starvation-free.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float,
        scheduler: WeightedFairQueue,
        resolve: Callable[[Any], Tenant],
        on_admitted: Callable[[Any], None] | None = None,
    ):
        super().__init__(env, capacity)
        self.scheduler = scheduler
        self._resolve = resolve
        self._on_admitted = on_admitted

    def on_admit(self, item: Any) -> None:
        """Stamp an admitted request and notify the owning node."""
        tenant = self._resolve(getattr(item, "tenant", None))
        rel = tenant.deadline
        deadline = (
            getattr(item, "submit_time", self.env.now) + rel
            if rel is not None
            else None
        )
        item.qos_tag = self.scheduler.tag(
            tenant, max(getattr(item, "payload_bytes", 1), 1), deadline=deadline
        )
        if self._on_admitted is not None:
            self._on_admitted(item)

    def _take(self) -> Any:
        best = min(self.items, key=lambda it: self.scheduler.key(it.qos_tag))
        self.items.remove(best)
        self.scheduler.dispatch(best.qos_tag)
        return best

    def forget(self, item: Any) -> None:
        """Unschedule a queued item being salvaged elsewhere (crash)."""
        tag = getattr(item, "qos_tag", None)
        if tag is not None:
            self.scheduler.cancel(tag)
