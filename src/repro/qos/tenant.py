"""The tenant model: service classes and per-tenant accounting.

A :class:`QoSClass` is a declarative service contract (weight, priority,
optional deadline, optional token-bucket rate limit); a :class:`Tenant` is
one live principal holding that contract plus its backpressure accounting.
Requests are tagged with their tenant at the ``ParallelFile`` boundary via
ambient process context (``Process.qos_tenant``), and the device and
I/O-node layers bill time to the tenant duck-typed — they only ever call
the ``note_*`` methods.

The three backpressure buckets (where did a tenant's wall time go?):

* **blocked** — waiting at admission: the token bucket gate, or a full
  I/O-node inbox;
* **queued** — admitted but waiting to be scheduled (device pending queue,
  node inbox);
* **service** — the device arm / node batch actually working on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sim.engine import Environment
from ..sim.stats import Tally
from .bucket import TokenBucket

__all__ = ["QoSClass", "Tenant"]


@dataclass(frozen=True)
class QoSClass:
    """A service contract: how one tenant's traffic should be treated.

    ``weight`` is the WFQ share (service is proportional to weight under
    contention); ``priority`` is a coarse class for priority-aware
    resources (lower is more urgent, matching
    :class:`~repro.sim.resources.PriorityResource`); ``deadline`` is a
    relative per-request latency target in simulated seconds (drives EDF
    ordering and miss detection); ``rate``/``burst`` configure a token
    bucket in bytes per second / bytes (both or neither).
    """

    name: str
    weight: float = 1.0
    priority: float = 0.0
    deadline: float | None = None
    rate: float | None = None
    burst: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")
        if (self.rate is None) != (self.burst is None):
            raise ValueError("rate and burst must be set together")
        if self.rate is not None and (self.rate <= 0 or self.burst <= 0):
            raise ValueError("rate and burst must be positive")


class Tenant:
    """One live principal: a service class plus run accounting."""

    def __init__(
        self,
        env: Environment,
        qos_class: QoSClass,
        on_deadline_miss: Callable[["Tenant"], None] | None = None,
    ):
        self.env = env
        self.qos_class = qos_class
        self.bucket: TokenBucket | None = (
            TokenBucket(env, qos_class.rate, qos_class.burst)
            if qos_class.rate is not None
            else None
        )
        self._on_deadline_miss = on_deadline_miss
        #: time spent blocked at admission (bucket gate, full inboxes)
        self.blocked = Tally()
        #: time spent admitted-but-waiting in scheduler queues
        self.queued = Tally()
        #: time spent in service (device arm / node batch)
        self.service = Tally()
        #: bytes delivered to / taken from this tenant by completed ops
        self.serviced_bytes = 0
        #: completed operations
        self.ops = 0
        #: operations that finished past their deadline
        self.deadline_misses = 0

    @property
    def name(self) -> str:
        """The service-class name (tenants are keyed by it)."""
        return self.qos_class.name

    @property
    def weight(self) -> float:
        """The WFQ share weight."""
        return self.qos_class.weight

    @property
    def deadline(self) -> float | None:
        """The relative per-request deadline, if the class has one."""
        return self.qos_class.deadline

    # -- duck-typed accounting (called by devices / I/O nodes) ----------------

    def note_blocked(self, duration: float) -> None:
        """Bill admission-blocked time (bucket gate or full inbox)."""
        if duration >= 0:
            self.blocked.observe(duration)

    def note_queued(self, duration: float) -> None:
        """Bill admitted-but-unscheduled queue time."""
        if duration >= 0:
            self.queued.observe(duration)

    def note_service(self, duration: float, nbytes: int) -> None:
        """Bill in-service time and the bytes moved by one completed op."""
        if duration >= 0:
            self.service.observe(duration)
        self.serviced_bytes += nbytes
        self.ops += 1

    def note_deadline_miss(self) -> None:
        """One operation completed after its absolute deadline."""
        self.deadline_misses += 1
        if self._on_deadline_miss is not None:
            self._on_deadline_miss(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tenant {self.name} w={self.weight}>"
