"""The live dataset: typed hyperslabs over real host files.

Same model, same slab arithmetic, same request planner as
:class:`repro.dataset.sim.Dataset` — but every method is a plain,
thread-safe call against a :class:`~repro.live.backend.LiveParallelFile`
(``os.pread``/``os.pwrite``). A live dataset's container bytes are
:func:`~repro.dataset.core.content_fingerprint`-identical to a sim
dataset of the same schema and data: only the masked self-description
payload differs (``layout: "host"``).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Mapping

import numpy as np

from ..container.codec import (
    FILE_HEADER_BYTES,
    SECTION_HEADER_BYTES,
    ATTRS_SECTION_ID,
    ContainerFormatError,
    SectionExtent,
    decode_file_header,
    decode_section_header,
    encode_attrs_payload,
    encode_file_header,
    encode_section_header,
    pad_bytes,
    plan_layout,
    section_crc,
)
from ..container.writer import container_decls
from ..core.errors import OrganizationError
from ..datatype.slab import slab_size
from .core import (
    DATASET_SECTION_ID,
    VAR_PREFIX,
    DatasetBase,
    dataset_decls,
)
from .model import DatasetSchema

if TYPE_CHECKING:  # pragma: no cover
    from ..live.backend import LiveParallelFile, LiveParallelFileSystem

__all__ = ["LiveDataset"]


def _rows(raw: bytes) -> np.ndarray:
    return np.frombuffer(raw, dtype=np.uint8).reshape(-1, 1)


class LiveDataset(DatasetBase):
    """An open dataset on the host file system."""

    def __init__(
        self,
        file: "LiveParallelFile",
        schema: DatasetSchema,
        toc: dict[str, SectionExtent],
        crcs: dict[str, int],
    ):
        self.file = file
        self.schema = schema
        self.toc = toc
        self.crcs = crcs
        self._dirty: set[str] = set()
        self._dirty_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        lfs: "LiveParallelFileSystem",
        name: str,
        schema: DatasetSchema,
        *,
        org="S",
        n_processes: int = 1,
        data: Mapping[str, np.ndarray] | None = None,
        user_string: str = "repro.dataset",
        records_per_block: int = 64,
        **org_params,
    ) -> "LiveDataset":
        """Create a dataset container as a real host file and open it.

        Writes the same container bytes the sim writer would (layout is a
        pure function of the schema); zero payloads lean on the
        preallocated file already being zero-filled.
        """
        data = dict(data or {})
        unknown = set(data) - set(schema.variables)
        if unknown:
            raise OrganizationError(
                f"initial data for unknown variables {sorted(unknown)}"
            )
        layout = plan_layout(container_decls(dataset_decls(schema)))
        file = lfs.create(
            name, org,
            n_records=layout.total_bytes, record_size=1,
            records_per_block=records_per_block, n_processes=n_processes,
            dtype="uint8", **org_params,
        )
        try:
            file.write_records(
                0, _rows(encode_file_header(user_string, len(layout.sections)))
            )
            toc: dict[str, SectionExtent] = {}
            crcs: dict[str, int] = {}
            for ext in layout.sections:
                sid = ext.decl.section_id
                if sid == ATTRS_SECTION_ID:
                    payload = encode_attrs_payload(file.attrs.to_dict())
                elif sid == DATASET_SECTION_ID:
                    payload = schema.to_json().encode("utf-8")
                else:
                    vname = sid[len(VAR_PREFIX):]
                    if vname in data:
                        var = schema.variables[vname]
                        arr = np.ascontiguousarray(
                            np.asarray(data[vname]).reshape(
                                schema.shape(vname)
                            ),
                            dtype=var.np_dtype,
                        )
                        payload = arr.tobytes()
                    else:
                        payload = None  # stays zero: the file is preallocated
                raw = payload if payload is not None else bytes(ext.payload_len)
                crc = section_crc(raw, ext.decl.count, ext.decl.elem_size)
                file.write_records(
                    ext.header_off, _rows(encode_section_header(ext.decl, crc))
                )
                if payload:
                    file.write_records(ext.payload_off, _rows(payload))
                if ext.pad_len:
                    file.write_records(
                        ext.pad_off, _rows(pad_bytes(ext.payload_len))
                    )
                toc[sid] = ext
                crcs[sid] = crc
            return cls(file, schema, toc, crcs)
        except BaseException:
            file.close()
            lfs.delete(name)
            raise

    @classmethod
    def open(
        cls,
        lfs: "LiveParallelFileSystem",
        name: str,
        n_processes: int | None = None,
    ) -> "LiveDataset":
        """Open an existing dataset (schema section crc-verified)."""
        file = lfs.open(name, n_processes)
        try:
            header = decode_file_header(
                file.read_records(0, FILE_HEADER_BYTES).tobytes()
            )
            toc: dict[str, SectionExtent] = {}
            crcs: dict[str, int] = {}
            off = FILE_HEADER_BYTES
            for i in range(header.section_count):
                if off + SECTION_HEADER_BYTES > file.n_records:
                    raise ContainerFormatError(
                        f"section {i}: header at {off} runs past end of file"
                    )
                shdr = decode_section_header(
                    file.read_records(off, SECTION_HEADER_BYTES).tobytes()
                )
                ext = SectionExtent(shdr.decl, off)
                if ext.end > file.n_records:
                    raise ContainerFormatError(
                        f"section {shdr.decl.section_id!r}: payload runs "
                        "past end of file"
                    )
                toc[shdr.decl.section_id] = ext
                crcs[shdr.decl.section_id] = shdr.crc
                off = ext.end
            if DATASET_SECTION_ID not in toc:
                raise OrganizationError(
                    f"container {name!r} has no {DATASET_SECTION_ID!r} "
                    "section — not a dataset"
                )
            ext = toc[DATASET_SECTION_ID]
            raw = file.read_records(ext.payload_off, ext.payload_len).tobytes()
            got = section_crc(raw, ext.decl.count, ext.decl.elem_size)
            if got != crcs[DATASET_SECTION_ID]:
                raise ContainerFormatError(
                    f"dataset schema crc {got:08x} != header crc "
                    f"{crcs[DATASET_SECTION_ID]:08x}"
                )
            schema = DatasetSchema.from_json(raw)
            ds = cls(file, schema, toc, crcs)
            for vname in schema.variables:
                ds._check_var_section(vname)
            return ds
        except BaseException:
            file.close()
            raise

    def _check_var_section(self, name: str) -> None:
        ext = self._var_extent(name)
        var = self.schema.variable(name)
        if ext.decl.count != self.schema.size(name) or (
            ext.decl.elem_size != var.itemsize
        ):
            raise OrganizationError(
                f"variable {name!r}: schema declares "
                f"{self.schema.size(name)} x {var.itemsize} bytes, section "
                f"holds {ext.decl.count} x {ext.decl.elem_size}"
            )

    def close(self) -> None:
        """Release the underlying descriptor (idempotent)."""
        self.file.close()

    def __enter__(self) -> "LiveDataset":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- hyperslab I/O (plain, thread-safe) --------------------------------

    def read_slab(self, name: str, start, count, *, sieve: bool = False):
        """The hyperslab as a typed array of shape ``count``."""
        view, cnt, _ = self._slab(name, start, count)
        if slab_size(cnt) == 0:
            return self._empty_slab(name, cnt)
        rows = self.file.read_view(view, sieve=sieve)
        return self._decode_slab(name, cnt, rows)

    def write_slab(self, name: str, start, count, values, *, sieve: bool = False):
        """Write ``values`` into the hyperslab; returns element count."""
        view, cnt, _ = self._slab(name, start, count)
        rows = self._encode_slab(name, cnt, values)
        if rows.size == 0:
            return 0
        self.file.write_view(rows, view, sieve=sieve)
        with self._dirty_lock:
            self._dirty.add(name)
        return slab_size(cnt)

    def read_variable(self, name: str, *, sieve: bool = False):
        """Read a variable's full extent."""
        shape = self.schema.shape(name)
        return self.read_slab(name, (0,) * len(shape), shape, sieve=sieve)

    def write_variable(self, name: str, values, *, sieve: bool = False):
        """Overwrite a variable's full extent."""
        shape = self.schema.shape(name)
        return self.write_slab(
            name, (0,) * len(shape), shape, values, sieve=sieve
        )

    # -- checksum maintenance ----------------------------------------------

    @property
    def dirty(self) -> list[str]:
        with self._dirty_lock:
            return sorted(self._dirty)

    def sync(self) -> list[str]:
        """Recompute and rewrite stale variable checksums (see the sim
        twin for the why). Returns the variable names synced."""
        with self._dirty_lock:
            synced = sorted(self._dirty)
            self._dirty.clear()
        for name in synced:
            ext = self._var_extent(name)
            payload = (
                self.file.read_records(
                    ext.payload_off, ext.payload_len
                ).tobytes()
                if ext.payload_len
                else b""
            )
            crc = section_crc(payload, ext.decl.count, ext.decl.elem_size)
            self.file.write_records(
                ext.header_off, _rows(encode_section_header(ext.decl, crc))
            )
            self.crcs[ext.decl.section_id] = crc
        return synced
