"""The backend-independent half of the dataset layer.

A dataset is a PR 7 container whose sections are:

* ``repro/attrs`` — the reserved self-description (written by the
  container machinery);
* ``repro/dataset`` — a block section holding the canonical schema JSON
  (:meth:`~repro.dataset.model.DatasetSchema.to_json`);
* one ``var/<name>`` array section per variable, ``count`` elements of
  ``elem_size = dtype.itemsize`` bytes, row-major, little-endian.

:func:`dataset_decls` derives the section declarations, so layout
planning (and therefore every byte offset) is a pure function of the
schema — identical for the simulated and live backends. ``DatasetBase``
holds the arithmetic both backends share: slab validation, slab → byte
view compilation (through :func:`~repro.datatype.slab.slab_to_view` with
``base`` the variable's payload offset and ``scale`` its itemsize), and
the typed encode/decode between user arrays and the container's 1-byte
records.

``content_fingerprint`` is the cross-backend identity check: sha256 of
the container bytes with the self-description section masked. The attrs
payload legitimately differs between backends (``layout: "host"`` vs a
striped layout) while every data byte must not.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..container.codec import (
    ATTRS_PAYLOAD_BYTES,
    FILE_HEADER_BYTES,
    SECTION_HEADER_BYTES,
    SectionDecl,
    array_section,
    block_section,
)
from ..core.errors import OrganizationError
from ..datatype.slab import slab_size, slab_to_view, validate_slab
from .model import DatasetSchema

__all__ = [
    "DATASET_SECTION_ID",
    "VAR_PREFIX",
    "var_section_id",
    "dataset_decls",
    "DatasetBase",
    "content_fingerprint",
]

#: block section holding the canonical schema JSON
DATASET_SECTION_ID = "repro/dataset"
#: every variable's array section is VAR_PREFIX + variable name
VAR_PREFIX = "var/"


def var_section_id(name: str) -> str:
    """The container section id for variable ``name``."""
    return VAR_PREFIX + name


def dataset_decls(schema: DatasetSchema) -> list[SectionDecl]:
    """The user-section declarations of a dataset container (the writer
    prepends the reserved self-description itself)."""
    decls = [
        block_section(DATASET_SECTION_ID, len(schema.to_json().encode("utf-8")))
    ]
    for name, var in schema.variables.items():
        decls.append(
            array_section(var_section_id(name), schema.size(name), var.itemsize)
        )
    return decls


def content_fingerprint(buf: bytes | bytearray | np.ndarray) -> str:
    """sha256 of container bytes with the self-description masked.

    Masks ``[128, 704)`` — the reserved attrs section's 64-byte header
    plus its fixed 512-byte payload (the pad after it is deterministic
    and identical everywhere). Two datasets with equal fingerprints hold
    identical schema and data bytes regardless of which backend (or how
    many writers) produced them.
    """
    arr = bytearray(
        buf.tobytes() if isinstance(buf, np.ndarray) else bytes(buf)
    )
    lo = FILE_HEADER_BYTES
    hi = min(len(arr), lo + SECTION_HEADER_BYTES + ATTRS_PAYLOAD_BYTES)
    arr[lo:hi] = b"\0" * (hi - lo)
    return hashlib.sha256(bytes(arr)).hexdigest()


class DatasetBase:
    """Shared slab arithmetic. Subclasses provide ``schema``, a ``toc``
    mapping section ids to :class:`~repro.container.codec.SectionExtent`,
    and the actual byte movement."""

    schema: DatasetSchema
    toc: dict

    # -- introspection -----------------------------------------------------

    @property
    def dimensions(self) -> dict[str, int]:
        return dict(self.schema.dimensions)

    @property
    def variable_names(self) -> list[str]:
        return list(self.schema.variables)

    def describe(self) -> dict:
        """The dataset at a glance (the server's ``describe`` payload)."""
        return {
            "dimensions": dict(self.schema.dimensions),
            "variables": {
                name: {
                    "dtype": v.dtype,
                    "dims": list(v.dims),
                    "shape": list(self.schema.shape(name)),
                    "attrs": dict(v.attrs),
                }
                for name, v in self.schema.variables.items()
            },
            "attrs": dict(self.schema.attrs),
        }

    # -- slab arithmetic ---------------------------------------------------

    def _var_extent(self, name: str):
        sid = var_section_id(self.schema.variable(name).name)
        try:
            return self.toc[sid]
        except KeyError:
            raise OrganizationError(
                f"container is missing section {sid!r} for variable {name!r}"
            ) from None

    def _slab(self, name: str, start, count):
        """``(byte_view, slab_shape, np_dtype)`` of a hyperslab.

        The view addresses the container's 1-byte records: element ``e``
        of the variable occupies ``itemsize`` records starting at
        ``payload_off + e * itemsize``.
        """
        var = self.schema.variable(name)
        shape = self.schema.shape(name)
        start, count = validate_slab(shape, start, count)
        ext = self._var_extent(name)
        view = slab_to_view(
            shape, start, count, base=ext.payload_off, scale=var.itemsize
        )
        return view, count, var.np_dtype

    def _slab_byte_indices(self, name: str, start, count) -> np.ndarray:
        """Absolute byte (1-byte-record) indices of a hyperslab, in slab
        order — the collective paths' explicit ``indices=`` form."""
        from ..datatype.slab import slab_indices

        var = self.schema.variable(name)
        shape = self.schema.shape(name)
        ext = self._var_extent(name)
        elems = slab_indices(shape, start, count)
        if not elems.size:
            return elems
        byte0 = ext.payload_off + elems * var.itemsize
        return (byte0[:, None] + np.arange(var.itemsize, dtype=np.int64)).reshape(-1)

    # -- typed payload codec -----------------------------------------------

    def _encode_slab(self, name: str, count, values) -> np.ndarray:
        """User array → ``(nbytes, 1)`` uint8 record rows, media order."""
        var = self.schema.variable(name)
        arr = np.asarray(values)
        n = slab_size(count)
        if arr.size != n:
            raise OrganizationError(
                f"slab selects {n} elements of {name!r}, values hold {arr.size}"
            )
        arr = np.ascontiguousarray(arr.reshape(tuple(count)), dtype=var.np_dtype)
        return np.frombuffer(arr.tobytes(), dtype=np.uint8).reshape(-1, 1)

    def _decode_slab(self, name: str, count, rows: np.ndarray) -> np.ndarray:
        """``(nbytes, 1)`` uint8 record rows → typed array of slab shape."""
        var = self.schema.variable(name)
        raw = np.ascontiguousarray(rows, dtype=np.uint8).tobytes()
        return np.frombuffer(raw, dtype=var.np_dtype).reshape(tuple(count)).copy()

    def _empty_slab(self, name: str, count) -> np.ndarray:
        var = self.schema.variable(name)
        return np.empty(tuple(count), dtype=var.np_dtype)
