"""Typed multidimensional datasets over the container format.

The Parallel netCDF direction: named dimensions, typed variables with
attributes, self-describing persistence (the PR 7 container), and
hyperslab ``read_slab``/``write_slab`` operations compiled onto the
datatype layer's views — list I/O, data sieving, and two-phase
collective transfers all apply unchanged. Two executable backends share
one model and one request planner:

* :class:`Dataset` (``repro.dataset.sim``) — simulated time, generator
  methods, collective ``read_slab_all``/``write_slab_all``;
* :class:`LiveDataset` (``repro.dataset.live``) — real host files,
  plain thread-safe methods, served over asyncio by
  :class:`repro.live.server.DatasetServer`.
"""

from .core import (
    DATASET_SECTION_ID,
    VAR_PREFIX,
    DatasetBase,
    content_fingerprint,
    dataset_decls,
    var_section_id,
)
from .live import LiveDataset
from .model import DatasetSchema, Variable, media_dtype
from .sim import Dataset

__all__ = [
    "DATASET_SECTION_ID",
    "VAR_PREFIX",
    "DatasetBase",
    "Dataset",
    "DatasetSchema",
    "LiveDataset",
    "Variable",
    "content_fingerprint",
    "dataset_decls",
    "media_dtype",
    "var_section_id",
]
