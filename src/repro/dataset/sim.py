"""The simulated-time dataset: typed hyperslabs over a ParallelFile.

Every method that moves bytes is a generator in the simulator's style —
drive it from a sim process (``yield from``) or as a top-level
``env.process``. The slab arithmetic is
:class:`~repro.dataset.core.DatasetBase`; execution rides the PR 6/7
machinery: independent slabs go through
:meth:`~repro.fs.pfs.ParallelFile.read_view` /
:meth:`~repro.fs.pfs.ParallelFile.write_view` (list I/O, or data
sieving with ``sieve=True``), collective slabs through two-phase
:class:`~repro.collective.CollectiveIO` with explicit byte index lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from ..collective.twophase import CollectiveIO
from ..container.codec import encode_section_header, section_crc
from ..container.reader import ContainerReader
from ..container.writer import ContainerWriter
from ..core.errors import OrganizationError
from ..datatype.slab import slab_size, validate_slab
from .core import DATASET_SECTION_ID, DatasetBase, dataset_decls, var_section_id
from .model import DatasetSchema

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFileSystem

__all__ = ["Dataset"]


def _rows(raw: bytes) -> np.ndarray:
    return np.frombuffer(raw, dtype=np.uint8).reshape(-1, 1)


class Dataset(DatasetBase):
    """An open simulated dataset. Build with the :meth:`create` /
    :meth:`open` generators."""

    def __init__(self, reader: ContainerReader, schema: DatasetSchema):
        self.reader = reader
        self.file = reader.file
        self.toc = reader.toc
        self.crcs = reader.crcs
        self.schema = schema
        self._dirty: set[str] = set()

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        pfs: "ParallelFileSystem",
        name: str,
        schema: DatasetSchema,
        *,
        org="S",
        writers: int = 1,
        layout_processes: int = 1,
        data: Mapping[str, np.ndarray] | None = None,
        mode: str = "collective",
        user_string: str = "repro.dataset",
        **create_kw,
    ):
        """Generator: create a dataset container and open it.

        ``data`` optionally provides initial variable contents (missing
        variables start zero-filled); ``writers`` / ``mode`` choose the
        PR 7 parallel payload path exactly as
        :meth:`~repro.container.writer.ContainerWriter.write_array`.
        """
        data = dict(data or {})
        unknown = set(data) - set(schema.variables)
        if unknown:
            raise OrganizationError(
                f"initial data for unknown variables {sorted(unknown)}"
            )
        writer = ContainerWriter.create(
            pfs, name, dataset_decls(schema),
            org=org, writers=writers, layout_processes=layout_processes,
            user_string=user_string, **create_kw,
        )
        yield from writer.begin()
        yield from writer.write_block(
            DATASET_SECTION_ID, schema.to_json().encode("utf-8")
        )
        for vname, var in schema.variables.items():
            if vname in data:
                arr = np.ascontiguousarray(
                    np.asarray(data[vname]).reshape(schema.shape(vname)),
                    dtype=var.np_dtype,
                )
                payload = np.frombuffer(arr.tobytes(), dtype=np.uint8)
            else:
                payload = np.zeros(schema.nbytes(vname), dtype=np.uint8)
            yield from writer.write_array(
                var_section_id(vname), payload, mode=mode
            )
        return (yield from cls.open(pfs, name, processes=writers))

    @classmethod
    def open(cls, pfs: "ParallelFileSystem", name: str, *, processes: int = 1):
        """Generator: open an existing dataset (schema crc-verified)."""
        reader = yield from ContainerReader.open(pfs, name, readers=processes)
        if DATASET_SECTION_ID not in reader.toc:
            raise OrganizationError(
                f"container {name!r} has no {DATASET_SECTION_ID!r} section "
                "— not a dataset"
            )
        raw = yield from reader.read_block(DATASET_SECTION_ID)
        schema = DatasetSchema.from_json(raw)
        ds = cls(reader, schema)
        for vname in schema.variables:
            ds._check_var_section(vname)
        return ds

    def _check_var_section(self, name: str) -> None:
        ext = self._var_extent(name)  # raises if the section is missing
        var = self.schema.variable(name)
        if ext.decl.count != self.schema.size(name) or (
            ext.decl.elem_size != var.itemsize
        ):
            raise OrganizationError(
                f"variable {name!r}: schema declares "
                f"{self.schema.size(name)} x {var.itemsize} bytes, section "
                f"holds {ext.decl.count} x {ext.decl.elem_size}"
            )

    def close(self):
        """Generator placeholder for symmetry with the live backend."""
        return
        yield  # pragma: no cover - makes this a generator

    # -- independent hyperslab I/O -----------------------------------------

    def read_slab(self, name: str, start, count, *, sieve: bool = False):
        """Generator: the hyperslab as a typed array of shape ``count``."""
        view, cnt, _ = self._slab(name, start, count)
        if slab_size(cnt) == 0:
            return self._empty_slab(name, cnt)
        rows = yield self.file.read_view(view, sieve=sieve)
        return self._decode_slab(name, cnt, rows)

    def write_slab(self, name: str, start, count, values, *, sieve: bool = False):
        """Generator: write ``values`` into the hyperslab; element count."""
        view, cnt, _ = self._slab(name, start, count)
        rows = self._encode_slab(name, cnt, values)
        if rows.size == 0:
            return 0
        yield self.file.write_view(rows, view, sieve=sieve)
        self._dirty.add(name)
        return slab_size(cnt)

    def read_variable(self, name: str, *, sieve: bool = False):
        """Generator: the whole variable (a full-extent slab)."""
        shape = self.schema.shape(name)
        return (
            yield from self.read_slab(
                name, (0,) * len(shape), shape, sieve=sieve
            )
        )

    def write_variable(self, name: str, values, *, sieve: bool = False):
        """Generator: overwrite the whole variable."""
        shape = self.schema.shape(name)
        return (
            yield from self.write_slab(
                name, (0,) * len(shape), shape, values, sieve=sieve
            )
        )

    # -- collective hyperslab I/O ------------------------------------------

    def _collective_slabs(self, name: str, slabs: Sequence):
        p = self.file.map.n_processes
        if len(slabs) != p:
            raise OrganizationError(
                f"collective slab list has {len(slabs)} entries; file has "
                f"{p} processes"
            )
        shape = self.schema.shape(name)
        norm = [validate_slab(shape, s, c) for s, c in slabs]
        indices = {
            q: self._slab_byte_indices(name, s, c)
            for q, (s, c) in enumerate(norm)
        }
        return norm, indices

    def _collective(self, exchange_rate: float, exchange_latency: float):
        return CollectiveIO(
            self.file, exchange_rate, exchange_latency,
            allow_dynamic=not self.file.map.is_static,
        )

    def read_slab_all(
        self,
        name: str,
        slabs: Sequence,
        *,
        exchange_rate: float = 10e6,
        exchange_latency: float = 1e-4,
    ):
        """Generator: two-phase collective read of one slab per process.

        ``slabs[q]`` is process ``q``'s ``(start, count)``; overlapping
        read slabs are fine. Returns ``{process: typed array}``.
        """
        norm, indices = self._collective_slabs(name, slabs)
        nonempty = [a for a in indices.values() if a.size]
        if not nonempty:
            return {
                q: self._empty_slab(name, c) for q, (_, c) in enumerate(norm)
            }
        lo = min(int(a[0]) for a in nonempty)
        hi = max(int(a[-1]) for a in nonempty) + 1
        cio = self._collective(exchange_rate, exchange_latency)
        rows = yield from cio.read_at(lo, hi - lo, indices=indices)
        return {
            q: (
                self._decode_slab(name, c, rows[q])
                if indices[q].size
                else self._empty_slab(name, c)
            )
            for q, (_, c) in enumerate(norm)
        }

    def write_slab_all(
        self,
        name: str,
        slabs: Sequence,
        values: Sequence,
        *,
        exchange_rate: float = 10e6,
        exchange_latency: float = 1e-4,
    ):
        """Generator: two-phase collective write, one slab per process.

        Write slabs must be pairwise disjoint (the collective layer
        enforces it). Returns the total element count written.
        """
        norm, indices = self._collective_slabs(name, slabs)
        if len(values) != len(norm):
            raise OrganizationError(
                f"{len(norm)} slabs but {len(values)} value arrays"
            )
        per_process = {
            q: self._encode_slab(name, c, values[q])
            for q, (_, c) in enumerate(norm)
        }
        nonempty = [a for a in indices.values() if a.size]
        if not nonempty:
            return 0
        lo = min(int(a[0]) for a in nonempty)
        hi = max(int(a[-1]) for a in nonempty) + 1
        cio = self._collective(exchange_rate, exchange_latency)
        yield from cio.write_at(lo, hi - lo, per_process, indices=indices)
        self._dirty.add(name)
        return sum(slab_size(c) for _, c in norm)

    # -- checksum maintenance ----------------------------------------------

    @property
    def dirty(self) -> list[str]:
        """Variables written since the last :meth:`sync` (their section
        checksums on media are stale until then)."""
        return sorted(self._dirty)

    def sync(self):
        """Generator: recompute and rewrite stale variable checksums.

        Slab writes change payload bytes underneath the section crc;
        ``sync`` re-reads each dirty variable's payload, folds a fresh
        :func:`~repro.container.codec.section_crc`, and rewrites the
        64-byte section header. Returns the variable names synced.
        """
        synced = sorted(self._dirty)
        for name in synced:
            ext = self._var_extent(name)
            if ext.payload_len:
                rows = yield self.file.read_records(
                    ext.payload_off, ext.payload_len
                )
                payload = np.ascontiguousarray(rows, dtype=np.uint8).tobytes()
            else:
                payload = b""
            crc = section_crc(payload, ext.decl.count, ext.decl.elem_size)
            yield self.file.write_records(
                ext.header_off, _rows(encode_section_header(ext.decl, crc))
            )
            self.crcs[ext.decl.section_id] = crc
        self._dirty.clear()
        return synced
