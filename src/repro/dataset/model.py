"""The dataset model: named dimensions, typed variables, attributes.

The Parallel netCDF direction (PAPERS.md): applications describe data as
multidimensional typed arrays over *named, shared dimensions* — not byte
ranges — and the schema travels with the file. A
:class:`DatasetSchema` is the pure description half: it validates
itself, canonicalizes to JSON (the payload of the container's
``repro/dataset`` section), and answers shape/dtype questions. The
executable halves live in :mod:`repro.dataset.sim` and
:mod:`repro.dataset.live`.

Dtypes are pinned little-endian on media: a schema round-tripped through
JSON always reports the LE form, so the container's bytes mean the same
thing on any host.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..core.errors import OrganizationError

__all__ = ["Variable", "DatasetSchema", "media_dtype"]

# a variable's container section id is "var/" + name, and section ids are
# capped at 31 content bytes
_MAX_NAME = 31 - len("var/")

#: JSON-representable attribute value types
_ATTR_TYPES = (str, int, float, bool, type(None))


def media_dtype(dtype) -> np.dtype:
    """The on-media (little-endian) form of ``dtype``.

    Single-byte and byte-order-free dtypes keep their ``|`` order; wider
    ones are pinned to ``<`` so the container bytes are host-independent.
    """
    try:
        dt = np.dtype(dtype)
    except TypeError as exc:
        raise OrganizationError(f"invalid dtype {dtype!r}: {exc}") from None
    if dt.itemsize == 0:
        raise OrganizationError(f"dtype {dtype!r} has zero itemsize")
    if dt.hasobject:
        raise OrganizationError(f"dtype {dtype!r} cannot live on media")
    return dt.newbyteorder("<")


def _check_attrs(attrs: Mapping, owner: str) -> dict:
    out = {}
    for k, v in dict(attrs).items():
        if not isinstance(k, str):
            raise OrganizationError(f"{owner}: attribute key {k!r} not a string")
        if not isinstance(v, _ATTR_TYPES):
            raise OrganizationError(
                f"{owner}: attribute {k!r} has unserializable value {v!r}"
            )
        out[k] = v
    return out


@dataclass(frozen=True)
class Variable:
    """A typed array over named dimensions."""

    name: str
    dtype: str
    dims: tuple[str, ...]
    attrs: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.name or "/" in self.name or len(self.name) > _MAX_NAME:
            raise OrganizationError(
                f"variable name {self.name!r} must be 1..{_MAX_NAME} chars "
                "with no '/'"
            )
        dt = media_dtype(self.dtype)
        object.__setattr__(self, "dtype", dt.str)
        object.__setattr__(self, "dims", tuple(str(d) for d in self.dims))
        object.__setattr__(self, "attrs", _check_attrs(self.attrs, self.name))

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)

    @property
    def itemsize(self) -> int:
        return self.np_dtype.itemsize


@dataclass(frozen=True)
class DatasetSchema:
    """Named dimensions + typed variables + dataset attributes.

    ``dimensions`` maps name to extent; every variable's ``dims`` must
    name declared dimensions. ``shape(var)`` and ``size(var)`` resolve a
    variable's geometry against the shared dimensions.
    """

    dimensions: dict[str, int]
    variables: dict[str, Variable]
    attrs: dict = field(default_factory=dict)

    def __post_init__(self):
        dims = {}
        for name, extent in dict(self.dimensions).items():
            if not isinstance(name, str) or not name:
                raise OrganizationError(f"dimension name {name!r} invalid")
            extent = int(extent)
            if extent < 0:
                raise OrganizationError(
                    f"dimension {name!r} has negative extent {extent}"
                )
            dims[name] = extent
        object.__setattr__(self, "dimensions", dims)
        variables = {}
        for name, var in dict(self.variables).items():
            if not isinstance(var, Variable):
                raise OrganizationError(f"variable {name!r} is not a Variable")
            if var.name != name:
                raise OrganizationError(
                    f"variable key {name!r} != variable name {var.name!r}"
                )
            for d in var.dims:
                if d not in dims:
                    raise OrganizationError(
                        f"variable {name!r} uses undeclared dimension {d!r}"
                    )
            variables[name] = var
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "attrs", _check_attrs(self.attrs, "dataset"))

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        dimensions: Mapping[str, int],
        variables: Mapping[str, tuple],
        attrs: Mapping | None = None,
    ) -> "DatasetSchema":
        """Terse constructor: ``variables`` maps name to
        ``(dtype, dims)`` or ``(dtype, dims, attrs)``."""
        out = {}
        for name, spec in dict(variables).items():
            dtype, dims, *rest = spec
            out[name] = Variable(
                name, dtype, tuple(dims), dict(rest[0]) if rest else {}
            )
        return cls(dict(dimensions), out, dict(attrs or {}))

    # -- geometry ----------------------------------------------------------

    def variable(self, name: str) -> Variable:
        """The :class:`Variable` named ``name`` (OrganizationError if absent)."""
        try:
            return self.variables[name]
        except KeyError:
            raise OrganizationError(
                f"no variable {name!r}; dataset has {sorted(self.variables)}"
            ) from None

    def shape(self, name: str) -> tuple[int, ...]:
        """A variable's shape, resolved against the shared dimensions."""
        var = self.variable(name)
        return tuple(self.dimensions[d] for d in var.dims)

    def size(self, name: str) -> int:
        """A variable's element count."""
        out = 1
        for e in self.shape(name):
            out *= e
        return out

    def nbytes(self, name: str) -> int:
        """A variable's payload size in bytes."""
        return self.size(name) * self.variable(name).itemsize

    # -- canonical JSON ----------------------------------------------------

    def to_json(self) -> str:
        """Canonical (sorted, separator-free) JSON — the media form."""
        doc = {
            "dimensions": self.dimensions,
            "variables": {
                name: {
                    "dtype": v.dtype,
                    "dims": list(v.dims),
                    "attrs": v.attrs,
                }
                for name, v in self.variables.items()
            },
            "attrs": self.attrs,
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, raw: str | bytes) -> "DatasetSchema":
        if isinstance(raw, (bytes, bytearray)):
            raw = bytes(raw).decode("utf-8")
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise OrganizationError(f"unparseable dataset schema: {exc}") from None
        if not isinstance(doc, dict):
            raise OrganizationError("dataset schema must be a JSON object")
        try:
            variables = {
                name: Variable(
                    name,
                    spec["dtype"],
                    tuple(spec["dims"]),
                    dict(spec.get("attrs", {})),
                )
                for name, spec in dict(doc.get("variables", {})).items()
            }
            return cls(
                dict(doc.get("dimensions", {})),
                variables,
                dict(doc.get("attrs", {})),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise OrganizationError(
                f"malformed dataset schema: {exc!r}"
            ) from None
