"""Core concepts: records, blocks, organizations, maps, boundaries, conversion.

This package is the paper's primary contribution rendered executable: the
§3 record/block terminology (`records`, `blocks`), the six parallel file
organizations (`organizations`, `mapping`), the §5 boundary-overlap
mechanisms (`boundary`), and view-mismatch planning (`convert`).
"""

from .access import (
    AccessMethod,
    SequentialWithinBlockCursor,
    WithinBlockDiscipline,
    check_access_method,
    supported_methods,
)
from .blocks import BlockSpec
from .boundary import HaloCache, ReplicatedPartitioning
from .convert import CopyStep, Run, alternate_view_runs, contiguous_runs, conversion_plan
from .errors import (
    ExhaustedError,
    FileExistsError_,
    FileNotFoundError_,
    OrganizationError,
    OwnershipError,
    RecordRangeError,
    ReproError,
    ViewMismatchError,
)
from .mapping import (
    GlobalDirectMap,
    InterleavedMap,
    OrganizationMap,
    PartitionedDirectMap,
    PartitionedMap,
    SelfScheduledMap,
    SequentialMap,
    make_map,
)
from .organizations import FileCategory, FileOrganization
from .records import RecordSpec

__all__ = [
    "AccessMethod",
    "SequentialWithinBlockCursor",
    "WithinBlockDiscipline",
    "check_access_method",
    "supported_methods",
    "BlockSpec",
    "HaloCache",
    "ReplicatedPartitioning",
    "CopyStep",
    "Run",
    "alternate_view_runs",
    "contiguous_runs",
    "conversion_plan",
    "ExhaustedError",
    "FileExistsError_",
    "FileNotFoundError_",
    "OrganizationError",
    "OwnershipError",
    "RecordRangeError",
    "ReproError",
    "ViewMismatchError",
    "GlobalDirectMap",
    "InterleavedMap",
    "OrganizationMap",
    "PartitionedDirectMap",
    "PartitionedMap",
    "SelfScheduledMap",
    "SequentialMap",
    "make_map",
    "FileCategory",
    "FileOrganization",
    "RecordSpec",
]
