"""Access methods, distinguished from file organizations (§6).

    "In particular, it may be useful to distinguish between file
    organizations and access methods on those organizations."

and §3.2:

    "it might be useful to distinguish between PDA files which perform
    random access within blocks, and an equivalent organization which
    always accesses records sequentially within blocks."

This module makes both distinctions concrete:

* :class:`AccessMethod` — *how* records are visited: sequentially, by
  position (direct), or self-scheduled. Organizations declare which
  methods they support (:func:`supported_methods`,
  :func:`check_access_method`), which is what lets an S file be consumed
  through direct access ("direct access versions of the S and SS file
  types", §3.2) without inventing a seventh organization.
* :class:`WithinBlockDiscipline` — the §3.2 PDA refinement: RANDOM versus
  SEQUENTIAL record order inside an owned block. The
  :class:`SequentialWithinBlockCursor` enforces the latter and is used by
  the PDA handle's ``sequential_within_block`` option.
"""

from __future__ import annotations

import enum

from .errors import OrganizationError, OwnershipError
from .mapping import OrganizationMap
from .organizations import FileOrganization

__all__ = [
    "AccessMethod",
    "WithinBlockDiscipline",
    "supported_methods",
    "check_access_method",
    "SequentialWithinBlockCursor",
]


class AccessMethod(enum.Enum):
    """How a program visits records (§6's 'access methods')."""

    SEQUENTIAL = "sequential"          # next record in a fixed order
    DIRECT = "direct"                  # by explicit record position
    SELF_SCHEDULED = "self-scheduled"  # next record decided by request order


class WithinBlockDiscipline(enum.Enum):
    """§3.2: record order inside an owned block of a PDA file."""

    RANDOM = "random"
    SEQUENTIAL = "sequential"


#: Which access methods each organization supports. The sequential
#: organizations also support DIRECT consumption ("this organization
#: could be used to support direct access versions of the S and SS file
#: types" works both ways: the global byte layout is identical), while
#: SS is intrinsically SELF_SCHEDULED.
_SUPPORT: dict[FileOrganization, frozenset[AccessMethod]] = {
    FileOrganization.S: frozenset(
        {AccessMethod.SEQUENTIAL, AccessMethod.DIRECT}
    ),
    FileOrganization.PS: frozenset(
        {AccessMethod.SEQUENTIAL, AccessMethod.DIRECT}
    ),
    FileOrganization.IS: frozenset(
        {AccessMethod.SEQUENTIAL, AccessMethod.DIRECT}
    ),
    FileOrganization.SS: frozenset(
        {AccessMethod.SELF_SCHEDULED}
    ),
    FileOrganization.GDA: frozenset(
        {AccessMethod.DIRECT, AccessMethod.SEQUENTIAL,
         AccessMethod.SELF_SCHEDULED}
    ),
    FileOrganization.PDA: frozenset(
        {AccessMethod.DIRECT, AccessMethod.SEQUENTIAL}
    ),
}


def supported_methods(org: FileOrganization) -> frozenset[AccessMethod]:
    """The access methods an organization supports."""
    return _SUPPORT[org]


def check_access_method(org: FileOrganization, method: AccessMethod) -> None:
    """Raise :class:`OrganizationError` if ``method`` is unsupported."""
    if method not in _SUPPORT[org]:
        raise OrganizationError(
            f"organization {org} does not support {method.value} access "
            f"(supports: {sorted(m.value for m in _SUPPORT[org])})"
        )


class SequentialWithinBlockCursor:
    """Enforces §3.2's sequential-within-block discipline for one process.

    Blocks may still be visited in any order (that is the point of PDA —
    "the order of block access may be arbitrary as well"), but within a
    block, records must be visited in ascending order without revisiting.
    The restriction is what would let an implementation stream each block
    through a single buffer instead of keeping it randomly addressable.
    """

    def __init__(self, org_map: OrganizationMap, process: int):
        if org_map.org is not FileOrganization.PDA:
            raise OrganizationError(
                "sequential-within-block discipline applies to PDA files"
            )
        self.map = org_map
        self.process = process
        #: per-block high-water mark: next admissible slot
        self._next_slot: dict[int, int] = {}

    def admit(self, record: int) -> None:
        """Validate (and account) one record access.

        Raises :class:`OwnershipError` if the record is not owned, or
        :class:`OrganizationError` if it violates the within-block order.
        """
        owner = self.map.owner_of_record(record)
        if owner != self.process:
            raise OwnershipError(
                f"process {self.process} may not access record {record}"
            )
        block = self.map.blocks.block_of(record)
        slot = self.map.blocks.slot_of(record)
        expected = self._next_slot.get(block, 0)
        if slot != expected:
            raise OrganizationError(
                f"sequential-within-block violation: block {block} expects "
                f"slot {expected}, got {slot}"
            )
        self._next_slot[block] = slot + 1

    def block_finished(self, block: int) -> bool:
        """True once every record of ``block`` has been admitted."""
        count = self.map.blocks.block_records(block, self.map.n_records)
        return self._next_slot.get(block, 0) >= count

    def reset_block(self, block: int) -> None:
        """Allow a fresh sequential pass over ``block`` (multi-pass PDA)."""
        self._next_slot.pop(block, None)
