"""Organization maps: the arithmetic heart of each file organization.

An :class:`OrganizationMap` binds an organization to a concrete file shape
(record size, blocking, record count, process count) and answers the
questions every backend needs:

* which process owns which blocks (``owner_of_block``, ``blocks_of``);
* in what order a given process visits global records (``records_of``);
* the bijection between a process's local record sequence and global
  record indices (``local_to_global`` / ``global_to_local``).

Both the simulated file system (`repro.fs`) and the live threaded backend
(`repro.live`) interpret these maps, so the semantics are defined once and
property-tested once (bijectivity, coverage, prefix ordering).

Dynamic organizations (SS) and unowned ones (GDA) expose the same surface
with the static parts disabled — see :attr:`OrganizationMap.is_static`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .blocks import BlockSpec
from .errors import OrganizationError, OwnershipError, RecordRangeError
from .organizations import FileOrganization

__all__ = [
    "OrganizationMap",
    "SequentialMap",
    "PartitionedMap",
    "InterleavedMap",
    "SelfScheduledMap",
    "GlobalDirectMap",
    "PartitionedDirectMap",
    "make_map",
]


class OrganizationMap(ABC):
    """Shape-bound organization: who accesses what, in what order."""

    org: FileOrganization

    def __init__(self, blocks: BlockSpec, n_records: int, n_processes: int):
        if n_records < 0:
            raise OrganizationError("n_records must be >= 0")
        if n_processes < 1:
            raise OrganizationError("n_processes must be >= 1")
        self.blocks = blocks
        self.n_records = n_records
        self.n_processes = n_processes
        self._records_cache: dict[int, np.ndarray] = {}

    # -- shared geometry -----------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return self.blocks.n_blocks(self.n_records)

    @property
    def is_static(self) -> bool:
        """True when block ownership is fixed at creation (S, PS, IS, PDA)."""
        return True

    def _check_process(self, process: int) -> None:
        if not 0 <= process < self.n_processes:
            raise OrganizationError(
                f"process {process} outside 0..{self.n_processes - 1}"
            )

    def _check_record(self, record: int) -> None:
        if not 0 <= record < self.n_records:
            raise RecordRangeError(
                f"record {record} outside file of {self.n_records}"
            )

    # -- ownership -----------------------------------------------------------

    @abstractmethod
    def owner_of_block(self, block: int) -> int:
        """Process owning ``block`` (raises for dynamic/unowned organizations)."""

    def owner_of_record(self, record: int) -> int:
        """Process owning the block containing ``record``."""
        self._check_record(record)
        return self.owner_of_block(self.blocks.block_of(record))

    @abstractmethod
    def blocks_of(self, process: int) -> np.ndarray:
        """Blocks owned by ``process``, in its access order."""

    def records_of(self, process: int) -> np.ndarray:
        """Global record indices ``process`` accesses, in access order.

        Memoized: backends call this on every open handle, and the result
        is immutable for a given map.
        """
        cached = self._records_cache.get(process)
        if cached is not None:
            return cached
        self._check_process(process)
        chunks = []
        for b in self.blocks_of(process):
            count = self.blocks.block_records(int(b), self.n_records)
            start = self.blocks.first_record(int(b))
            chunks.append(np.arange(start, start + count, dtype=np.int64))
        result = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        result.setflags(write=False)
        self._records_cache[process] = result
        return result

    def n_local_records(self, process: int) -> int:
        """Number of records assigned to ``process``."""
        return int(sum(
            self.blocks.block_records(int(b), self.n_records)
            for b in self.blocks_of(process)
        ))

    # -- bijection -----------------------------------------------------------

    def local_to_global(self, process: int, local: int) -> int:
        """Global record index of the ``local``-th record ``process`` visits."""
        recs = self.records_of(process)
        if not 0 <= local < len(recs):
            raise RecordRangeError(
                f"local record {local} outside process {process}'s "
                f"{len(recs)} records"
            )
        return int(recs[local])

    def global_to_local(self, record: int) -> tuple[int, int]:
        """``(process, local index)`` for a global ``record``."""
        self._check_record(record)
        p = self.owner_of_record(record)
        recs = self.records_of(p)
        local = int(np.searchsorted(recs, record))
        if local >= len(recs) or recs[local] != record:
            raise OwnershipError(
                f"record {record} not in process {p}'s sequence"
            )  # pragma: no cover - defensive
        return p, local

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} org={self.org} records={self.n_records} "
            f"blocks={self.n_blocks} processes={self.n_processes}>"
        )


class SequentialMap(OrganizationMap):
    """Type S (Fig. 1a): one process, whole file, sequential order.

    ``n_processes`` may exceed 1 (the program is parallel) but only the
    designated ``reader`` process performs I/O.
    """

    org = FileOrganization.S

    def __init__(
        self,
        blocks: BlockSpec,
        n_records: int,
        n_processes: int = 1,
        reader: int = 0,
    ):
        super().__init__(blocks, n_records, n_processes)
        if not 0 <= reader < n_processes:
            raise OrganizationError(f"reader {reader} outside process range")
        self.reader = reader

    def owner_of_block(self, block: int) -> int:
        if not 0 <= block < max(self.n_blocks, 1):
            raise RecordRangeError(f"block {block} outside file")
        return self.reader

    def blocks_of(self, process: int) -> np.ndarray:
        self._check_process(process)
        if process != self.reader:
            return np.empty(0, dtype=np.int64)
        return np.arange(self.n_blocks, dtype=np.int64)


class PartitionedMap(OrganizationMap):
    """Type PS (Fig. 1b): contiguous block ranges, one partition per process.

    Blocks are divided contiguously and as evenly as possible: with
    ``n_blocks = q*P + r``, the first ``r`` processes receive ``q+1``
    blocks each and the rest receive ``q``.
    """

    org = FileOrganization.PS

    def __init__(self, blocks: BlockSpec, n_records: int, n_processes: int):
        super().__init__(blocks, n_records, n_processes)
        nb, p = self.n_blocks, self.n_processes
        q, r = divmod(nb, p)
        counts = np.full(p, q, dtype=np.int64)
        counts[:r] += 1
        self._starts = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(counts, out=self._starts[1:])

    def partition_range(self, process: int) -> tuple[int, int]:
        """Half-open block range ``[first, last)`` of ``process``."""
        self._check_process(process)
        return int(self._starts[process]), int(self._starts[process + 1])

    def owner_of_block(self, block: int) -> int:
        if not 0 <= block < self.n_blocks:
            raise RecordRangeError(f"block {block} outside file")
        return int(np.searchsorted(self._starts, block, side="right") - 1)

    def blocks_of(self, process: int) -> np.ndarray:
        lo, hi = self.partition_range(process)
        return np.arange(lo, hi, dtype=np.int64)


class InterleavedMap(OrganizationMap):
    """Type IS (Fig. 1c): block ``b`` belongs to process ``b mod stride``.

    The stride "would typically be the number of processes accessing the
    file" (§3.1) and that is the default; a larger stride leaves trailing
    residue classes unowned, which the constructor rejects.
    """

    org = FileOrganization.IS

    def __init__(
        self,
        blocks: BlockSpec,
        n_records: int,
        n_processes: int,
        stride: int | None = None,
    ):
        super().__init__(blocks, n_records, n_processes)
        self.stride = n_processes if stride is None else stride
        if self.stride < n_processes:
            raise OrganizationError(
                f"stride {self.stride} < n_processes {n_processes}: "
                "processes would collide on residue classes"
            )
        if self.stride > n_processes:
            raise OrganizationError(
                f"stride {self.stride} > n_processes {n_processes}: "
                "some residue classes would be orphaned"
            )

    def owner_of_block(self, block: int) -> int:
        if not 0 <= block < self.n_blocks:
            raise RecordRangeError(f"block {block} outside file")
        return block % self.stride

    def blocks_of(self, process: int) -> np.ndarray:
        self._check_process(process)
        return np.arange(process, self.n_blocks, self.stride, dtype=np.int64)


class SelfScheduledMap(OrganizationMap):
    """Type SS (Fig. 1d): the next request gets the next block.

    Ownership does not exist statically; the runtime draws tickets from a
    shared counter (`repro.sim.sync.TicketCounter` in the simulator, an
    atomic integer in the live backend). The map still provides the block
    arithmetic and validates completed schedules: each block handed out
    exactly once, none skipped.

    "This organization makes most sense when there is a single record per
    block, but self-scheduling by block for multi-record blocks could be
    provided if needed." — both are supported via ``records_per_block``.
    """

    org = FileOrganization.SS

    @property
    def is_static(self) -> bool:
        return False

    def owner_of_block(self, block: int) -> int:
        raise OrganizationError(
            "SS files have no static block ownership; access order is "
            "determined by request order at run time"
        )

    def blocks_of(self, process: int) -> np.ndarray:
        raise OrganizationError(
            "SS files have no static per-process block list"
        )

    def validate_schedule(self, schedule: dict[int, list[int]]) -> None:
        """Check a completed run's ``{process: [blocks]}`` assignment.

        Raises :class:`OrganizationError` unless every block was handed
        out exactly once (the §3.1 guarantee: "each request accesses a
        different record and no record gets skipped").
        """
        seen: list[int] = []
        for p, blist in schedule.items():
            self._check_process(p)
            seen.extend(int(b) for b in blist)
        if sorted(seen) != list(range(self.n_blocks)):
            raise OrganizationError(
                f"self-scheduled run covered blocks {sorted(seen)}, "
                f"expected exactly 0..{self.n_blocks - 1}"
            )


class GlobalDirectMap(OrganizationMap):
    """Type GDA: any process, any record, any order ("the most general case")."""

    org = FileOrganization.GDA

    @property
    def is_static(self) -> bool:
        return False

    def owner_of_block(self, block: int) -> int:
        raise OrganizationError("GDA files have no block ownership")

    def blocks_of(self, process: int) -> np.ndarray:
        raise OrganizationError("GDA files have no per-process block list")

    def may_access(self, process: int, record: int) -> bool:
        """Every process may access every record."""
        self._check_process(process)
        self._check_record(record)
        return True


class PartitionedDirectMap(OrganizationMap):
    """Type PDA: blocks assigned to processes; random access within blocks.

    "Blocks can be thought of as pages of virtual memory ... Direct access
    versions of the PS and IS partitionings would be supported by the PDA
    format as well" (§3.2) — so the block assignment is delegated to an
    underlying PS- or IS-style map chosen with ``assignment``.
    """

    org = FileOrganization.PDA

    def __init__(
        self,
        blocks: BlockSpec,
        n_records: int,
        n_processes: int,
        assignment: str = "contiguous",
    ):
        super().__init__(blocks, n_records, n_processes)
        if assignment == "contiguous":
            self._base: OrganizationMap = PartitionedMap(
                blocks, n_records, n_processes
            )
        elif assignment == "interleaved":
            self._base = InterleavedMap(blocks, n_records, n_processes)
        else:
            raise OrganizationError(
                f"unknown PDA assignment {assignment!r}; "
                "use 'contiguous' or 'interleaved'"
            )
        self.assignment = assignment

    def owner_of_block(self, block: int) -> int:
        return self._base.owner_of_block(block)

    def blocks_of(self, process: int) -> np.ndarray:
        return self._base.blocks_of(process)

    def may_access(self, process: int, record: int) -> bool:
        """True iff ``record`` lies in a block owned by ``process``."""
        self._check_process(process)
        self._check_record(record)
        return self.owner_of_record(record) == process

    def check_access(self, process: int, record: int) -> None:
        """Raise :class:`OwnershipError` on an out-of-partition access."""
        if not self.may_access(process, record):
            raise OwnershipError(
                f"process {process} may not access record {record} "
                f"(owned by process {self.owner_of_record(record)})"
            )


_MAKERS = {
    FileOrganization.S: SequentialMap,
    FileOrganization.PS: PartitionedMap,
    FileOrganization.IS: InterleavedMap,
    FileOrganization.SS: SelfScheduledMap,
    FileOrganization.GDA: GlobalDirectMap,
    FileOrganization.PDA: PartitionedDirectMap,
}


def make_map(
    org: FileOrganization | str,
    blocks: BlockSpec,
    n_records: int,
    n_processes: int,
    **params,
) -> OrganizationMap:
    """Construct the map for ``org`` (accepts the enum or 'PS'-style codes)."""
    if isinstance(org, str):
        try:
            org = FileOrganization[org.upper()]
        except KeyError:
            raise OrganizationError(f"unknown organization {org!r}") from None
    return _MAKERS[org](blocks, n_records, n_processes, **params)
