"""Records: the unit of program access.

§3 of the paper fixes the terminology this library uses throughout:

    "A *record* is the unit of access used by a program when it issues
    read or write requests. Each record contains one or more data items.
    In order to avoid complications, every record is assumed to be of the
    same size."

:class:`RecordSpec` captures that fixed size and provides the codec between
application values (numpy rows, Python bytes) and the flat byte stream a
file stores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import RecordRangeError

__all__ = ["RecordSpec"]


@dataclass(frozen=True)
class RecordSpec:
    """Fixed-size record format.

    ``record_size`` is in bytes. An optional numpy ``dtype`` string lets
    applications move typed rows in and out without hand-packing; when set,
    ``record_size`` must be a multiple of the dtype's item size.
    """

    record_size: int
    dtype: str = "uint8"

    def __post_init__(self) -> None:
        if self.record_size <= 0:
            raise ValueError("record_size must be positive")
        itemsize = np.dtype(self.dtype).itemsize
        if self.record_size % itemsize != 0:
            raise ValueError(
                f"record_size {self.record_size} is not a multiple of "
                f"dtype {self.dtype!r} item size {itemsize}"
            )

    @property
    def items_per_record(self) -> int:
        """Number of dtype items in one record."""
        return self.record_size // np.dtype(self.dtype).itemsize

    # -- codec -------------------------------------------------------------

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Pack an ``(n, items_per_record)`` array into flat uint8 bytes."""
        arr = np.ascontiguousarray(values, dtype=self.dtype)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        if arr.ndim != 2 or arr.shape[1] != self.items_per_record:
            raise ValueError(
                f"expected shape (n, {self.items_per_record}), got {values.shape}"
            )
        return arr.view(np.uint8).reshape(-1)

    def decode(self, raw: np.ndarray | bytes) -> np.ndarray:
        """Unpack flat bytes into an ``(n, items_per_record)`` array."""
        buf = np.frombuffer(raw, dtype=np.uint8) if isinstance(raw, (bytes, bytearray)) else np.asarray(raw, dtype=np.uint8)
        if buf.size % self.record_size != 0:
            raise ValueError(
                f"{buf.size} bytes is not a whole number of "
                f"{self.record_size}-byte records"
            )
        n = buf.size // self.record_size
        return buf.reshape(n, self.record_size).view(np.dtype(self.dtype)).reshape(
            n, self.items_per_record
        ).copy()

    # -- geometry ----------------------------------------------------------

    def byte_range(self, record: int, n_records: int | None = None) -> tuple[int, int]:
        """Byte ``(offset, length)`` of one record within the flat stream.

        If ``n_records`` is given, the index is bounds-checked against it.
        """
        if record < 0 or (n_records is not None and record >= n_records):
            raise RecordRangeError(f"record {record} outside file of {n_records}")
        return record * self.record_size, self.record_size

    def span(self, first: int, count: int) -> tuple[int, int]:
        """Byte ``(offset, length)`` of ``count`` consecutive records."""
        if first < 0 or count < 0:
            raise RecordRangeError(f"invalid span ({first}, {count})")
        return first * self.record_size, count * self.record_size
