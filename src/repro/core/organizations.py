"""The standard parallel file organizations (§3 of the paper).

Two families:

* **Sequential parallel files** (§3.1) — the global view is a standard
  sequential file; the internal view is one of:

  - ``S``  (Type S,  Fig. 1a): sequential — one process accesses the whole
    file in order (that process typically partitions on the fly).
  - ``PS`` (Type PS, Fig. 1b): partitioned sequential — contiguous blocks,
    one partition per process, each process does its own I/O.
  - ``IS`` (Type IS, Fig. 1c): interleaved sequential — processes use
    non-contiguous blocks separated by a constant stride (typically the
    number of processes); "wrapped" storage of a matrix.
  - ``SS`` (Type SS, Fig. 1d): self-scheduled sequential — every I/O
    request (from whatever process) gets the next record, so access order
    is determined by request order; a queue with multiple servers.

* **Direct access parallel files** (§3.2):

  - ``GDA``: global direct access — any process may access any record in
    any order (databases; direct-access S/SS).
  - ``PDA``: partitioned direct access — blocks assigned to processes;
    random access within owned blocks (out-of-core "pages of virtual
    memory"); also subsumes direct-access PS/IS.

The module also carries the §2 taxonomy: :class:`FileCategory` records
whether a file is *standard* (must present a conventional global view to
sequential software) or *specialized* (private to one parallel program).
"""

from __future__ import annotations

import enum

__all__ = ["FileOrganization", "FileCategory"]


class FileCategory(enum.Enum):
    """Lifespan/usage category of a parallel file (§2)."""

    #: Outlives the program; global view must look like a conventional file
    #: (input files, final results, databases).
    STANDARD = "standard"
    #: Used only by one parallel program or a coordinated set; no meaningful
    #: global view is required (temporaries, checkpoints, out-of-core).
    SPECIALIZED = "specialized"


class FileOrganization(enum.Enum):
    """The six organizations proposed by the paper."""

    S = "S"
    PS = "PS"
    IS = "IS"
    SS = "SS"
    GDA = "GDA"
    PDA = "PDA"

    @property
    def is_sequential(self) -> bool:
        """Sequential family (§3.1): global view is a sequential file."""
        return self in (FileOrganization.S, FileOrganization.PS,
                        FileOrganization.IS, FileOrganization.SS)

    @property
    def is_direct(self) -> bool:
        """Direct-access family (§3.2)."""
        return self in (FileOrganization.GDA, FileOrganization.PDA)

    @property
    def is_partitioned(self) -> bool:
        """Static block-to-process ownership exists (PS, IS, PDA)."""
        return self in (FileOrganization.PS, FileOrganization.IS,
                        FileOrganization.PDA)

    @property
    def is_dynamic(self) -> bool:
        """Ownership decided at run time by request order (SS) or not at
        all (GDA)."""
        return self in (FileOrganization.SS, FileOrganization.GDA)

    @property
    def default_layout(self) -> str:
        """The implementation §4 suggests for this organization.

        S and SS stripe the byte stream; PS clusters each partition on a
        device; IS interleaves blocks across devices; the direct-access
        organizations decluster (stripe) following Livny et al. [2] and
        Kim [3].
        """
        return {
            FileOrganization.S: "striped",
            FileOrganization.SS: "striped",
            FileOrganization.PS: "clustered",
            FileOrganization.IS: "interleaved",
            FileOrganization.GDA: "striped",
            FileOrganization.PDA: "interleaved",
        }[self]

    def __str__(self) -> str:
        return self.value
