"""Partition-boundary overlap handling (§5, problem area 2).

    "In many algorithms, data along partition boundaries is needed by
    processes on both sides of the boundary. ... One way of dealing with
    the problem is to replicate boundary data in both of the adjacent
    partitions in the file. This will cause difficulties for the global
    view of the file, since there will be redundant data records. An
    alternative is to cache boundary data in memory (if it will fit)."

Two mechanisms, matching the two alternatives the paper weighs:

* :class:`ReplicatedPartitioning` — each partition stores its own records
  plus ``halo`` records from each neighbour. The global view of such a
  file contains redundant records; :meth:`ReplicatedPartitioning.dedup`
  reconstructs the true global sequence (owner's copy wins).
* :class:`HaloCache` — an in-memory cache of boundary records, useful
  "if more than one pass is made through the file".

Both operate on PS-style contiguous partitions, where boundaries are
meaningful.
"""

from __future__ import annotations

import numpy as np

from .errors import OrganizationError
from .mapping import PartitionedMap

__all__ = ["ReplicatedPartitioning", "HaloCache"]


class ReplicatedPartitioning:
    """Boundary replication over a contiguous (PS) partition map."""

    def __init__(self, base: PartitionedMap, halo: int):
        if not isinstance(base, PartitionedMap):
            raise OrganizationError(
                "boundary replication is defined for contiguous (PS) "
                "partitions"
            )
        if halo < 0:
            raise OrganizationError("halo must be >= 0")
        self.base = base
        self.halo = halo

    # -- per-process stored ranges ------------------------------------------

    def owned_records(self, process: int) -> tuple[int, int]:
        """Half-open global record range owned by ``process``."""
        lo_b, hi_b = self.base.partition_range(process)
        rpb = self.base.blocks.records_per_block
        lo = lo_b * rpb
        hi = min(hi_b * rpb, self.base.n_records)
        return lo, max(hi, lo)

    def stored_records(self, process: int) -> tuple[int, int]:
        """Half-open global record range *stored* in ``process``'s partition
        (owned range extended by the halo, clipped to the file)."""
        lo, hi = self.owned_records(process)
        if hi <= lo:  # empty partition stores nothing
            return lo, hi
        return max(lo - self.halo, 0), min(hi + self.halo, self.base.n_records)

    def stored_counts(self) -> np.ndarray:
        """Records stored per process, including replicas."""
        return np.array(
            [
                max(0, hi - lo)
                for lo, hi in (
                    self.stored_records(p) for p in range(self.base.n_processes)
                )
            ],
            dtype=np.int64,
        )

    @property
    def total_stored(self) -> int:
        """Total records stored across partitions (>= n_records)."""
        return int(self.stored_counts().sum())

    @property
    def inflation(self) -> float:
        """Stored/true size ratio — the file-size cost of replication."""
        if self.base.n_records == 0:
            return 1.0
        return self.total_stored / self.base.n_records

    @property
    def redundant_records(self) -> int:
        """Number of duplicate records the global view would see."""
        return self.total_stored - self.base.n_records

    # -- building and deduplicating -------------------------------------------

    def build_partitions(self, data: np.ndarray) -> list[np.ndarray]:
        """Slice a global record array into per-process stored partitions.

        ``data`` is indexed by global record (axis 0).
        """
        if len(data) != self.base.n_records:
            raise ValueError(
                f"data has {len(data)} records, map expects {self.base.n_records}"
            )
        return [
            data[lo:hi]
            for lo, hi in (
                self.stored_records(p) for p in range(self.base.n_processes)
            )
        ]

    def dedup(self, partitions: list[np.ndarray]) -> np.ndarray:
        """Reconstruct the true global sequence from stored partitions.

        For each record the *owner's* copy is taken, so the result is
        correct even if neighbours' halo copies have gone stale.
        """
        if len(partitions) != self.base.n_processes:
            raise ValueError("one partition array per process required")
        pieces = []
        for p, part in enumerate(partitions):
            s_lo, s_hi = self.stored_records(p)
            if len(part) != s_hi - s_lo:
                raise ValueError(
                    f"partition {p} has {len(part)} records, "
                    f"expected {s_hi - s_lo}"
                )
            o_lo, o_hi = self.owned_records(p)
            pieces.append(part[o_lo - s_lo : o_hi - s_lo])
        return np.concatenate(pieces) if pieces else np.empty(0)


class HaloCache:
    """In-memory cache of boundary records, the paper's alternative to
    replication for multi-pass algorithms."""

    def __init__(self, capacity_records: int):
        if capacity_records < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity_records
        self._cache: dict[int, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._order: list[int] = []  # FIFO eviction order

    def __len__(self) -> int:
        return len(self._cache)

    def lookup(self, record: int) -> np.ndarray | None:
        """Cached copy of ``record``, or None (counts hit/miss)."""
        value = self._cache.get(record)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def insert(self, record: int, value: np.ndarray) -> None:
        """Cache ``record``; FIFO-evicts when at capacity."""
        if self.capacity == 0:
            return
        if record not in self._cache and len(self._cache) >= self.capacity:
            victim = self._order.pop(0)
            del self._cache[victim]
            self.evictions += 1
        if record not in self._cache:
            self._order.append(record)
        self._cache[record] = value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
