"""Exception hierarchy for the parallel file library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "OrganizationError",
    "RecordRangeError",
    "OwnershipError",
    "ViewMismatchError",
    "ExhaustedError",
    "FileExistsError_",
    "FileNotFoundError_",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class OrganizationError(ReproError):
    """Invalid organization parameters or misuse of an organization."""


class RecordRangeError(ReproError, IndexError):
    """A record or block index outside the file."""


class OwnershipError(ReproError):
    """A process touched a record or block it does not own.

    The partitioned organizations (PS, IS, PDA) give each process exclusive
    access to its assigned blocks (§3.1-3.2); violating that assignment is
    a programming error, surfaced eagerly.
    """


class ViewMismatchError(ReproError):
    """A file was opened with an internal view incompatible with how it was
    created, and no degraded-interface or conversion path was requested
    (§5, problem area 1)."""


class ExhaustedError(ReproError):
    """A self-scheduled file has no records left to hand out."""


class FileExistsError_(ReproError):
    """A file of that name already exists.

    Shared by the plain catalog (``repro.fs.catalog``) and the sharded
    metadata service (``repro.metastore``) so both namespace layers
    speak one exception vocabulary. The trailing underscore keeps the
    historical name (it predates the move here) and avoids shadowing the
    builtin.
    """


class FileNotFoundError_(ReproError):
    """No file of that name exists (same vocabulary note as above)."""
