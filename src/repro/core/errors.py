"""Exception hierarchy for the parallel file library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "OrganizationError",
    "RecordRangeError",
    "OwnershipError",
    "ViewMismatchError",
    "ExhaustedError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class OrganizationError(ReproError):
    """Invalid organization parameters or misuse of an organization."""


class RecordRangeError(ReproError, IndexError):
    """A record or block index outside the file."""


class OwnershipError(ReproError):
    """A process touched a record or block it does not own.

    The partitioned organizations (PS, IS, PDA) give each process exclusive
    access to its assigned blocks (§3.1-3.2); violating that assignment is
    a programming error, surfaced eagerly.
    """


class ViewMismatchError(ReproError):
    """A file was opened with an internal view incompatible with how it was
    created, and no degraded-interface or conversion path was requested
    (§5, problem area 1)."""


class ExhaustedError(ReproError):
    """A self-scheduled file has no records left to hand out."""
