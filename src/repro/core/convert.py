"""Internal-view mismatch analysis and conversion planning (§5, problem 1).

    "A serious mismatch occurs, for example, if a file created with a PS
    organization needs to be read later with an IS format. One alternative
    would be to select one organization or the other and then provide a
    software interface to present the alternate view when needed, but with
    degraded performance. ... A third possibility is to supply conversion
    utilities to copy from one format to the other, but this could be
    expensive for large files."

This module provides the pure planning layer:

* :func:`contiguous_runs` — compress a record access sequence into maximal
  contiguous runs. Runs are the currency of cost: each run is one
  sequential transfer; run boundaries are seeks.
* :func:`alternate_view_runs` — the per-process run structure when a file
  laid out for organization A is *accessed through* organization B's
  internal view (the degraded software-interface option).
* :func:`conversion_plan` — the copy plan (src run -> dst run pairs) for
  physically converting a file from one organization to another.

The executable halves (actually moving bytes, measuring times) live in
``repro.fs.convert`` and benchmark E10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mapping import OrganizationMap

__all__ = ["Run", "contiguous_runs", "alternate_view_runs", "conversion_plan", "CopyStep"]


@dataclass(frozen=True)
class Run:
    """``count`` consecutive global records starting at ``start``."""

    start: int
    count: int

    @property
    def stop(self) -> int:
        return self.start + self.count


def contiguous_runs(records: np.ndarray) -> list[Run]:
    """Maximal contiguous ascending runs in an access sequence.

    >>> contiguous_runs(np.array([4, 5, 6, 10, 11, 2]))
    [Run(start=4, count=3), Run(start=10, count=2), Run(start=2, count=1)]
    """
    records = np.asarray(records, dtype=np.int64)
    if records.size == 0:
        return []
    breaks = np.nonzero(np.diff(records) != 1)[0] + 1
    starts = np.concatenate(([0], breaks))
    stops = np.concatenate((breaks, [records.size]))
    return [
        Run(int(records[a]), int(b - a)) for a, b in zip(starts, stops)
    ]


def alternate_view_runs(
    desired: OrganizationMap, process: int
) -> list[Run]:
    """Run structure of ``process``'s accesses under the *desired* view.

    When the file's physical layout matches the desired organization, each
    process's accesses are few long runs (PS: exactly one run). When it
    does not — e.g. the file is stored globally-contiguous (any sequential
    organization's global view) but consumed with an IS internal view —
    the desired sequence fragments into many short runs, each paying a
    seek. The run count is therefore the degradation metric benchmark E10
    reports.
    """
    return contiguous_runs(desired.records_of(process))


@dataclass(frozen=True)
class CopyStep:
    """Copy ``count`` records from global ``src_start`` to ``dst_start``
    positions in the *converted* record ordering."""

    src_start: int
    dst_start: int
    count: int


def conversion_plan(
    src: OrganizationMap, dst: OrganizationMap
) -> list[CopyStep]:
    """Plan a physical conversion between two static organizations.

    Both maps must describe the same record population. The physical
    record order of a static organization is the concatenation of each
    process's access sequence (process 0's records, then process 1's...),
    which is how the clustered/interleaved layouts place data on devices.
    The plan copies between the two orderings in maximal contiguous steps;
    ``len(plan)`` is the number of distinct transfers (seek cost) and the
    summed counts always equal ``n_records``.
    """
    if src.n_records != dst.n_records:
        raise ValueError(
            f"record count mismatch: src {src.n_records} vs dst {dst.n_records}"
        )
    if not (src.is_static and dst.is_static):
        raise ValueError("conversion planning requires static organizations")

    def physical_order(m: OrganizationMap) -> np.ndarray:
        if m.n_records == 0:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [m.records_of(p) for p in range(m.n_processes)]
        )

    src_order = physical_order(src)   # physical slot -> global record
    dst_order = physical_order(dst)

    # position of each global record in the source physical order
    src_pos = np.empty(src.n_records, dtype=np.int64)
    src_pos[src_order] = np.arange(src.n_records)

    # for each destination slot, the source slot it reads from
    src_slot_for_dst = src_pos[dst_order]

    steps: list[CopyStep] = []
    i = 0
    n = len(src_slot_for_dst)
    while i < n:
        j = i + 1
        while j < n and src_slot_for_dst[j] == src_slot_for_dst[j - 1] + 1:
            j += 1
        steps.append(
            CopyStep(
                src_start=int(src_slot_for_dst[i]),
                dst_start=i,
                count=j - i,
            )
        )
        i = j
    return steps
