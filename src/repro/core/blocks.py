"""Blocks: logical data partitions.

§3 of the paper:

    "Files contain one or more data partitions called *blocks*. Blocks as
    defined here are logical groupings of contiguous data rather than
    physical partitions on a hardware device. Each block is composed of
    one or more records. ... Blocks will ordinarily be equal in size as
    well, except that there may be short blocks at the end of a file."

:class:`BlockSpec` is the pure arithmetic of that model: record <-> block
coordinates, block sizes including the short final block, and byte spans.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import RecordRangeError
from .records import RecordSpec

__all__ = ["BlockSpec"]


@dataclass(frozen=True)
class BlockSpec:
    """Blocking of a file: ``records_per_block`` records per full block."""

    record: RecordSpec
    records_per_block: int

    def __post_init__(self) -> None:
        if self.records_per_block <= 0:
            raise ValueError("records_per_block must be positive")

    @property
    def block_bytes(self) -> int:
        """Bytes in a full block."""
        return self.records_per_block * self.record.record_size

    # -- counting -----------------------------------------------------------

    def n_blocks(self, n_records: int) -> int:
        """Number of blocks (including a short final block) in a file."""
        if n_records < 0:
            raise ValueError("n_records must be >= 0")
        return -(-n_records // self.records_per_block)

    def block_records(self, block: int, n_records: int) -> int:
        """Records in ``block`` — ``records_per_block`` except possibly last."""
        nb = self.n_blocks(n_records)
        if not 0 <= block < max(nb, 1):
            raise RecordRangeError(f"block {block} outside file of {nb} blocks")
        if n_records == 0:
            return 0
        if block < nb - 1:
            return self.records_per_block
        return n_records - block * self.records_per_block

    def is_short(self, block: int, n_records: int) -> bool:
        """True if ``block`` is a short final block."""
        return self.block_records(block, n_records) < self.records_per_block

    # -- coordinates ----------------------------------------------------------

    def block_of(self, record: int) -> int:
        """Block containing global ``record``."""
        if record < 0:
            raise RecordRangeError(f"negative record {record}")
        return record // self.records_per_block

    def slot_of(self, record: int) -> int:
        """Position of ``record`` within its block."""
        if record < 0:
            raise RecordRangeError(f"negative record {record}")
        return record % self.records_per_block

    def record_at(self, block: int, slot: int) -> int:
        """Global record index of ``(block, slot)``."""
        if block < 0 or slot < 0 or slot >= self.records_per_block:
            raise RecordRangeError(f"invalid coordinates ({block}, {slot})")
        return block * self.records_per_block + slot

    def first_record(self, block: int) -> int:
        """Global index of the first record in ``block``."""
        if block < 0:
            raise RecordRangeError(f"negative block {block}")
        return block * self.records_per_block

    # -- bytes ------------------------------------------------------------------

    def block_byte_range(self, block: int, n_records: int) -> tuple[int, int]:
        """Byte ``(offset, length)`` of ``block`` within the flat stream."""
        count = self.block_records(block, n_records)
        return (
            block * self.block_bytes,
            count * self.record.record_size,
        )
