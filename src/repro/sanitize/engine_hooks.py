"""Engine invariant sanitizer: runtime checks on the simulation substrate.

§5 of the paper catalogues how *files* go wrong under parallel access;
this module watches how the *simulator itself* could go wrong under the
same contention — races in the substrate would silently corrupt every
experiment built on top of it. The checked invariants:

* an event popped from the queue has been triggered exactly once and is
  processed exactly once (no double-schedule, no callback ever runs on an
  already-processed event);
* a :class:`~repro.sim.resources.Resource` never grants one request twice,
  never exceeds its capacity, and never leaves a waiter sleeping while a
  slot is free (lost wakeup);
* :class:`~repro.sim.resources.Store` / ``Container`` dispatch leaves no
  satisfiable put/get untriggered (lost wakeup);
* :class:`~repro.buffering.pool.BufferPool` acquire/release stays inside
  ``[0, n_buffers]`` and balances to zero by :meth:`check_balanced`;
* :class:`~repro.ionode.IONode` request queues never lose a request,
  never exceed the admission bound, and conserve bytes through request
  aggregation (coalescing / data sieving) — checked after every service
  batch via :meth:`EngineSanitizer.on_ionode` and at end of run by
  :meth:`EngineSanitizer.check_nodes_drained`.

Attach with :func:`attach` (collecting mode) or construct the environment
with ``Environment(strict=True)`` (raise on first violation). Hooks are a
single attribute test on the hot paths when no sanitizer is attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..sim.engine import Environment, Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from ..buffering.pool import BufferPool
    from ..ionode.node import IONode
    from ..sim.resources import Container, Resource, Store

__all__ = ["SanitizerError", "Violation", "EngineSanitizer", "attach"]


class SanitizerError(SimulationError):
    """An engine invariant was violated (strict mode only)."""


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation."""

    kind: str
    detail: str
    time: float

    def row(self) -> str:
        """One formatted report line."""
        return f"t={self.time:>12.6f}  {self.kind:<26s} {self.detail}"


class EngineSanitizer:
    """Collects (or raises on) engine invariant violations for one env."""

    def __init__(self, env: Environment, raise_on_violation: bool = False):
        self.env = env
        self.raise_on_violation = raise_on_violation
        self.violations: list[Violation] = []
        #: number of invariant checks performed (sanity that hooks fired)
        self.checks = 0
        self._pools: list["BufferPool"] = []
        self._nodes: list["IONode"] = []

    # -- bookkeeping ---------------------------------------------------------

    def _violate(self, kind: str, detail: str) -> None:
        violation = Violation(kind, detail, self.env.now)
        self.violations.append(violation)
        if self.raise_on_violation:
            raise SanitizerError(f"[{kind}] {detail} (t={self.env.now})")

    @property
    def clean(self) -> bool:
        """True iff no violation has been recorded."""
        return not self.violations

    def assert_clean(self) -> None:
        """Raise :class:`SanitizerError` listing any recorded violations."""
        if self.violations:
            rows = "\n".join(v.row() for v in self.violations)
            raise SanitizerError(
                f"{len(self.violations)} engine invariant violation(s):\n{rows}"
            )

    # -- engine hooks ----------------------------------------------------------

    def on_step(self, event: Event) -> None:
        """Called by ``Environment.step`` for every popped event."""
        self.checks += 1
        if event._processed:
            self._violate(
                "event-reprocessed",
                f"{event!r} popped from the queue after it was processed",
            )
        if event.callbacks is None:
            self._violate(
                "event-callbacks-consumed",
                f"{event!r} reached step() with its callbacks already taken",
            )
        if not event.triggered:
            self._violate(
                "event-untriggered",
                f"{event!r} was scheduled without a value or failure",
            )

    def on_resource(self, resource: "Resource") -> None:
        """Called after ``Resource._trigger_requests`` settles."""
        self.checks += 1
        users = resource.users
        name = type(resource).__name__
        if len(users) > resource.capacity:
            self._violate(
                "resource-overcommit",
                f"{name} holds {len(users)} users over capacity "
                f"{resource.capacity}",
            )
        if len({id(u) for u in users}) != len(users):
            self._violate(
                "resource-double-grant",
                f"{name} granted the same request more than one slot",
            )
        for user in users:
            if not user.triggered:
                self._violate(
                    "resource-granted-untriggered",
                    f"{name} lists an ungranted request as a user",
                )
        if len(users) < resource.capacity and any(
            not w.triggered and not getattr(w, "_cancelled", False)
            for w in resource._waiting
        ):
            self._violate(
                "resource-lost-wakeup",
                f"{name} has a free slot but a waiter was left sleeping",
            )

    def on_store(self, store: "Store") -> None:
        """Called after ``Store._dispatch`` settles."""
        self.checks += 1
        if len(store.items) > store.capacity:
            self._violate(
                "store-overfull",
                f"Store holds {len(store.items)} items over capacity "
                f"{store.capacity}",
            )
        if store.items and any(not g.triggered for g in store._gets):
            self._violate(
                "store-lost-wakeup",
                "Store has items but left a getter sleeping",
            )
        if len(store.items) < store.capacity and any(
            not p.triggered for p in store._puts
        ):
            self._violate(
                "store-lost-wakeup",
                "Store has room but left a putter sleeping",
            )

    def on_container(self, container: "Container") -> None:
        """Called after ``Container._dispatch`` settles."""
        self.checks += 1
        level = container._level
        if level < 0 or level > container.capacity:
            self._violate(
                "container-level",
                f"Container level {level} outside [0, {container.capacity}]",
            )
        pending_puts = [p for p in container._puts if not p.triggered]
        if pending_puts and level + pending_puts[0].amount <= container.capacity:
            self._violate(
                "container-lost-wakeup",
                f"put of {pending_puts[0].amount} fits at level {level} "
                "but was left sleeping",
            )
        pending_gets = [g for g in container._gets if not g.triggered]
        if pending_gets and level >= pending_gets[0].amount:
            self._violate(
                "container-lost-wakeup",
                f"get of {pending_gets[0].amount} is covered by level "
                f"{level} but was left sleeping",
            )

    # -- buffer pools ------------------------------------------------------------

    def register_pool(self, pool: "BufferPool") -> None:
        """Track a pool for the end-of-run balance check."""
        if pool not in self._pools:
            self._pools.append(pool)

    def on_pool(self, pool: "BufferPool") -> None:
        """Called on every pool acquire-grant and release."""
        self.checks += 1
        if not 0 <= pool._in_use <= pool.n_buffers:
            self._violate(
                "pool-imbalance",
                f"BufferPool in_use={pool._in_use} outside "
                f"[0, {pool.n_buffers}]",
            )

    def check_balanced(self) -> None:
        """Record a violation for every pool with unreleased buffers."""
        for pool in self._pools:
            if pool._in_use != 0:
                self._violate(
                    "pool-unreleased",
                    f"BufferPool ended with {pool._in_use} of "
                    f"{pool.n_buffers} buffers still held",
                )

    # -- I/O nodes --------------------------------------------------------------

    def register_node(self, node: "IONode") -> None:
        """Track an I/O node for per-batch and end-of-run queue checks."""
        if node not in self._nodes:
            self._nodes.append(node)

    def on_ionode(self, node: "IONode") -> None:
        """Called by a node's service loop after every completed batch.

        Checks the node-queue invariants: bounded occupancy, no lost
        request (every accepted request is accounted for somewhere in the
        pipeline), byte conservation through aggregation (a read client
        receives exactly the bytes it asked for, even when the node
        serviced it through a sieved covering extent), and sieve
        accounting (device traffic splits exactly into payload + waste).
        """
        self.checks += 1
        if not 0 <= node.queued <= node.queue_depth:
            self._violate(
                "ionode-queue-bound",
                f"node {node.name} holds {node.queued} queued requests "
                f"outside [0, {node.queue_depth}]",
            )
        accounted = (
            node.completed
            + node.in_service
            + node.queued
            + node.pending_admission
            + node.migrated
        )
        if node.accepted != accounted:
            self._violate(
                "ionode-lost-request",
                f"node {node.name} accepted {node.accepted} requests but "
                f"accounts for {accounted} "
                f"(completed={node.completed}, in_service={node.in_service}, "
                f"queued={node.queued}, pending={node.pending_admission}, "
                f"migrated={node.migrated})",
            )
        if node.read_delivered_bytes != node.read_requested_bytes:
            self._violate(
                "ionode-byte-conservation",
                f"node {node.name} delivered {node.read_delivered_bytes} "
                f"read bytes for {node.read_requested_bytes} requested",
            )
        if node.sieve_waste_bytes < 0 or (
            node.device_bytes_read
            != node.read_payload_bytes + node.sieve_waste_bytes
        ):
            self._violate(
                "ionode-sieve-accounting",
                f"node {node.name} read {node.device_bytes_read} device "
                f"bytes != payload {node.read_payload_bytes} + waste "
                f"{node.sieve_waste_bytes}",
            )

    def check_nodes_drained(self) -> None:
        """Record a violation for every node with requests still in flight.

        A crashed node's salvaged requests count as ``migrated`` — they
        were handed to surviving nodes by the failover manager, which
        separately guarantees their client events settled
        (:meth:`~repro.resilience.failover.FailoverManager.assert_settled`).
        """
        for node in self._nodes:
            backlog = node.queued + node.in_service + node.pending_admission
            if backlog or node.accepted != node.completed + node.migrated:
                self._violate(
                    "ionode-undrained",
                    f"node {node.name} ended with {backlog} request(s) in "
                    f"flight ({node.accepted} accepted, "
                    f"{node.completed} completed, {node.migrated} migrated)",
                )

    # -- resilience --------------------------------------------------------------

    def on_retried_op(self, op: Any) -> None:
        """Called by :func:`repro.resilience.retry.retrying` per settled op.

        Exactly-once invariants: every attempt either failed or succeeded,
        at most one attempt succeeded (transient errors never apply data,
        so a retry can never double-apply), and an acknowledged operation
        succeeded exactly once while an abandoned one never did.
        """
        self.checks += 1
        label = f"{op.kind} on {op.target}"
        if op.attempts != op.failures + op.successes:
            self._violate(
                "retry-accounting",
                f"{label}: {op.attempts} attempts != {op.failures} failures "
                f"+ {op.successes} successes",
            )
        if op.successes > 1:
            self._violate(
                "retry-multi-apply",
                f"{label}: {op.successes} attempts succeeded (applied more "
                "than once)",
            )
        if op.acked and op.successes != 1:
            self._violate(
                "retry-acked-unapplied",
                f"{label}: acknowledged to the caller with {op.successes} "
                "successful attempts",
            )
        if op.gave_up and op.successes != 0:
            self._violate(
                "retry-gave-up-applied",
                f"{label}: reported exhausted but {op.successes} attempt(s) "
                "succeeded",
            )

    def on_rebuild(self, name: str, ok: bool, detail: str) -> None:
        """Called by the hot-spare rebuilder after its verify step."""
        self.checks += 1
        if not ok:
            self._violate(
                "rebuild-mismatch",
                f"{name}: rebuilt spare diverges from its oracle ({detail})",
            )

    # -- QoS ----------------------------------------------------------------------

    def on_qos_starvation(self, detail: str) -> None:
        """Called by :class:`~repro.qos.QoSManager` when one request was
        bypassed by later arrivals more than the configured threshold —
        the "no tenant waits unboundedly while others are served"
        invariant."""
        self.checks += 1
        self._violate("qos-starvation", detail)

    def on_qos_deadline_miss(self, detail: str) -> None:
        """Called (under ``strict_deadlines``) when a tenant's request
        completes past its absolute deadline."""
        self.checks += 1
        self._violate("qos-deadline-miss", detail)

    def on_qos_bucket(self, tenant: str, conformant: bool, detail: str) -> None:
        """Called by :meth:`~repro.qos.QoSManager.check_buckets` per
        rate-limited tenant — the "rate-limited tenants never exceed
        their bucket" invariant."""
        self.checks += 1
        if not conformant:
            self._violate(
                "qos-bucket-overrate", f"tenant {tenant!r}: {detail}"
            )


def attach(env: Environment, raise_on_violation: bool = False) -> EngineSanitizer:
    """Attach an :class:`EngineSanitizer` to ``env`` and return it.

    Attaching twice returns the existing sanitizer (updated with the
    requested ``raise_on_violation`` policy).
    """
    sanitizer: Any = env._sanitizer
    if sanitizer is None:
        sanitizer = EngineSanitizer(env, raise_on_violation)
        env._sanitizer = sanitizer
        env._hooks_attached()
    else:
        sanitizer.raise_on_violation = raise_on_violation
    return sanitizer
