"""Runtime conflict detection and invariant sanitizing.

Two complementary oracles for the §5 problem areas:

* :class:`AccessConflictDetector` — watches parallel-file accesses for
  write/write and read/write overlaps, partition-boundary violations,
  and internal-view mismatches (attach via
  ``ParallelFileSystem(..., sanitizer=...)``).
* :class:`EngineSanitizer` — checks substrate invariants (resource
  grants, store/container wakeups, buffer-pool balance, event lifecycle)
  (attach via :func:`attach` or ``Environment(strict=True)``).
"""

from .access import AccessConflictDetector, AccessRecord, Finding
from .engine_hooks import EngineSanitizer, SanitizerError, Violation, attach

__all__ = [
    "AccessConflictDetector",
    "AccessRecord",
    "Finding",
    "EngineSanitizer",
    "SanitizerError",
    "Violation",
    "attach",
]
