"""Parallel-access conflict detector for parallel files (§5, problem 2).

    "If two processes attempt to access the same byte range without
    synchronization, the outcome depends on the order of access."

The reproduction can *simulate* exactly the failure modes §5 names —
partition boundary overlap, internal-view mismatch — without anything
flagging them. :class:`AccessConflictDetector` is the missing oracle: it
records every per-process byte-range access (an interval index keyed by
file + epoch) as the fs layers report them, and derives findings:

* **write/write overlap** — two processes write intersecting byte ranges
  within one epoch;
* **read/write overlap** — a read and a write of intersecting ranges from
  different processes within one epoch (unsynchronized: nothing orders
  them but event timing);
* **partition-boundary violation** — a process of a statically
  partitioned file (S/PS/IS/PDA) touches a block owned by another
  process;
* **internal-view mismatch** — a file is opened through an internal view
  whose organization differs from the catalog organization (e.g. a PS
  file read as IS via ``alternate_view``).

An *epoch* is a synchronization generation: call :meth:`advance_epoch`
wherever the application executes a barrier or another full ordering
point; accesses in different epochs never conflict.

Attach by passing the detector to
``ParallelFileSystem(..., sanitizer=detector)`` — ``fs/pfs.py`` and the
handle layers forward every traced access. Render findings with
:func:`repro.trace.report.conflict_report`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.organizations import FileOrganization

if TYPE_CHECKING:  # pragma: no cover
    from ..fs.pfs import ParallelFile

__all__ = ["AccessRecord", "Finding", "AccessConflictDetector"]

#: process id used by the global view (see ``repro.fs.global_io``)
GLOBAL_PROCESS = -1


@dataclass(frozen=True)
class AccessRecord:
    """One byte-range access by one process, in one epoch."""

    time: float
    file: str
    epoch: int
    process: int
    op: str
    lo: int  #: first byte touched (inclusive)
    hi: int  #: past-the-end byte
    block: int

    def overlaps(self, lo: int, hi: int) -> bool:
        """True iff [lo, hi) intersects this record's byte range."""
        return lo < self.hi and self.lo < hi


@dataclass(frozen=True)
class Finding:
    """One detected access conflict."""

    kind: str
    file: str
    detail: str
    time: float
    processes: tuple[int, ...]

    def row(self) -> str:
        """One formatted report line."""
        procs = ",".join(str(p) for p in self.processes)
        return (
            f"t={self.time:>12.6f}  {self.kind:<28s} {self.file:<16s} "
            f"procs=[{procs}] {self.detail}"
        )


class AccessConflictDetector:
    """Interval-index conflict detector over per-process file accesses."""

    def __init__(self) -> None:
        self.epoch = 0
        #: every access, in arrival order (the raw evidence)
        self.records: list[AccessRecord] = []
        self.findings: list[Finding] = []
        self._index: dict[tuple[str, int], list[AccessRecord]] = {}
        self._seen: set[tuple] = set()

    # -- epochs ---------------------------------------------------------------

    def advance_epoch(self) -> int:
        """Start a new synchronization epoch (call at barriers)."""
        self.epoch += 1
        return self.epoch

    # -- queries ----------------------------------------------------------------

    @property
    def clean(self) -> bool:
        """True iff no finding has been recorded."""
        return not self.findings

    def findings_of(self, kind: str) -> list[Finding]:
        """All findings of one kind."""
        return [f for f in self.findings if f.kind == kind]

    def report(self) -> list[str]:
        """Formatted report rows (see also ``trace.report.conflict_report``)."""
        from ..trace.report import conflict_report

        return conflict_report(self)

    # -- hooks (called by the fs layers) -----------------------------------------

    def note_access(
        self,
        file: "ParallelFile",
        process: int,
        op: str,
        block: int,
        records: int,
        start: int | None = None,
    ) -> None:
        """Record one traced access and check it against the index.

        ``start`` is the first global record touched; when the caller only
        knows the block (block-granular ops), the whole block's record
        range is used — which is exact, since block ops transfer the whole
        block.
        """
        if records <= 0:
            return
        bs = file.attrs.block_spec
        rs = file.attrs.record_size
        if start is None:
            start = bs.first_record(block)
        record = AccessRecord(
            time=file.env.now,
            file=file.name,
            epoch=self.epoch,
            process=process,
            op=op,
            lo=start * rs,
            hi=(start + records) * rs,
            block=block,
        )
        self.records.append(record)
        self._check_boundary(file, record)
        self._check_overlap(record)
        self._index.setdefault((record.file, record.epoch), []).append(record)

    def note_view(
        self,
        file: "ParallelFile",
        process: int,
        view_org: FileOrganization,
    ) -> None:
        """Record the organization a handle presents; flag mismatches."""
        actual = file.attrs.organization
        if view_org is actual:
            return
        key = ("view-mismatch", file.name, process, view_org)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                kind="view-mismatch",
                file=file.name,
                detail=(
                    f"{actual.value} file opened with a {view_org.value} "
                    "internal view"
                ),
                time=file.env.now,
                processes=(process,),
            )
        )

    # -- checks -----------------------------------------------------------------

    def _check_boundary(self, file: "ParallelFile", rec: AccessRecord) -> None:
        """Flag accesses to blocks owned by a different process."""
        org_map = file.map
        if rec.process == GLOBAL_PROCESS or not org_map.is_static:
            return
        try:
            owner = org_map.owner_of_block(rec.block)
        except Exception:  # dynamic/unowned despite is_static claim
            return
        if owner == rec.process:
            return
        key = ("partition-boundary", rec.file, rec.epoch, rec.process, rec.block)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(
                kind="partition-boundary",
                file=rec.file,
                detail=(
                    f"{rec.op} of block {rec.block} owned by process "
                    f"{owner}"
                ),
                time=rec.time,
                processes=(rec.process, owner),
            )
        )

    def _check_overlap(self, rec: AccessRecord) -> None:
        """Flag same-epoch byte-range overlaps involving a write."""
        for prior in self._index.get((rec.file, rec.epoch), ()):
            if prior.process == rec.process:
                continue
            if not prior.overlaps(rec.lo, rec.hi):
                continue
            if prior.op != "write" and rec.op != "write":
                continue
            kind = (
                "write-write-overlap"
                if prior.op == "write" and rec.op == "write"
                else "read-write-overlap"
            )
            pair = tuple(sorted((prior.process, rec.process)))
            key = (kind, rec.file, rec.epoch, pair, rec.block)
            if key in self._seen:
                continue
            self._seen.add(key)
            lo, hi = max(prior.lo, rec.lo), min(prior.hi, rec.hi)
            self.findings.append(
                Finding(
                    kind=kind,
                    file=rec.file,
                    detail=(
                        f"bytes [{lo}, {hi}) touched by both processes in "
                        f"epoch {rec.epoch} without synchronization"
                    ),
                    time=rec.time,
                    processes=pair,
                )
            )
