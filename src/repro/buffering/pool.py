"""Buffer pools: bounded buffer-space accounting.

§4: "Just as important as the layout of data on disks is the development
of appropriate buffering techniques ... Initial experiments using the S
and SS organizations have shown that buffering overheads can be a
significant factor in limiting speedups."

A :class:`BufferPool` bounds how many fixed-size buffers the higher-level
streams may hold at once, and charges the *copy cost* that the paper
identifies as the overhead: every byte staged through a buffer costs
``copy_cost_per_byte`` seconds of simulated CPU, plus a fixed
``per_buffer_overhead`` per fill/drain.
"""

from __future__ import annotations

from ..sim.engine import Environment, Event
from ..sim.sync import SimSemaphore

__all__ = ["BufferPool"]


class BufferPool:
    """``n_buffers`` buffers of ``buffer_bytes`` each, with copy costing."""

    def __init__(
        self,
        env: Environment,
        n_buffers: int,
        buffer_bytes: int,
        copy_cost_per_byte: float = 2e-8,
        per_buffer_overhead: float = 1e-4,
    ):
        if n_buffers < 1:
            raise ValueError("n_buffers must be >= 1")
        if buffer_bytes < 1:
            raise ValueError("buffer_bytes must be >= 1")
        if copy_cost_per_byte < 0 or per_buffer_overhead < 0:
            raise ValueError("costs must be >= 0")
        self.env = env
        self.n_buffers = n_buffers
        self.buffer_bytes = buffer_bytes
        self.copy_cost_per_byte = copy_cost_per_byte
        self.per_buffer_overhead = per_buffer_overhead
        self._slots = SimSemaphore(env, n_buffers)
        #: peak simultaneous buffers in use
        self.peak_in_use = 0
        self._in_use = 0
        #: total bytes staged through the pool (copy traffic)
        self.bytes_staged = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    def acquire(self) -> Event:
        """Claim one buffer (blocks when all are in use)."""
        sanitizer = self.env._sanitizer
        if sanitizer is not None:
            sanitizer.register_pool(self)
        ev = self._slots.acquire()

        def _track(_):
            self._in_use += 1
            if self._in_use > self.peak_in_use:
                self.peak_in_use = self._in_use
            if sanitizer is not None:
                sanitizer.on_pool(self)

        if ev.triggered:
            _track(ev)
        else:
            ev.callbacks.append(_track)
        return ev

    def release(self) -> None:
        """Return one buffer to the pool."""
        sanitizer = self.env._sanitizer
        if sanitizer is not None:
            sanitizer.register_pool(self)
        if self._in_use <= 0:
            # the raise itself surfaces the imbalance; no violation recorded
            raise RuntimeError("release of unheld buffer")
        self._in_use -= 1
        self._slots.release()
        if sanitizer is not None:
            sanitizer.on_pool(self)

    def copy_cost(self, nbytes: int) -> float:
        """Simulated CPU time to stage ``nbytes`` through a buffer."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes > self.buffer_bytes:
            raise ValueError(
                f"{nbytes} bytes exceed buffer size {self.buffer_bytes}"
            )
        return self.per_buffer_overhead + nbytes * self.copy_cost_per_byte

    def charge(self, nbytes: int):
        """Generator: spend the copy cost as simulated time."""
        self.bytes_staged += nbytes
        yield self.env.timeout(self.copy_cost(nbytes))
