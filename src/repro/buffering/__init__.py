"""Buffering: pools, read-ahead, deferred write, block caching (§4)."""

from .cache import BufferCache
from .pool import BufferPool
from .readahead import ReadStream
from .writebehind import WriteStream

__all__ = ["BufferCache", "BufferPool", "ReadStream", "WriteStream"]
