"""Block buffer cache for direct-access files.

§4: "For direct access methods, buffer caching techniques would be helpful
when there is some locality of reference, as in the PDA organization."

:class:`BufferCache` is an LRU cache of fixed-size blocks over a fetch /
writeback pair, with:

* write-back dirty tracking (dirty victims are written before eviction);
* single-flight misses — concurrent readers of the same missing block
  share one device fetch instead of stampeding;
* hit/miss/eviction statistics for the locality experiments (E4, E6).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from ..sim.engine import Environment, Event

__all__ = ["BufferCache"]


class BufferCache:
    """LRU block cache with write-back."""

    def __init__(
        self,
        env: Environment,
        fetch: Callable[[int], Event],
        writeback: Callable[[int, Any], Event] | None,
        capacity_blocks: int,
    ):
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        self.env = env
        self.fetch = fetch
        self.writeback = writeback
        #: optional batched write-back ``(blocks, datas) -> Event`` used by
        #: :meth:`flush` when set — one list-I/O submission for the whole
        #: dirty set instead of one write per block (see ``docs/PERF.md``)
        self.writeback_many: Callable[[list[int], list[Any]], Event] | None = None
        self.capacity = capacity_blocks
        self._blocks: OrderedDict[int, Any] = OrderedDict()
        self._dirty: set[int] = set()
        self._inflight: dict[int, Event] = {}
        self.reads = 0
        self.hits = 0
        self.misses = 0
        #: hits that joined another reader's in-flight fetch (subset of hits)
        self.coalesced = 0
        self.evictions = 0
        self.writebacks = 0

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def contains(self, block: int) -> bool:
        """True iff ``block`` is currently cached."""
        return block in self._blocks

    # -- operations -----------------------------------------------------------

    def read(self, block: int):
        """Generator: the cached (or fetched) contents of ``block``.

        Invariant: ``hits + misses == reads`` — a reader that joins an
        in-flight fetch counts as a (coalesced) hit, since it causes no
        device transfer of its own.
        """
        self.reads += 1
        if block in self._blocks:
            self.hits += 1
            self._blocks.move_to_end(block)
            return self._blocks[block]
        inflight = self._inflight.get(block)
        if inflight is not None:
            # another process is already fetching (or installing) this block
            self.hits += 1
            self.coalesced += 1
            data = yield inflight
            return data
        self.misses += 1
        ev = self.fetch(block)
        self._inflight[block] = ev
        try:
            data = yield ev
            # Keep the in-flight entry until install completes: _install may
            # yield for a dirty-victim writeback, and a reader arriving in
            # that window must share this fetch, not issue a duplicate one.
            yield from self._install(block, data)
        finally:
            self._inflight.pop(block, None)
        return data

    def write(self, block: int, data: Any):
        """Generator: update ``block`` in cache; device write is deferred."""
        if block in self._blocks:
            self._blocks[block] = data
            self._blocks.move_to_end(block)
        else:
            yield from self._install(block, data)
        self._dirty.add(block)
        if False:  # keep generator shape even on the hit path
            yield  # pragma: no cover

    def flush(self):
        """Generator: write back every dirty block (cache stays warm).

        Blocks stay marked dirty until the joined write-back completes, so
        a failed device write leaves them queued for the next flush (or
        eviction) instead of silently dropping the only copy's dirty bit.
        """
        dirty = sorted(self._dirty)
        if dirty and self.writeback_many is not None:
            yield self.writeback_many(dirty, [self._blocks[b] for b in dirty])
            self._dirty.difference_update(dirty)
            self.writebacks += len(dirty)
            return
        events = []
        for block in dirty:
            if self.writeback is None:
                raise RuntimeError("cache has no writeback function")
            events.append(self.writeback(block, self._blocks[block]))
        if events:
            yield self.env.all_of(events)
        self._dirty.clear()
        self.writebacks += len(dirty)

    def invalidate(self) -> None:
        """Drop all clean blocks (dirty blocks must be flushed first)."""
        if self._dirty:
            raise RuntimeError(
                f"{len(self._dirty)} dirty blocks; flush before invalidating"
            )
        self._blocks.clear()

    # -- internals -------------------------------------------------------------

    def _install(self, block: int, data: Any):
        while len(self._blocks) >= self.capacity:
            victim, victim_data = self._blocks.popitem(last=False)
            if victim in self._dirty:
                if self.writeback is None:
                    # put the victim back before raising: its bytes are the
                    # only copy and must not vanish with the error
                    self._blocks[victim] = victim_data
                    self._blocks.move_to_end(victim, last=False)
                    raise RuntimeError(
                        "evicting a dirty block but cache has no writeback"
                    )
                try:
                    yield self.writeback(victim, victim_data)
                except BaseException:
                    # failed write-back: restore the victim (still dirty, at
                    # the LRU end) so the data survives for a later retry
                    self._blocks[victim] = victim_data
                    self._blocks.move_to_end(victim, last=False)
                    raise
                self._dirty.discard(victim)
                self.writebacks += 1
            self.evictions += 1
        self._blocks[block] = data
