"""Deferred writing (write-behind).

The write-side dual of read-ahead (§4): the producer process "writes" into
a buffer, pays only the copy cost, and continues computing while the
transfer proceeds; up to ``depth`` transfers may be outstanding. With
``depth = 0`` every write is synchronous write-through.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.engine import Environment, Event
from .pool import BufferPool

__all__ = ["WriteStream"]


class WriteStream:
    """Deferred (asynchronous) writes with bounded outstanding transfers."""

    def __init__(
        self,
        env: Environment,
        write: Callable[[int, Any], Event],
        pool: BufferPool,
        depth: int = 1,
    ):
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.env = env
        self.write = write
        self.pool = pool
        self.depth = depth
        self._outstanding: list[Event] = []
        #: blocks written (issued) so far
        self.issued = 0

    def put(self, index: int, data: Any):
        """Generator: stage ``data`` for block ``index`` and return.

        Charges the buffer copy cost; with ``depth >= 1`` the device write
        happens in the background. Device errors surface on :meth:`drain`
        (or on a later ``put`` that reaps completed transfers); a put that
        raises a *previous* write's error releases its own just-acquired
        buffer before propagating, so the pool stays balanced.
        """
        yield self.pool.acquire()
        try:
            yield from self.pool.charge(_nbytes(data))

            if self.depth > 0:
                # bound the pipeline *before* issuing: at most `depth`
                # writes may be in flight at once
                while self._pending_count() >= self.depth:
                    try:
                        yield self.env.any_of(
                            [e for e in self._outstanding if not e.processed]
                        )
                    except Exception:
                        pass  # the failure is surfaced by _reap below
                self._reap()
        except BaseException:
            # this put's buffer was acquired but its write never issued:
            # no completion callback will release it — do it here
            self.pool.release()
            raise

        ev = self.write(index, data)
        self.issued += 1

        def _on_done(_ev):
            self.pool.release()
            if not ev.ok:
                # nothing is waiting on a background write: defuse so the
                # failure surfaces at the next reap, not in the scheduler
                ev.defuse()

        if ev.triggered:
            _on_done(ev)
        else:
            ev.callbacks.append(_on_done)

        if self.depth == 0:
            yield ev  # write-through
            return

        self._outstanding.append(ev)

    def drain(self):
        """Generator: wait for every outstanding write; raise the first error."""
        while True:
            pending = [e for e in self._outstanding if not e.processed]
            if not pending:
                break
            try:
                yield self.env.all_of(pending)
            except Exception:
                # the join fails at the FIRST component failure while the
                # rest may still be in flight — keep waiting so _reap sees
                # every final state (and the error is raised exactly once)
                pass
        self._reap()

    def _pending_count(self) -> int:
        return sum(1 for e in self._outstanding if not e.processed)

    def _reap(self) -> None:
        done = [e for e in self._outstanding if e.processed]
        self._outstanding = [e for e in self._outstanding if not e.processed]
        for e in done:
            if not e.ok:
                raise e.value


def _nbytes(data: Any) -> int:
    if hasattr(data, "nbytes"):
        return int(data.nbytes)
    return len(data)
