"""Deferred writing (write-behind).

The write-side dual of read-ahead (§4): the producer process "writes" into
a buffer, pays only the copy cost, and continues computing while the
transfer proceeds; up to ``depth`` transfers may be outstanding. With
``depth = 0`` every write is synchronous write-through.
"""

from __future__ import annotations

from typing import Any, Callable

from ..sim.engine import Environment, Event
from .pool import BufferPool

__all__ = ["WriteStream"]


class WriteStream:
    """Deferred (asynchronous) writes with bounded outstanding transfers."""

    def __init__(
        self,
        env: Environment,
        write: Callable[[int, Any], Event],
        pool: BufferPool,
        depth: int = 1,
    ):
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.env = env
        self.write = write
        self.pool = pool
        self.depth = depth
        self._outstanding: list[Event] = []
        #: blocks written (issued) so far
        self.issued = 0

    def put(self, index: int, data: Any):
        """Generator: stage ``data`` for block ``index`` and return.

        Charges the buffer copy cost; with ``depth >= 1`` the device write
        happens in the background. Device errors surface on :meth:`drain`
        (or on a later ``put`` that reaps completed transfers).
        """
        yield self.pool.acquire()
        yield from self.pool.charge(_nbytes(data))

        if self.depth > 0:
            # bound the pipeline *before* issuing: at most `depth` writes
            # may be in flight at once
            while self._pending_count() >= self.depth:
                yield self.env.any_of(
                    [e for e in self._outstanding if not e.processed]
                )
            self._reap()

        ev = self.write(index, data)
        self.issued += 1

        def _release(_ev):
            self.pool.release()

        if ev.triggered:
            _release(ev)
        else:
            ev.callbacks.append(_release)

        if self.depth == 0:
            yield ev  # write-through
            return

        self._outstanding.append(ev)

    def drain(self):
        """Generator: wait for every outstanding write to complete."""
        pending = [e for e in self._outstanding if not e.processed]
        if pending:
            yield self.env.all_of(pending)
        self._reap()

    def _pending_count(self) -> int:
        return sum(1 for e in self._outstanding if not e.processed)

    def _reap(self) -> None:
        for e in self._outstanding:
            if e.processed and not e.ok:  # pragma: no cover - device faults
                raise e.value
        self._outstanding = [e for e in self._outstanding if not e.processed]


def _nbytes(data: Any) -> int:
    if hasattr(data, "nbytes"):
        return int(data.nbytes)
    return len(data)
