"""Read-ahead streams (multiple buffering + dedicated I/O producer).

§4: "The sequential organizations can mitigate this effect [buffering
overhead] through the use of multiple buffering and dedicated I/O
processors. Since the order of accesses is predictable, reading ahead and
deferred writing can be used to overlap I/O operations with computation."

:class:`ReadStream` consumes a *predictable* sequence of block fetches:

* ``depth = 0`` — single buffering: each ``get()`` issues the fetch and
  waits for it (no overlap; elapsed ~ I/O + compute).
* ``depth >= 1`` — read-ahead: a dedicated I/O producer process (the
  paper's "dedicated I/O processor") keeps up to ``depth`` fetched blocks
  staged in a bounded queue while the consumer computes (elapsed ~
  max(I/O, compute) once the pipeline fills).

The copy overhead per staged block is charged through the
:class:`~repro.buffering.pool.BufferPool`.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..sim.engine import Environment, Event
from ..sim.resources import Store
from .pool import BufferPool

__all__ = ["ReadStream"]


class _FetchFailure:
    """Queue sentinel: the producer's fetch of ``index`` raised ``error``."""

    __slots__ = ("index", "error")

    def __init__(self, index: int, error: BaseException):
        self.index = index
        self.error = error


class ReadStream:
    """Sequential consumption of a known block sequence with read-ahead."""

    def __init__(
        self,
        env: Environment,
        fetch: Callable[[int], Event],
        sequence: Sequence[int],
        pool: BufferPool,
        depth: int = 1,
    ):
        if depth < 0:
            raise ValueError("depth must be >= 0")
        self.env = env
        self.fetch = fetch
        self.sequence = list(sequence)
        self.pool = pool
        self.depth = depth
        self._cursor = 0
        self._holding = False  # consumer holds the current block's buffer
        if depth >= 1:
            self._queue: Store | None = Store(env, capacity=depth)
            self._producer = env.process(self._produce(), name="readahead")
        else:
            self._queue = None

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.sequence)

    def _produce(self):
        for index in self.sequence:
            yield self.pool.acquire()
            try:
                data = yield self.fetch(index)
            except BaseException as exc:  # noqa: BLE001 - relayed to consumer
                # The fetch failed mid-flight: the staging buffer must go
                # back to the pool, and the error must reach the consumer
                # in-band (this process is unwaited, so letting it die would
                # both leak the buffer and strand the consumer on the queue).
                self.pool.release()
                yield self._queue.put(_FetchFailure(index, exc))
                return
            yield from self.pool.charge(_nbytes(data))
            yield self._queue.put((index, data))

    def get(self):
        """Generator: the next ``(index, data)`` pair, in sequence order.

        Raises :class:`StopIteration` semantics via returning ``None`` when
        the sequence is exhausted — callers should check :attr:`exhausted`
        or use :meth:`read_all`.
        """
        # The consumer is done with the previous block once it asks for the
        # next one — that is when its buffer goes back to the pool (the
        # buffer is held *during* the caller's compute phase).
        if self._holding:
            self.pool.release()
            self._holding = False
        if self.exhausted:
            return None
        index = self.sequence[self._cursor]
        self._cursor += 1
        if self._queue is None:
            # single buffering: fetch synchronously, pay the copy
            yield self.pool.acquire()
            try:
                data = yield self.fetch(index)
            except BaseException:
                # return the buffer and rewind so a retry refetches this block
                self.pool.release()
                self._cursor -= 1
                raise
            yield from self.pool.charge(_nbytes(data))
            self._holding = True
            return index, data
        item = yield self._queue.get()
        if isinstance(item, _FetchFailure):
            # producer died on this fetch; the stream cannot continue
            self._cursor = len(self.sequence)
            raise item.error
        got_index, data = item
        self._holding = True
        assert got_index == index, "producer/consumer sequence mismatch"
        return index, data

    def read_all(self, compute: Callable[[int, Any], float] | None = None):
        """Generator: consume the whole sequence, optionally computing.

        ``compute(index, data)`` returns the simulated seconds of
        processing per block; this is how benchmark E5 dials the
        compute:I/O ratio. Returns the list of consumed indices.
        """
        consumed = []
        while not self.exhausted:
            item = yield from self.get()
            index, data = item
            consumed.append(index)
            if compute is not None:
                cost = compute(index, data)
                if cost > 0:
                    yield self.env.timeout(cost)
        return consumed


def _nbytes(data: Any) -> int:
    if hasattr(data, "nbytes"):
        return int(data.nbytes)
    return len(data)
