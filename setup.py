"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP-517 editable
installs (which require ``bdist_wheel``) fail. This shim lets
``pip install -e . --no-use-pep517`` (or plain ``pip install -e .`` with
older pips) take the legacy ``setup.py develop`` path. All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
