"""True parallel I/O with OS processes (no GIL).

The partitioned organizations need *no shared state at run time*: each
process derives its record set from the organization map and the file
metadata alone. That is what makes them work across real process
boundaries — here, `multiprocessing` workers that each open the parallel
file by name and write their own partition concurrently.

(The SS organization is the exception — its shared pointer needs real
shared state; across OS processes that is a shared counter, shown here
with a multiprocessing.Value.)

Run:  python examples/multiprocess_io.py
"""

import multiprocessing as mp
import tempfile
from pathlib import Path

import numpy as np

from repro import LiveParallelFileSystem

ROOT = Path(tempfile.mkdtemp(prefix="repro_mp_"))
N, P = 400, 4


def partition_worker(args) -> int:
    """One OS process: open the file by name, write my partition."""
    root, name, q, seed = args
    lfs = LiveParallelFileSystem(root)
    with lfs.open(name) as f:
        mine = f.map.records_of(q)
        rows = np.random.default_rng(seed).random((len(mine), 1))
        f.internal_view(q).write_next(rows)
        return len(mine)


def ss_worker(args) -> int:
    """One OS process drawing self-scheduled work from a shared counter."""
    root, name, counter, lock = args
    lfs = LiveParallelFileSystem(root)
    done = 0
    with lfs.open(name) as f:
        bs = f.attrs.block_spec
        while True:
            with lock:
                block = counter.value
                if block >= f.n_blocks:
                    return done
                counter.value += 1
            first = bs.first_record(block)
            count = bs.block_records(block, f.n_records)
            # read the block through a direct positioned read
            f.global_view().read_at(first, count)
            done += 1


def main() -> None:
    lfs = LiveParallelFileSystem(ROOT)

    # --- PS: each OS process writes its partition, zero coordination -----
    f = lfs.create("mp_field", "PS", n_records=N, record_size=8,
                   dtype="float64", records_per_block=10, n_processes=P)
    f.close()
    with mp.Pool(P) as pool:
        counts = pool.map(
            partition_worker,
            [(str(ROOT), "mp_field", q, 100 + q) for q in range(P)],
        )
    print(f"{P} OS processes wrote {sum(counts)} records concurrently "
          "(no shared state, no GIL contention)")

    # verify the global view stitched together correctly
    with lfs.open("mp_field") as g:
        data = g.global_view().read()
        for q in range(P):
            expected = np.random.default_rng(100 + q).random(
                (len(g.map.records_of(q)), 1)
            )
            assert np.array_equal(data[g.map.records_of(q)], expected)
    print("global view verified against every worker's expected partition")

    # --- SS: the one organization that needs shared state ------------------
    t = lfs.create("mp_tasks", "SS", n_records=60, record_size=8,
                   dtype="float64", records_per_block=1, n_processes=P)
    t.global_view().write(np.zeros((60, 1)))
    t.close()
    with mp.Manager() as manager:
        counter = manager.Value("i", 0)
        lock = manager.Lock()
        with mp.Pool(P) as pool:
            done = pool.map(
                ss_worker,
                [(str(ROOT), "mp_tasks", counter, lock) for _ in range(P)],
            )
    assert sum(done) == 60
    print(f"self-scheduled across OS processes: per-worker task counts {done} "
          f"(total {sum(done)}/60)")


if __name__ == "__main__":
    main()
