"""The live backend: parallel files on the real file system, real threads.

The same six organizations run over host files (§2's "standard parallel
files": the global view of a sequential organization is literally a flat
file any tool can read). Threads stand in for the paper's processes;
the self-scheduled file hands out work under a real lock.

Run:  python examples/live_threads.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import LiveParallelFileSystem


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro_live_"))
    lfs = LiveParallelFileSystem(root)
    print(f"live parallel file system at {root}")

    # --- PS file written by 4 threads, read as a conventional flat file ---
    n, p = 400, 4
    f = lfs.create("field.dat", "PS", n_records=n, record_size=8,
                   dtype="float64", records_per_block=10, n_processes=p)
    data = np.random.default_rng(0).random((n, 1))

    def writer(q: int):
        h = f.internal_view(q)
        mine = f.map.records_of(q)
        h.write_next(data[mine])

    threads = [threading.Thread(target=writer, args=(q,)) for q in range(p)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # the global view is just the file bytes: read it with plain numpy
    raw = np.fromfile(f.path, dtype=np.float64).reshape(n, 1)
    assert np.array_equal(raw, data)
    print(f"4 threads wrote {n} records; np.fromfile() sees the correct "
          "global view (a conventional flat file)")
    f.close()

    # --- metadata persistence: reopen later, different process count ------
    g = lfs.open("field.dat", n_processes=8)
    print(f"reopened: organization={g.attrs.organization}, now viewed by "
          f"{g.map.n_processes} processes")
    h = g.internal_view(7)
    part = h.read_next(h.n_local_records)
    assert np.array_equal(part, data[g.map.records_of(7)])
    g.close()

    # --- SS file: threads race for work under a real lock ------------------
    tasks = lfs.create("tasks.dat", "SS", n_records=60, record_size=8,
                       dtype="float64", records_per_block=1, n_processes=6)
    tasks.global_view().write(np.arange(60, dtype=np.float64).reshape(60, 1))
    session = tasks.ss_session()
    counts = [0] * 6

    def worker(q: int):
        h = tasks.internal_view(q, session=session)
        while True:
            item = h.read_next()
            if item is None:
                return
            counts[q] += 1

    threads = [threading.Thread(target=worker, args=(q,)) for q in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    session.validate()   # every block exactly once, none skipped
    print(f"self-scheduled: 6 threads drained 60 tasks "
          f"(per-thread counts {counts}), coverage validated")
    tasks.close()

    print(f"catalog: {lfs.names()}")


if __name__ == "__main__":
    main()
