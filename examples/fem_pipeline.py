"""A Finite-Element-Machine-shaped pipeline, end to end.

The workflow §3 describes NASA's FEM users wanting (and not getting from
file-per-process): a global input file, parallel computation over
partitions with boundary exchange, periodic checkpoints, and a final
result a sequential program can read — all through ONE parallel file per
dataset, no pre/post-processing utilities.

Stages:
  1. a sequential loader writes the input field (global view);
  2. P processes run Jacobi smoothing passes over their PS partitions,
     exchanging boundary records through a halo cache;
  3. every pass checkpoints the field to a specialized PS file;
  4. a sequential consumer reads the final global view and verifies it
     against a serial reference computation.

Run:  python examples/fem_pipeline.py
"""

import numpy as np

from repro import Environment, build_parallel_fs
from repro.core import HaloCache
from repro.sim import SimBarrier
from repro.workloads import reference_smooth, stencil_pass_cached


def main() -> None:
    env = Environment()
    pfs = build_parallel_fs(env, n_devices=4)

    n, p, passes = 512, 4, 3
    field = pfs.create(
        "field", "PS", n_records=n, record_size=8, dtype="float64",
        records_per_block=8, n_processes=p,
    )
    from repro import FileCategory

    # checkpoints are §2 "specialized" files: private to this application
    checkpoint = pfs.create(
        "field.ckpt", "PS", n_records=n, record_size=8, dtype="float64",
        records_per_block=8, n_processes=p,
        category=FileCategory.SPECIALIZED,
    )

    rng = np.random.default_rng(42)
    initial = rng.random((n, 1))

    # serial reference
    expected = initial
    for _ in range(passes):
        expected = reference_smooth(expected)

    def loader():
        yield from field.global_view().write(initial)
        print(f"loader: wrote {n}-record input field at t={env.now * 1e3:.1f} ms")

    env.run(env.process(loader()))

    barrier = SimBarrier(env, p)
    caches = [HaloCache(8) for _ in range(p)]

    def solver(q: int):
        for pass_no in range(passes):
            lo, rows = yield from stencil_pass_cached(field, q, caches[q])
            # all processes finish reading before anyone writes (Jacobi)
            yield barrier.wait()
            h = field.internal_view(q)
            if len(rows):
                yield from h.write_next(rows)
            ck = checkpoint.internal_view(q)
            if len(rows):
                yield from ck.write_next(rows)
            # boundary values changed: drop stale halo copies
            caches[q] = HaloCache(8)
            yield barrier.wait()
            if q == 0:
                print(f"pass {pass_no + 1}/{passes} complete + checkpointed "
                      f"at t={env.now * 1e3:.1f} ms")

    def driver():
        yield env.all_of([env.process(solver(q)) for q in range(p)])

    env.run(env.process(driver()))

    def consumer():
        final = yield from field.global_view().read()
        err = np.abs(final - expected).max()
        print(f"sequential consumer: field read through the global view, "
              f"max error vs serial reference = {err:.2e}")
        assert err < 1e-12
        ck = yield from checkpoint.global_view().read()
        assert np.array_equal(ck, final)
        print("checkpoint file matches the live field")

    env.run(env.process(consumer()))
    print(f"catalog holds {len(pfs.catalog)} files "
          f"(vs {2 * p} under file-per-process)")
    print(f"simulated time: {env.now * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
