"""Out-of-core computation over a PDA file (§3.2).

"Blocks can be thought of as pages of virtual memory, with the direct
access feature allowing multiple passes on the data." — each process
sweeps its owned blocks repeatedly through a block cache standing in for
its share of main memory; the cache statistics show §4's buffer-caching
payoff when the working set fits.

Run:  python examples/out_of_core_pda.py
"""

import numpy as np

from repro import Environment, build_parallel_fs
from repro.workloads import OutOfCoreSweep, run_out_of_core


def main() -> None:
    n_records, n_processes, rpb = 256, 4, 8
    data = np.random.default_rng(1).random((n_records, 1))

    for cache_blocks, label in ((8, "working set fits"), (2, "cache thrashes")):
        env = Environment()
        pfs = build_parallel_fs(env, n_devices=4)
        f = pfs.create(
            "pages.dat", "PDA", n_records=n_records, record_size=8,
            dtype="float64", records_per_block=rpb, n_processes=n_processes,
        )

        def setup():
            yield from f.global_view().write(data)

        env.run(env.process(setup()))
        start = env.now
        procs, handles = run_out_of_core(
            f, OutOfCoreSweep(passes=3, cache_blocks=cache_blocks,
                              compute_per_record=0.0001),
        )
        env.run()
        elapsed = env.now - start
        hits = sum(h.cache.hits for h in handles)
        misses = sum(h.cache.misses for h in handles)
        print(f"cache={cache_blocks} blocks/process ({label}): "
              f"3 passes in {elapsed * 1e3:8.1f} ms, "
              f"hit rate {hits / (hits + misses):5.1%} "
              f"({misses} device block reads)")

        def check():
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(check())), data)

    print("data intact after all sweeps (write-back cache flushed correctly)")


if __name__ == "__main__":
    main()
