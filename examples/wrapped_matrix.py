"""Wrapped matrix storage (§3.1's IS example): out-of-core matrix-vector
multiply with cyclically distributed rows.

"This organization would be useful for wrapped storage of a matrix, for
example." — an IS file with one row per record gives process p rows
p, p+P, p+2P, ..., the classic load-balancing distribution.

Run:  python examples/wrapped_matrix.py
"""

import numpy as np

from repro import Environment, build_parallel_fs
from repro.workloads import WrappedMatrix, parallel_matvec, parallel_row_scale


def main() -> None:
    env = Environment()
    pfs = build_parallel_fs(env, n_devices=4)

    n_rows, n_cols, n_processes = 64, 32, 4
    rng = np.random.default_rng(7)
    A = rng.random((n_rows, n_cols))
    x = rng.random(n_cols)

    matrix = WrappedMatrix(pfs, "A.mat", n_rows, n_cols, n_processes)
    print(f"matrix {n_rows}x{n_cols} in IS file "
          f"({matrix.file.layout.name} over {matrix.file.layout.n_devices} devices)")
    for p in range(n_processes):
        rows = matrix.my_rows(p)
        print(f"  process {p} owns rows {rows[:4].tolist()}... ({len(rows)} total)")

    def driver():
        # store the matrix through the global view (a sequential loader)
        yield from matrix.store(A)

        # out-of-core y = A @ x: each process multiplies its own rows
        partials = [
            env.process(parallel_matvec(matrix, p, x))
            for p in range(n_processes)
        ]
        results = yield env.all_of(partials)
        y = np.zeros(n_rows)
        for idx, part in results.values():
            y[idx] = part
        print(f"parallel matvec max error: {np.abs(y - A @ x).max():.2e}")
        assert np.allclose(y, A @ x)

        # in-place parallel update: scale all rows by 0.5
        scalers = [
            env.process(parallel_row_scale(matrix, p, 0.5))
            for p in range(n_processes)
        ]
        yield env.all_of(scalers)
        back = yield from matrix.load()
        assert np.allclose(back, A * 0.5)
        print("parallel in-place row scale verified via the global view")

    env.run(env.process(driver()))
    print(f"simulated time: {env.now * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
