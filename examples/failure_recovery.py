"""Failure and recovery walkthrough (§5's reliability problem area).

Injects a drive failure into three protected configurations and shows
what each can and cannot recover:

1. parity group, synchronized striped writes  -> full recovery;
2. parity group, independent PS-style writes  -> recovery refused
   (stale parity — the paper's "does not appear to be applicable");
3. shadowed volume, independent writes        -> full recovery at 2x
   hardware;
4. backups: single-disk restore vs full rollback.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro import Environment
from repro.devices import (
    WREN_1989,
    DeviceController,
    DiskGeometry,
    DiskModel,
    ShadowPair,
)
from repro.fs import BackupManager, ParallelFileSystem, verify_file
from repro.storage import ParityGroup, StaleParityError, Volume

GEO = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)


def devices(env, n, prefix="d"):
    return [
        DeviceController(env, DiskModel(GEO, WREN_1989), name=f"{prefix}{i}")
        for i in range(n)
    ]


def parity_scenarios() -> None:
    env = Environment()
    data_devs = devices(env, 3)
    group = ParityGroup(env, data_devs, devices(env, 1, "chk")[0],
                        mode="synchronized")

    def run():
        # synchronized striped write: parity maintained
        stripe = [bytes([i + 1]) * 4096 for i in range(3)]
        yield group.write_stripe(0, stripe)
        data_devs[1].fail()
        rebuilt = yield group.reconstruct(1, 0, 4096)
        print(f"1. striped + parity: drive d1 failed, reconstructed "
              f"{'OK' if bytes(rebuilt) == stripe[1] else 'WRONG'}")
        data_devs[1].repair(np.frombuffer(rebuilt, dtype=np.uint8))

        # independent (PS-style) write: parity NOT maintained
        yield group.write(2, 0, b"Z" * 4096)
        data_devs[2].fail()
        try:
            yield group.reconstruct(2, 0, 4096)
            print("2. independent + parity: recovered (unexpected!)")
        except StaleParityError as e:
            print(f"2. independent + parity: recovery REFUSED — {e}")

    env.run(env.process(run()))


def shadow_scenario() -> None:
    env = Environment()
    pairs = [ShadowPair(env, *devices(env, 2, f"m{i}_")) for i in range(2)]
    pfs = ParallelFileSystem(env, Volume(env, pairs))
    f = pfs.create("state", "PS", n_records=32, record_size=16,
                   dtype="float64", records_per_block=4, n_processes=2)
    data = np.random.default_rng(0).random((32, 2))

    def run():
        for q in range(2):
            h = f.internal_view(q)
            yield from h.write_next(data[f.map.records_of(q)])
        pairs[0].primary.fail()
        out = yield from f.global_view().read()
        ok = np.array_equal(out, data)
        print(f"3. shadowed volume: primary m0 failed mid-PS-workload, "
              f"file {'intact' if ok else 'CORRUPT'} "
              f"(cost: {sum(2 for _ in pairs)} drives for 2 drives of data)")

    env.run(env.process(run()))


def backup_scenario() -> None:
    env = Environment()
    devs = devices(env, 4)
    vol = Volume(env, devs)
    pfs = ParallelFileSystem(env, vol)
    f = pfs.create("db", "S", n_records=64, record_size=16, dtype="float64",
                   records_per_block=4, stripe_unit=64)
    old = np.random.default_rng(1).random((64, 2))
    new = np.random.default_rng(2).random((64, 2))
    mgr = BackupManager(env, vol)

    def run():
        yield from f.global_view().write(old)
        bset = yield from mgr.take()
        v = f.global_view()
        v.seek(0)
        yield from v.write(new)
        devs[1].fail()
        yield from mgr.restore_device(bset, 1)
        print(f"4a. single-disk restore: old intact={verify_file(f, old)}, "
              f"new intact={verify_file(f, new)}  <- neither: corrupt mix")
        yield from mgr.restore_all(bset)
        print(f"4b. full rollback:       old intact={verify_file(f, old)}, "
              f"new intact={verify_file(f, new)}  <- consistent, but "
              "post-backup writes lost")

    env.run(env.process(run()))


def main() -> None:
    parity_scenarios()
    shadow_scenario()
    backup_scenario()


if __name__ == "__main__":
    main()
