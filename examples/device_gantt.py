"""Visualizing §4's parallelism claims with device Gantt charts.

Two global-view scans of the same data over 4 drives:

* striped layout — every drive busy at once;
* clustered (PS) layout — "all of the data would have to be read from the
  first disk, followed by all of the data from the second disk, etc.,
  with no potential for parallelism."

Run:  python examples/device_gantt.py
"""

import numpy as np

from repro import Environment
from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.fs import ParallelFileSystem
from repro.storage import Volume
from repro.trace import render_device_gantt


def run_scan(layout: str) -> str:
    env = Environment()
    geo = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=128)
    devices = [
        DeviceController(env, DiskModel(geo, WREN_1989), name=f"disk{i}",
                         keep_service_log=True)
        for i in range(4)
    ]
    pfs = ParallelFileSystem(env, Volume(env, devices))
    f = pfs.create(
        "data", "PS" if layout == "clustered" else "S",
        n_records=256, record_size=4096, records_per_block=8,
        n_processes=4, layout=layout, stripe_unit=16384,
    )

    def setup():
        yield from f.global_view().write(np.zeros((256, 4096), dtype=np.uint8))

    env.run(env.process(setup()))
    for d in devices:
        d.service_log.clear()

    def reader():
        v = f.global_view()
        v.seek(0)
        while not v.eof:
            yield from v.read(32)   # 128 KB requests

    env.run(env.process(reader()))
    return render_device_gantt(devices, width=64)


def main() -> None:
    print("global-view scan, STRIPED layout (all arms in parallel):\n")
    print(run_scan("striped"))
    print("\nglobal-view scan, CLUSTERED (PS) layout "
          "(one partition — one drive — at a time):\n")
    print(run_scan("clustered"))


if __name__ == "__main__":
    main()
