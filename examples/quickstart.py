"""Quickstart: create a parallel file, use both of its views.

Demonstrates the paper's central idea (§2): one file, two views —
processes of a parallel program each access their own partition through
the *internal view*, while sequential software sees a conventional file
through the *global view*.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Environment, build_parallel_fs
from repro.trace import throughput_mb_s


def main() -> None:
    # A simulated machine: 4 processors' worth of I/O over 4 disks.
    env = Environment()
    pfs = build_parallel_fs(env, n_devices=4)

    # A partitioned-sequential (PS) file: 1000 records of 64 bytes,
    # 10 records per block, partitioned among 4 processes. The layout
    # defaults to §4's suggestion for PS: one clustered partition per
    # device.
    n_records, n_processes = 1000, 4
    f = pfs.create(
        "results.dat", "PS",
        n_records=n_records, record_size=64, dtype="float64",
        records_per_block=10, n_processes=n_processes,
    )
    print(f"created {f.name}: organization={f.attrs.organization}, "
          f"layout={f.layout.name}, {f.n_blocks} blocks on "
          f"{f.layout.n_devices} devices")

    data = np.random.default_rng(0).random((n_records, 8))

    # --- parallel phase: each process writes its own partition ---------
    def worker(p: int):
        handle = f.internal_view(p)
        mine = f.map.records_of(p)            # this process's records
        yield from handle.write_next(data[mine])
        print(f"  process {p}: wrote {len(mine)} records "
              f"(blocks {f.map.blocks_of(p).min()}..{f.map.blocks_of(p).max()}) "
              f"at t={env.now * 1e3:.1f} ms")

    def parallel_phase():
        workers = [env.process(worker(p)) for p in range(n_processes)]
        yield env.all_of(workers)

    env.run(env.process(parallel_phase()))

    # --- sequential phase: a conventional program reads the global view --
    def sequential_consumer():
        start = env.now
        view = f.global_view()
        everything = yield from view.read()
        elapsed = env.now - start
        ok = np.array_equal(everything, data)
        print(f"global view read {everything.shape[0]} records in "
              f"{elapsed * 1e3:.1f} ms "
              f"({throughput_mb_s(everything.nbytes, elapsed):.2f} MB/s) "
              f"— contents correct: {ok}")
        assert ok

    env.run(env.process(sequential_consumer()))
    print(f"simulated time: {env.now * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
