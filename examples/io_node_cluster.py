"""I/O-node cluster: server-mediated parallel I/O (§4's dedicated I/O
processors).

Eight compute processes scan an interleaved (IS) file over four disks,
twice: once direct-attached, once routed through a two-node I/O cluster
with request aggregation and a server-side block cache. The cluster's
batch vantage point coalesces the clients' strided reads into fewer
device requests, and a re-read pass is absorbed by the shared cache.

Run:  python examples/io_node_cluster.py
"""

import numpy as np

from repro import Environment, build_parallel_fs
from repro.trace import device_table, ionode_report

N_DEVICES = 4
N_PROCESSES = 8
N_RECORDS = 960
RECORD_SIZE = 64
RECORDS_PER_BLOCK = 12


def scan(io_nodes: int | None, passes: int = 1):
    """All processes scan their IS stripes; returns (pfs, cluster, reqs)."""
    env = Environment()
    pfs = build_parallel_fs(env, n_devices=N_DEVICES)
    cluster = None
    if io_nodes:
        # queue_depth bounds each node's inbox (admission control);
        # cache_blocks turns on the shared server-side block cache
        cluster = pfs.attach_io_nodes(
            io_nodes, queue_depth=N_PROCESSES, batch_limit=N_PROCESSES,
            cache_blocks=256, cache_block_bytes=4096,
        )
    f = pfs.create(
        "mesh.dat", "IS",
        n_records=N_RECORDS, record_size=RECORD_SIZE,
        records_per_block=RECORDS_PER_BLOCK, n_processes=N_PROCESSES,
    )

    def seed():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD_SIZE), dtype=np.uint8)
        )

    env.run(env.process(seed()))
    before = sum(d.disk.total_requests for d in pfs.volume.devices)
    t0 = env.now

    def worker(p: int):
        for _ in range(passes):
            handle = f.internal_view(p)
            while not handle.eof:
                yield from handle.read_next(RECORDS_PER_BLOCK)

    def driver():
        yield env.all_of([env.process(worker(p)) for p in range(N_PROCESSES)])

    env.run(env.process(driver()))
    if cluster is not None:
        cluster.assert_drained()  # every accepted request was serviced
    reqs = sum(d.disk.total_requests for d in pfs.volume.devices) - before
    return pfs, cluster, reqs, env.now - t0


def main() -> None:
    print(f"{N_PROCESSES} processes scan an IS file on {N_DEVICES} disks\n")

    direct_pfs, _, direct_reqs, direct_t = scan(io_nodes=None)
    print(f"direct-attached : {direct_reqs:4d} device requests, "
          f"{direct_t * 1e3:7.1f} ms")

    _, cluster, mediated_reqs, mediated_t = scan(io_nodes=2)
    print(f"via 2 I/O nodes : {mediated_reqs:4d} device requests, "
          f"{mediated_t * 1e3:7.1f} ms  "
          f"(aggregation cut requests {direct_reqs / mediated_reqs:.1f}x)")

    _, cached, reread_reqs, reread_t = scan(io_nodes=2, passes=2)
    print(f"2 passes, cached: {reread_reqs:4d} device requests, "
          f"{reread_t * 1e3:7.1f} ms  "
          f"(server cache absorbs the re-read)\n")

    print("per-node table (2-pass cached run):")
    for row in ionode_report(cached.env, cached):
        print(f"  {row}")
    print()
    print("per-device table (direct run for comparison):")
    for row in device_table(direct_pfs.env, direct_pfs.volume.devices):
        print(f"  {row}")


if __name__ == "__main__":
    main()
