"""Self-scheduled work queue (§3.1's SS example): "a queue with multiple
servers".

Tasks with wildly uneven costs live one-per-block in an SS file; workers
repeatedly draw the next block. Self-scheduling balances busy time
automatically — and the run demonstrates §4's early pointer-advance
optimization keeping the shared file pointer from serializing I/O.

Run:  python examples/self_scheduled_queue.py
"""

import numpy as np

from repro import Environment, build_parallel_fs
from repro.workloads import run_task_queue


def main() -> None:
    env = Environment()
    pfs = build_parallel_fs(env, n_devices=4)

    n_tasks, n_workers = 48, 4
    tasks = pfs.create(
        "tasks.q", "SS", n_records=n_tasks, record_size=16, dtype="float64",
        records_per_block=1, n_processes=n_workers,
    )
    results = pfs.create(
        "results.q", "SS", n_records=n_tasks, record_size=16, dtype="float64",
        records_per_block=1, n_processes=n_workers,
    )

    # task costs: every 8th task is 20x more expensive
    rng = np.random.default_rng(3)
    payload = rng.random((n_tasks, 2))

    def setup():
        yield from tasks.global_view().write(payload)

    env.run(env.process(setup()))

    def service_time(block: int, data: np.ndarray) -> float:
        return 0.100 if block % 8 == 0 else 0.005

    sessions, stats, procs = run_task_queue(
        tasks, n_workers=n_workers,
        service_time=service_time,
        output_file=results,
        result_fn=lambda b, d: d * 2.0,
    )
    env.run()
    for s in sessions:
        s.validate()          # every task handed out exactly once

    print(f"{n_tasks} tasks, {n_workers} self-scheduled workers:")
    for w in stats:
        print(f"  worker {w.process}: {w.tasks:2d} tasks, "
              f"busy {w.busy_time * 1e3:6.1f} ms, "
              f"blocks {w.blocks[:6]}...")
    busy = [w.busy_time for w in stats]
    print(f"busy-time imbalance (max/min): {max(busy) / min(busy):.2f} "
          "(self-scheduling keeps this near 1)")

    def check():
        out = yield from results.global_view().read()
        return out

    out = env.run(env.process(check()))
    assert sorted(out[:, 0].tolist()) == sorted((payload * 2)[:, 0].tolist())
    print("results file verified: every task's doubled payload present")
    print(f"simulated time: {env.now * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
