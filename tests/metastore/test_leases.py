"""Unit tests for client-side metadata leases (epoch invalidation)."""

import pytest

from repro.core.errors import FileNotFoundError_
from repro.metastore import MetadataClient, MetadataService
from repro.metastore.harness import make_entry, name_on_shard


def service_with(names):
    svc = MetadataService(n_shards=4)
    for n in names:
        svc.create(n, make_entry(n))
    return svc


class TestLeases:
    def test_second_lookup_is_a_cache_hit(self):
        svc = service_with(["a"])
        cli = MetadataClient(svc)
        assert cli.lookup("a") is cli.lookup("a")
        assert (cli.hits, cli.misses) == (1, 1)
        assert svc.lookups == 1       # only the miss hit the service

    def test_mutation_on_the_shard_invalidates(self):
        svc = MetadataService(n_shards=4)
        a = name_on_shard(0, 4, "a")
        b = name_on_shard(0, 4, "b")
        svc.create(a, make_entry(a))
        cli = MetadataClient(svc)
        cli.lookup(a)
        svc.create(b, make_entry(b))   # bumps shard 0's epoch
        cli.lookup(a)
        assert cli.invalidations == 1
        assert cli.misses == 2

    def test_mutation_on_another_shard_keeps_lease(self):
        svc = MetadataService(n_shards=4)
        a = name_on_shard(0, 4, "a")
        c = name_on_shard(1, 4, "c")
        svc.create(a, make_entry(a))
        cli = MetadataClient(svc)
        cli.lookup(a)
        svc.create(c, make_entry(c))   # shard 1 only
        cli.lookup(a)
        assert cli.invalidations == 0
        assert cli.hits == 1

    def test_rename_invalidates_and_stale_name_raises(self):
        svc = service_with(["a"])
        cli = MetadataClient(svc)
        cli.lookup("a")
        svc.rename("a", "z")
        with pytest.raises(FileNotFoundError_):
            cli.lookup("a")            # lease dropped, service re-asked
        assert cli.lookup("z").attrs.name == "z"

    def test_recovery_invalidates_every_lease(self):
        from repro.metastore.crash import InjectedCrash

        svc = service_with(["a", "b", "c"])
        cli = MetadataClient(svc)
        for n in ("a", "b", "c"):
            cli.lookup(n)
        svc.injector.reset()
        svc.injector.arm(2)
        with pytest.raises(InjectedCrash):
            svc.create("d", make_entry("d"))
        svc.recover()                  # bumps every shard's epoch
        for n in ("a", "b", "c"):
            cli.lookup(n)
        assert cli.invalidations == 3

    def test_explicit_invalidate(self):
        svc = service_with(["a", "b"])
        cli = MetadataClient(svc)
        cli.lookup("a")
        cli.lookup("b")
        cli.invalidate("a")
        assert len(cli) == 1
        cli.invalidate()
        assert len(cli) == 0

    def test_missing_name_is_not_cached(self):
        svc = service_with([])
        cli = MetadataClient(svc)
        with pytest.raises(FileNotFoundError_):
            cli.lookup("ghost")
        assert len(cli) == 0
