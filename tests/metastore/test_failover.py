"""Shard failover through the resilience layer's node-failure hook."""

import pytest

from repro.metastore import MetadataClient, MetadataService
from repro.metastore.harness import make_entry
from repro.resilience import FailoverManager
from repro.sim import Environment

from ..fs.conftest import build_pfs


def make_stack(env, n_nodes=2, n_shards=4):
    pfs = build_pfs(env)
    cluster = pfs.attach_io_nodes(n_nodes)
    manager = FailoverManager(env, cluster)
    svc = MetadataService(n_shards=n_shards)
    for i in range(8):
        svc.create(f"file{i}", make_entry(f"file{i}"))
    svc.bind_failover(manager)
    return pfs, cluster, manager, svc


class TestShardFailover:
    def test_bind_assigns_round_robin_homes(self):
        env = Environment()
        _, _, _, svc = make_stack(env, n_nodes=2, n_shards=4)
        assert [s.home_node for s in svc.shards] == [0, 1, 0, 1]

    def test_node_death_rehomes_its_shards(self):
        env = Environment()
        _, _, manager, svc = make_stack(env, n_nodes=2, n_shards=4)
        manager.fail_node(0)
        # every shard now lives on the survivor
        assert all(s.home_node == 1 for s in svc.shards)
        # only the shards that moved count as failovers
        moved = [s for s in svc.shards if s.failovers == 1]
        assert len(moved) == 2
        assert svc.shard_failovers == 2
        assert svc.check_invariants() == []

    def test_failover_bumps_epochs_and_invalidates_leases(self):
        env = Environment()
        _, _, manager, svc = make_stack(env, n_nodes=2, n_shards=4)
        cli = MetadataClient(svc)
        for i in range(8):
            cli.lookup(f"file{i}")
        hits0 = cli.hits
        manager.fail_node(0)
        for i in range(8):
            cli.lookup(f"file{i}")
        # every lease minted against a moved shard was invalidated
        assert cli.invalidations > 0
        # leases on unmoved shards survive (their epoch did not change)
        assert cli.hits > hits0

    def test_failover_replays_interrupted_transaction(self):
        from repro.metastore.crash import InjectedCrash

        env = Environment()
        _, _, manager, svc = make_stack(env, n_nodes=2, n_shards=4)
        svc.injector.reset()
        svc.injector.arm(2)
        with pytest.raises(InjectedCrash):
            svc.create("wounded", make_entry("wounded"))
        # the node hosting the torn shard dies; failover replays journals
        manager.fail_node(0)
        assert "wounded" in svc
        assert svc.recoveries == 1
        assert svc.check_invariants() == []

    def test_unbound_service_is_untouched_by_node_death(self):
        env = Environment()
        pfs = build_pfs(env)
        cluster = pfs.attach_io_nodes(2)
        manager = FailoverManager(env, cluster)
        svc = MetadataService(n_shards=2)
        svc.create("a", make_entry("a"))
        manager.fail_node(0)
        assert svc.shard_failovers == 0
