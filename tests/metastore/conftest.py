"""Shared fixtures for metadata-service tests."""

import pytest

from repro.sim import Environment

from ..fs.conftest import build_pfs


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_pfs(env)
